//! Transaction-tracing smoke tests: the Chrome trace a traced run emits
//! is valid JSON, carries every causal hop stage on per-component
//! lanes, and the exported per-stage histograms tile the end-to-end
//! latency exactly. This is the in-repo version of the CI trace-smoke
//! job, kept here so a plain `cargo test` exercises the same surface.

use std::collections::HashSet;

use scale_out_processors::noc::TopologyKind;
use scale_out_processors::obs::txn::Stage;
use scale_out_processors::obs::{json, Json, TxnBreakdown};
use scale_out_processors::sim::{Machine, SimConfig};
use scale_out_processors::workloads::Workload;

/// One traced chapter-3 validation window with every transaction
/// sampled, event log armed.
fn traced_machine() -> Machine {
    let cfg = SimConfig::validation(Workload::WebFrontend, 16, TopologyKind::Mesh);
    let mut m = Machine::new(cfg);
    m.enable_tracing(1 << 16);
    m.enable_txn_tracing(1);
    m.run_window(1_000, 3_000);
    m
}

#[test]
fn chrome_trace_parses_and_contains_every_hop_stage() {
    let m = traced_machine();
    let log = m.event_log().expect("tracing enabled");
    let text = log.to_chrome_trace("smoke").to_compact_string();
    let doc = json::parse(&text).expect("chrome trace is valid JSON");

    // Chrome trace format: top-level object with a traceEvents array.
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every causal hop stage appears as an event name, under the
    // txn.hop category.
    let hop_names: HashSet<&str> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("txn.hop"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for stage in Stage::ALL {
        assert!(hop_names.contains(stage.key()), "missing {}", stage.key());
    }
}

#[test]
fn traced_breakdown_is_exactly_consistent_with_the_total() {
    let m = traced_machine();
    let r = m.txn_stats().expect("tracing armed");
    assert!(r.completed() > 0);
    assert_eq!(r.stage_sum(), r.total().sum(), "spans must tile the total");
}

#[test]
fn breakdown_renders_every_stage_row() {
    let cfg = SimConfig::validation(Workload::WebFrontend, 16, TopologyKind::Mesh);
    let mut m = Machine::new(cfg);
    m.enable_txn_tracing(1);
    let result = m.run_window(1_000, 3_000);
    let b = TxnBreakdown::from_registry(&result.metrics).expect("sim.txn.total exported");
    assert!(b.consistent());
    let table = b.render();
    for stage in Stage::ALL {
        assert!(
            table.contains(stage.label()),
            "missing row {}",
            stage.label()
        );
    }
    assert!(table.contains("consistent"));
}
