//! Fault-injection determinism: the same seeded `FaultPlan` must yield
//! bit-identical simulation results however the work is scheduled — any
//! worker count, warm or cold cache, event-driven or per-cycle engine.

use proptest::prelude::*;
use scale_out_processors::bench::points::{sim_points, SimPointSpec, SpecFaults};
use scale_out_processors::exec::{Exec, ExecConfig};
use scale_out_processors::fault::FaultPlan;
use scale_out_processors::noc::TopologyKind;
use scale_out_processors::sim::{Machine, SimConfig};
use scale_out_processors::workloads::Workload;

fn faulted_spec(seed: u64, dead: u32) -> SimPointSpec {
    SimPointSpec::Validation {
        workload: Workload::WebSearch,
        cores: 16,
        topology: TopologyKind::Mesh,
        warm: 500,
        measure: 1_500,
        faults: (dead > 0).then_some(SpecFaults {
            seed,
            dead,
            cycle: 200,
        }),
    }
}

proptest! {
    // Each case is several full machine runs; a handful of cases per
    // property keeps the suite under test-time budget while still
    // varying seed and damage depth.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One seed, one plan: the machine's visible outcome is a pure
    /// function of the plan, not of the engine (event-driven vs
    /// per-cycle reference) and not of repetition.
    #[test]
    fn same_plan_same_machine_outcome(seed in 0u64..1_000, dead in 1u32..4) {
        let cfg = SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh);
        let run = |reference: bool| {
            let mut m = Machine::new(cfg);
            m.set_reference_mode(reference);
            let plan = FaultPlan::seeded_router_deaths(seed, dead, m.router_count(), 200);
            m.set_fault_plan(&plan);
            let r = m.run_window(500, 1_500);
            (r.aggregate_ipc().to_bits(), r.halted)
        };
        let fast = run(false);
        prop_assert_eq!(fast, run(false), "repetition changed the outcome");
        prop_assert_eq!(fast, run(true), "engine choice changed the outcome");
    }

    /// The same faulted spec through the execution engine: every worker
    /// count and cache state returns bit-identical scalars.
    #[test]
    fn schedule_and_cache_state_never_leak_into_results(seed in 0u64..1_000, dead in 1u32..4) {
        let spec = faulted_spec(seed, dead);
        let direct = spec.evaluate();
        let dir = std::env::temp_dir().join(format!(
            "sop-fault-det-{}-{seed}-{dead}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for workers in [1usize, 4] {
            // Cold disk cache, then warm disk cache, then no cache.
            for _pass in 0..2 {
                let exec = Exec::new(ExecConfig {
                    jobs: workers,
                    cache_dir: Some(dir.clone()),
                    ..ExecConfig::default()
                });
                let pts = sim_points(&exec, "fault-det", &[spec, spec]);
                prop_assert_eq!(pts[0].aggregate_ipc.to_bits(), direct.aggregate_ipc.to_bits());
                prop_assert_eq!(pts[1].mean_packet_latency.to_bits(), direct.mean_packet_latency.to_bits());
                prop_assert_eq!(pts[0].halted, direct.halted);
            }
            let exec = Exec::with_workers(workers);
            let pts = sim_points(&exec, "fault-det", &[spec]);
            prop_assert_eq!(pts[0].aggregate_ipc.to_bits(), direct.aggregate_ipc.to_bits());
            prop_assert_eq!(pts[0].noc_flit_hops, direct.noc_flit_hops);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
