//! The heartbeat's job-event set is worker-count invariant.
//!
//! Timing fields (`t_us`, `wall_us`, `worker`, `queue`, `eta_us`) vary
//! run to run, but the identity of what happened — which events fired
//! for which jobs from which source — must be the same multiset whether
//! a campaign ran on one worker or several. That is what makes the
//! progress stream trustworthy as a record and diffable across runs.

use scale_out_processors::exec::heartbeat::PROGRESS_FILE;
use scale_out_processors::exec::{Exec, ExecConfig, Job};
use scale_out_processors::obs::Json;

/// Runs a small deterministic campaign on `workers` threads against a
/// cold cache in `dir` and returns the sorted (ev, job, source) event
/// identities from the heartbeat stream.
fn event_identities(workers: usize, dir: &std::path::Path) -> Vec<(String, String, String)> {
    let exec = Exec::new(ExecConfig {
        jobs: workers,
        cache_dir: Some(dir.to_path_buf()),
        ..ExecConfig::default()
    });
    let jobs: Vec<Job<'static>> = (0..6u64)
        .map(|i| {
            Job::new(
                format!("point/{i}"),
                Json::object().with("i", i).with("suite", "hb-determinism"),
                |spec| {
                    let i = spec.get("i").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                    Json::object().with("square", i * i)
                },
            )
        })
        .collect();
    let run = exec.run_campaign("hb-determinism", jobs);
    assert!(run.failures.is_empty(), "{:?}", run.failures);
    let events = scale_out_processors::exec::heartbeat::read_events(&dir.join(PROGRESS_FILE));
    let mut ids: Vec<(String, String, String)> = events
        .iter()
        .map(|e| {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned()
            };
            (field("ev"), field("job"), field("source"))
        })
        .collect();
    ids.sort();
    ids
}

/// A scratch directory that cleans up after itself.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sop-hb-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The recorded fleet campaign stream (a real `sop fleet --quick
/// --servers 16` run) snapshots into simulated-hours per second: fleet
/// jobs advance the heartbeat's work counter in simulated seconds, and
/// `sop top` must render that as sim-hours/s, never Mcycles/s.
#[test]
fn recorded_fleet_stream_reports_sim_hours_per_sec() {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/progress_fleet.ndjson");
    let events = scale_out_processors::exec::heartbeat::read_events(&fixture);
    assert!(
        !events.is_empty(),
        "fixture {} is readable",
        fixture.display()
    );
    let snap =
        scale_out_processors::exec::heartbeat::snapshot(&events).expect("fixture holds a campaign");
    assert_eq!(snap.campaign, "fleet");
    assert!(snap.done, "the recorded campaign ran to completion");
    assert_eq!((snap.total, snap.computed, snap.failed), (8, 8, 0));
    assert_eq!(
        snap.mcycles_per_sec, None,
        "fleet work deltas are simulated seconds, not cycles"
    );
    let hours = snap.sim_hours_per_sec.expect("fleet rate is present");
    assert!(hours > 0.0, "{hours}");
    let panel = snap.render();
    assert!(panel.contains("sim-hours/s"), "{panel}");
    assert!(!panel.contains("Mcycles"), "{panel}");
}

#[test]
fn job_event_set_is_identical_across_worker_counts() {
    let one = Scratch::new("w1");
    let two = Scratch::new("w2");
    let serial = event_identities(1, &one.0);
    let parallel = event_identities(2, &two.0);
    assert_eq!(
        serial, parallel,
        "heartbeat event identities must not depend on worker count"
    );
    // The stream carries exactly the expected shape: one start and one
    // end, and a start/finish pair per job, all computed on a cold cache.
    let count = |ev: &str| serial.iter().filter(|(e, _, _)| e == ev).count();
    assert_eq!(count("campaign_start"), 1);
    assert_eq!(count("campaign_end"), 1);
    assert_eq!(count("job_start"), 6);
    assert_eq!(count("job_finish"), 6);
    assert!(
        serial
            .iter()
            .filter(|(e, _, _)| e == "job_finish")
            .all(|(_, _, s)| s == "computed"),
        "cold-cache runs compute every job"
    );
}
