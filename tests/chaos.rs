//! Chaos test: a campaign with injected harness faults (~20% of jobs
//! panicking or timing out) must complete with partial results, report
//! the failures in a structured way, leave the on-disk cache free of
//! debris, and come back fully green under `--resume` by recomputing
//! exactly the failed subset.

use scale_out_processors::exec::{audit_dir, Exec, ExecConfig, Job, JobSource};
use scale_out_processors::obs::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sop-chaos-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const JOBS: u64 = 25;

/// Jobs 3, 8, 13, 18, 23 panic and job 21 hangs past the watchdog while
/// `chaos` is armed — 6 of 25 jobs, the ~20% injection rate. `calls`
/// counts actual evaluations (not cache replays).
fn chaos_jobs(chaos: &Arc<AtomicBool>, calls: &Arc<AtomicU64>) -> Vec<Job<'static>> {
    (0..JOBS)
        .map(|x| {
            let chaos = Arc::clone(chaos);
            let calls = Arc::clone(calls);
            Job::new(
                format!("chaos{x}"),
                Json::object().with("kind", "chaos").with("x", x),
                move |spec| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    let x = spec.get("x").and_then(Json::as_f64).expect("x") as u64;
                    if chaos.load(Ordering::Relaxed) {
                        if x % 5 == 3 {
                            panic!("injected chaos at {x}");
                        }
                        if x == 21 {
                            std::thread::sleep(std::time::Duration::from_secs(5));
                        }
                    }
                    Json::UInt(x * x)
                },
            )
        })
        .collect()
}

#[test]
fn chaotic_campaign_survives_and_resumes_to_green() {
    let dir = scratch_dir("resume");
    let chaos = Arc::new(AtomicBool::new(true));
    let calls = Arc::new(AtomicU64::new(0));
    let mk_exec = |resume| {
        Exec::new(ExecConfig {
            jobs: 4,
            cache_dir: Some(dir.clone()),
            resume,
            timeout_secs: Some(1),
            ..ExecConfig::default()
        })
    };
    let expected: Vec<Json> = (0..JOBS).map(|x| Json::UInt(x * x)).collect();

    // First pass: six jobs die (five panics, one watchdog timeout).
    let exec = mk_exec(false);
    let run = exec.run_campaign("chaos", chaos_jobs(&chaos, &calls));
    assert!(!run.is_fully_green());
    assert_eq!(run.failures.len(), 6, "{:?}", run.failures);
    assert_eq!(run.count(JobSource::Failed), 6);
    assert!(run
        .failures
        .iter()
        .any(|f| f.error.contains("injected chaos")));
    assert!(run.failures.iter().any(|f| f.error.contains("timed out")));
    // Every surviving slot matches the fault-free value; every failed
    // slot is an explicit hole, not a fabrication.
    for (i, (got, want)) in run.results.iter().zip(&expected).enumerate() {
        if run.failures.iter().any(|f| f.index == i) {
            assert_eq!(*got, Json::Null, "failed slot {i} must stay empty");
        } else {
            assert_eq!(got, want, "surviving slot {i}");
        }
    }
    // The engine-level failure log matches the run's.
    assert_eq!(exec.failures().len(), 6);
    // No truncated or half-written cache entries: every file on disk is
    // a valid, hash-verified entry.
    let audit = audit_dir(&dir).expect("audit");
    assert!(audit.is_clean(), "{audit:?}");
    assert_eq!(audit.valid, JOBS as usize - 6);

    // Resume with the fault cleared: only the failed subset recomputes.
    chaos.store(false, Ordering::Relaxed);
    let before = calls.load(Ordering::Relaxed);
    let exec2 = mk_exec(true);
    let run2 = exec2.run_campaign("chaos", chaos_jobs(&chaos, &calls));
    assert!(run2.is_fully_green());
    assert_eq!(run2.results, expected);
    assert_eq!(
        calls.load(Ordering::Relaxed) - before,
        6,
        "resume must recompute exactly the failed subset"
    );
    assert_eq!(run2.count(JobSource::Computed), 6);
    assert_eq!(run2.count(JobSource::Failed), 0);
    let audit = audit_dir(&dir).expect("audit");
    assert!(audit.is_clean(), "{audit:?}");
    assert_eq!(audit.valid, JOBS as usize);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_free_subset_is_unaffected_by_the_chaos() {
    // The same campaign without injected faults: byte-identical values
    // in every slot the chaotic run also produced.
    let dir = scratch_dir("subset");
    let chaos_on = Arc::new(AtomicBool::new(true));
    let calls = Arc::new(AtomicU64::new(0));
    let chaotic = Exec::new(ExecConfig {
        jobs: 4,
        cache_dir: Some(dir.clone()),
        timeout_secs: Some(1),
        ..ExecConfig::default()
    })
    .run_campaign("subset", chaos_jobs(&chaos_on, &calls));

    let chaos_off = Arc::new(AtomicBool::new(false));
    let healthy = Exec::with_workers(2).run_campaign("subset", chaos_jobs(&chaos_off, &calls));
    assert!(healthy.is_fully_green());
    for (i, (c, h)) in chaotic.results.iter().zip(&healthy.results).enumerate() {
        if chaotic.failures.iter().all(|f| f.index != i) {
            assert_eq!(c, h, "slot {i} must match the fault-free run");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
