//! Zero-overhead-when-disabled guard for host self-profiling.
//!
//! The profiler is compiled into every build; this suite pins the
//! contract that leaving it disarmed changes nothing: a machine that
//! never calls `enable_profiling` produces bit-identical results under
//! both engines and exports no `prof.*` keys, and a stable report built
//! from such a run is byte-for-byte reproducible. Arming the profiler
//! adds the `prof.*` keys and nothing else — host-side timing must
//! never perturb the simulated machine.

use scale_out_processors::noc::TopologyKind;
use scale_out_processors::obs::{
    diff_reports, stabilized, DiffConfig, ProfBreakdown, Registry, Report, SpanLog,
};
use scale_out_processors::sim::{Machine, SimConfig, SimResult};
use scale_out_processors::workloads::Workload;

fn run(armed: bool, reference: bool) -> SimResult {
    let cfg = SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Mesh);
    let mut m = Machine::new(cfg);
    m.set_reference_mode(reference);
    if armed {
        m.enable_profiling();
    }
    m.run_window(1_000, 3_000)
}

/// Serializes a run the way `repro --json --stable` does, minus the
/// wall-clock dependent parts `stabilized` strips anyway.
fn stable_report(r: &SimResult) -> String {
    let mut metrics = Registry::new();
    metrics.merge(&r.metrics);
    let report = Report::new("prof-zero-cost", "profiling guard");
    let doc = report.to_json(&SpanLog::new(), &metrics);
    stabilized(&doc).to_pretty_string()
}

#[test]
fn disarmed_runs_are_byte_identical_and_prof_free() {
    let a = run(false, false);
    let b = run(false, false);
    assert_eq!(a, b, "disarmed event-driven runs are bit-deterministic");
    assert_eq!(stable_report(&a), stable_report(&b));
    let reference = run(false, true);
    assert_eq!(a, reference, "engines agree with the profiler compiled in");
    assert!(
        !a.metrics.iter().any(|(k, _)| k.starts_with("prof.")),
        "disarmed run must not export prof.* keys"
    );
}

#[test]
fn arming_the_profiler_only_adds_prof_keys() {
    let off = run(false, false);
    let on = run(true, false);
    // Identical except for the additional prof.* metrics.
    let mut cfg = DiffConfig::exact();
    cfg.ignore.push("metrics.prof.".to_owned());
    let off_doc = scale_out_processors::obs::json::parse(&stable_report(&off)).expect("json");
    let on_doc = scale_out_processors::obs::json::parse(&stable_report(&on)).expect("json");
    let d = diff_reports(&off_doc, &on_doc, &cfg);
    assert!(
        d.ok(),
        "profiling perturbed the simulation: {:?}",
        d.violations
    );
    let breakdown = ProfBreakdown::from_registry(&on.metrics)
        .expect("armed run exports prof.advance for the breakdown");
    assert!(breakdown.consistent(), "self-times exceed the advance wall");
    assert!(breakdown.advance_ns > 0);
}
