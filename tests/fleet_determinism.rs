//! The fleet report is a pure function of its seed.
//!
//! A fleet campaign must produce byte-identical stabilized reports no
//! matter how it was scheduled: one worker or four, cold cache or warm.
//! Every source of randomness is a seeded shim-RNG stream, time is an
//! integer tick counter, and the load balancer splits arrivals with
//! exact integer arithmetic — so the only thing allowed to change the
//! bytes is the seed itself.

use scale_out_processors::exec::{Exec, ExecConfig};
use scale_out_processors::fleet::{fleet_points, grid};
use scale_out_processors::obs::{stabilized, Json, Registry, Report, SpanLog};

/// Builds the stabilized fleet report exactly the way `sop fleet`
/// does — engine campaign, summed fleet metrics, report document —
/// and returns its pretty-printed bytes.
fn fleet_report(workers: usize, dir: &std::path::Path, seed: u64) -> String {
    let exec = Exec::new(ExecConfig {
        jobs: workers,
        cache_dir: Some(dir.to_path_buf()),
        ..ExecConfig::default()
    });
    let specs = grid(8, seed, true, None, None);
    let mut spans = SpanLog::new();
    let rows = spans.time("fleet", |_| fleet_points(&exec, "fleet", &specs));
    assert!(exec.failures().is_empty(), "{:?}", exec.failures());
    let mut metrics = Registry::new();
    let total_of = |row: &Json, key: &str| {
        row.get("totals")
            .and_then(|t| t.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    for row in &rows {
        metrics.counter_add("fleet.requests.offered", total_of(row, "offered"));
        metrics.counter_add("fleet.requests.served", total_of(row, "served"));
        metrics.counter_add("fleet.requests.dropped", total_of(row, "dropped"));
    }
    metrics.gauge_set("fleet.points", rows.len() as f64);
    metrics.merge(&exec.metrics_snapshot());
    let mut report = Report::new("fleet", "Scale-Out Processors: fleet simulation");
    report.set("campaign", Json::from("fleet"));
    report.set("quick", Json::from(true));
    report.set("fleet", Json::Arr(rows));
    stabilized(&report.to_json(&spans, &metrics)).to_pretty_string()
}

/// A scratch directory that cleans up after itself.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sop-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn fleet_report_is_byte_identical_across_worker_counts() {
    let one = Scratch::new("w1");
    let four = Scratch::new("w4");
    let serial = fleet_report(1, &one.0, 42);
    let parallel = fleet_report(4, &four.0, 42);
    assert_eq!(
        serial, parallel,
        "stabilized fleet reports must not depend on worker count"
    );
    // A warm-cache rerun replays every row from disk and must not
    // change a byte either.
    let replay = fleet_report(4, &four.0, 42);
    assert_eq!(parallel, replay, "cache hits must reproduce the report");
}

#[test]
fn fleet_report_depends_on_the_seed_and_nothing_else() {
    let a = Scratch::new("seed-a");
    let b = Scratch::new("seed-b");
    let c = Scratch::new("seed-c");
    let seed42 = fleet_report(2, &a.0, 42);
    let seed42_again = fleet_report(2, &b.0, 42);
    let seed43 = fleet_report(2, &c.0, 43);
    assert_eq!(seed42, seed42_again, "same seed, same bytes");
    assert_ne!(
        seed42, seed43,
        "a different seed draws different traffic and faults"
    );
}
