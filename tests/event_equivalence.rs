//! The event-driven engine must be indistinguishable from per-cycle
//! simulation.
//!
//! `Machine::set_reference_mode(true)` disables every fast-path shortcut:
//! the machine ticks every cycle, sweeps every router, and polls every
//! core — the semantics the event-driven engine (idle-cycle jumps, the
//! active-router worklist, per-core poll scheduling) claims to reproduce
//! exactly. These tests run both engines over the chapter-3 validation
//! configurations and a chapter-4 pod and require the *entire* result —
//! every named metric, histogram bucket, and NOC counter — to be equal.

use scale_out_processors::noc::TopologyKind;
use scale_out_processors::sim::{Machine, SimConfig, SimResult};
use scale_out_processors::workloads::Workload;

/// Runs one window on a fresh machine in each mode and returns both
/// results.
fn both_modes(cfg: SimConfig, warm: u64, measure: u64) -> (SimResult, SimResult) {
    let mut event = Machine::new(cfg);
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    (
        event.run_window(warm, measure),
        reference.run_window(warm, measure),
    )
}

fn assert_equivalent(cfg: SimConfig, warm: u64, measure: u64, what: &str) {
    let (event, reference) = both_modes(cfg, warm, measure);
    assert_eq!(
        event, reference,
        "event-driven diverged from per-cycle reference: {what}"
    );
}

#[test]
fn validation_configs_match_reference() {
    for topology in [TopologyKind::Crossbar, TopologyKind::Mesh] {
        for cores in [1u32, 4, 16] {
            for workload in [Workload::WebSearch, Workload::DataServing] {
                let cfg = SimConfig::validation(workload, cores, topology);
                assert_equivalent(
                    cfg,
                    500,
                    1_500,
                    &format!("{workload:?} x{cores} on {topology:?}"),
                );
            }
        }
    }
}

#[test]
fn pod_64_nocout_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut);
    assert_equivalent(cfg, 1_500, 3_000, "pod_64 WebSearch on NOC-Out");
}

#[test]
fn pod_64_flattened_butterfly_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::MapReduceC, TopologyKind::FlattenedButterfly);
    assert_equivalent(
        cfg,
        1_500,
        3_000,
        "pod_64 MapReduceC on flattened butterfly",
    );
}

/// Consecutive windows over one long execution (the SimFlex sampling
/// pattern) must also agree: the event engine's carried-over state —
/// worklists, poll schedules, pending events — matches the reference
/// between windows, not just within one.
#[test]
fn consecutive_windows_match_reference() {
    let cfg = SimConfig::validation(Workload::MediaStreaming, 4, TopologyKind::Mesh);
    let mut event = Machine::new(cfg);
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    for window in 0..2 {
        let e = event.run_window(500, 1_000);
        let r = reference.run_window(500, 1_000);
        assert_eq!(e, r, "window {window} diverged");
    }
}
