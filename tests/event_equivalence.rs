//! The event-driven engine must be indistinguishable from per-cycle
//! simulation.
//!
//! `Machine::set_reference_mode(true)` disables every fast-path shortcut:
//! the machine ticks every cycle, sweeps every router, and polls every
//! core — the semantics the event-driven engine (idle-cycle jumps, the
//! active-router worklist, per-core poll scheduling) claims to reproduce
//! exactly. These tests run both engines over the chapter-3 validation
//! configurations and a chapter-4 pod and require the *entire* result —
//! every named metric, histogram bucket, and NOC counter — to be equal.

use scale_out_processors::noc::TopologyKind;
use scale_out_processors::sim::{Machine, SimConfig, SimResult};
use scale_out_processors::workloads::Workload;

/// Runs one window on a fresh machine in each mode and returns both
/// results.
fn both_modes(cfg: SimConfig, warm: u64, measure: u64) -> (SimResult, SimResult) {
    let mut event = Machine::new(cfg);
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    (
        event.run_window(warm, measure),
        reference.run_window(warm, measure),
    )
}

fn assert_equivalent(cfg: SimConfig, warm: u64, measure: u64, what: &str) {
    let (event, reference) = both_modes(cfg, warm, measure);
    assert_eq!(
        event, reference,
        "event-driven diverged from per-cycle reference: {what}"
    );
}

#[test]
fn validation_configs_match_reference() {
    for topology in [TopologyKind::Crossbar, TopologyKind::Mesh] {
        for cores in [1u32, 4, 16] {
            for workload in [Workload::WebSearch, Workload::DataServing] {
                let cfg = SimConfig::validation(workload, cores, topology);
                assert_equivalent(
                    cfg,
                    500,
                    1_500,
                    &format!("{workload:?} x{cores} on {topology:?}"),
                );
            }
        }
    }
}

#[test]
fn pod_64_nocout_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut);
    assert_equivalent(cfg, 1_500, 3_000, "pod_64 WebSearch on NOC-Out");
}

#[test]
fn pod_64_flattened_butterfly_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::MapReduceC, TopologyKind::FlattenedButterfly);
    assert_equivalent(
        cfg,
        1_500,
        3_000,
        "pod_64 MapReduceC on flattened butterfly",
    );
}

/// Consecutive windows over one long execution (the SimFlex sampling
/// pattern) must also agree: the event engine's carried-over state —
/// worklists, poll schedules, pending events — matches the reference
/// between windows, not just within one.
#[test]
fn consecutive_windows_match_reference() {
    let cfg = SimConfig::validation(Workload::MediaStreaming, 4, TopologyKind::Mesh);
    let mut event = Machine::new(cfg);
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    for window in 0..2 {
        let e = event.run_window(500, 1_000);
        let r = reference.run_window(500, 1_000);
        assert_eq!(e, r, "window {window} diverged");
    }
}

/// The domain-parallel engine at 1, 2, and 4 threads must produce the
/// same result — every named metric, histogram bucket, and NOC counter
/// — as the per-cycle reference, for every chapter-quick configuration.
/// Same discipline as `tests/fleet_determinism.rs`: the thread count is
/// a host resource knob and must never be observable in the results.
fn assert_threads_equivalent(cfg: SimConfig, warm: u64, measure: u64, what: &str) {
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    let expect = reference.run_window(warm, measure);
    for threads in [1usize, 2, 4] {
        let mut machine = Machine::new(cfg);
        machine.set_threads(threads);
        assert!(
            threads > 1 || !machine.par_active(),
            "--threads 1 must stay on the sequential path: {what}"
        );
        let got = machine.run_window(warm, measure);
        assert_eq!(got, expect, "--threads {threads} diverged: {what}");
    }
}

#[test]
fn parallel_validation_configs_match_reference() {
    for topology in [TopologyKind::Crossbar, TopologyKind::Mesh] {
        for cores in [4u32, 16] {
            let cfg = SimConfig::validation(Workload::WebSearch, cores, topology);
            assert_threads_equivalent(
                cfg,
                500,
                1_500,
                &format!("WebSearch x{cores} on {topology:?}"),
            );
        }
    }
}

#[test]
fn parallel_pod_64_nocout_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut);
    assert_threads_equivalent(cfg, 1_500, 3_000, "pod_64 WebSearch on NOC-Out");
}

#[test]
fn parallel_pod_64_flattened_butterfly_matches_reference() {
    let cfg = SimConfig::pod_64(Workload::MapReduceC, TopologyKind::FlattenedButterfly);
    assert_threads_equivalent(
        cfg,
        1_500,
        3_000,
        "pod_64 MapReduceC on flattened butterfly",
    );
}

/// Carried-over parallel-engine state (domain scratch, poll chunks,
/// worklists) must stay equivalent across consecutive windows too.
#[test]
fn parallel_consecutive_windows_match_reference() {
    let cfg = SimConfig::pod_64(Workload::DataServing, TopologyKind::Mesh);
    let mut parallel = Machine::new(cfg);
    parallel.set_threads(4);
    assert!(parallel.par_active(), "a 64-core pod must shard");
    let mut reference = Machine::new(cfg);
    reference.set_reference_mode(true);
    for window in 0..2 {
        let p = parallel.run_window(500, 1_000);
        let r = reference.run_window(500, 1_000);
        assert_eq!(p, r, "window {window} diverged");
    }
}
