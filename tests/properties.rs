//! Property-based tests (proptest) over the core data structures and
//! model invariants.

use proptest::prelude::*;
use scale_out_processors::core::PodConfig;
use scale_out_processors::model::{DesignPoint, Interconnect};
use scale_out_processors::noc::slab::Slab;
use scale_out_processors::noc::{
    cut_links, lookahead, DomainPartition, MessageClass, Network, NocConfig, TopologyKind,
};
use scale_out_processors::sim::{DirectoryState, LlcBank};
use scale_out_processors::tco::estimated_price_usd;
use scale_out_processors::tech::{CacheGeometry, CoreKind, TechnologyNode};
use scale_out_processors::threed::{Pod3d, StackStrategy};
use scale_out_processors::workloads::{Workload, WorkloadProfile};

fn any_workload() -> impl Strategy<Value = Workload> {
    prop::sample::select(Workload::ALL.to_vec())
}

fn any_core_kind() -> impl Strategy<Value = CoreKind> {
    prop::sample::select(CoreKind::ALL.to_vec())
}

proptest! {
    // Network-building cases are expensive; 48 cases per property keeps
    // the suite fast while still exploring the space.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The network never loses or duplicates packets, whatever the
    /// injection pattern.
    #[test]
    fn noc_conserves_packets(
        seed in 0u64..1000,
        kind in prop::sample::select(vec![
            TopologyKind::Mesh,
            TopologyKind::NocOut,
            TopologyKind::Crossbar,
        ]),
        n_packets in 1usize..120,
    ) {
        let mut net = Network::new(NocConfig::pod_64(kind));
        let cores = net.core_endpoints().to_vec();
        let llcs = net.llc_endpoints().to_vec();
        let mut state = seed;
        let mut injected = 0u64;
        for i in 0..n_packets {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = cores[(state >> 33) as usize % cores.len()];
            let dst = llcs[(state >> 17) as usize % llcs.len()];
            let class = MessageClass::ALL[i % 3];
            net.inject(src, dst, class, 0, 0);
            injected += 1;
        }
        let delivered = net.drain(200_000);
        prop_assert_eq!(delivered.len() as u64, injected);
        prop_assert_eq!(net.in_flight(), 0);
        // No duplicates.
        let mut ids: Vec<_> = delivered.iter().map(|d| d.packet).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, injected);
    }

    /// Directory coherence: after any access sequence, a write leaves the
    /// line owned by the writer, and stats never overcount.
    #[test]
    fn llc_bank_directory_invariants(
        ops in prop::collection::vec((0u32..8, 0u64..200, prop::bool::ANY), 1..300)
    ) {
        let mut bank = LlcBank::new(64 * 64, 4); // small: forces evictions
        // Track the last access of each line; only a line whose final
        // access was a write is guaranteed to be exclusively owned.
        let mut last_access = std::collections::HashMap::new();
        for &(core, line, write) in &ops {
            bank.access(core, line, write);
            last_access.insert(line, (core, write));
        }
        let (acc, miss) = (bank.accesses(), bank.misses());
        prop_assert_eq!(acc, ops.len() as u64);
        prop_assert!(miss <= acc);
        // Re-writing a line as its most recent (writing) accessor never
        // snoops anyone: single-owner invariant.
        for (&line, &(core, write)) in last_access.iter().take(8) {
            if !write {
                continue;
            }
            match bank.access(core, line, true) {
                scale_out_processors::sim::cache::BankOutcome::Hit { snoop } => {
                    prop_assert!(snoop.is_empty(), "owner re-write snooped {snoop:?}")
                }
                scale_out_processors::sim::cache::BankOutcome::Miss { .. } => {}
            }
        }
    }

    /// Directory states are well-formed: shared lists never contain
    /// duplicates (checked via the public API by re-reading).
    #[test]
    fn repeated_reads_do_not_duplicate_sharers(core in 0u32..6, line in 0u64..50) {
        let mut bank = LlcBank::new(1 << 16, 16);
        for _ in 0..5 {
            bank.access(core, line, false);
        }
        // A write by another core snoops `core` exactly once.
        match bank.access(core + 100, line, true) {
            scale_out_processors::sim::cache::BankOutcome::Hit { snoop } => {
                let hits = snoop.iter().filter(|&&c| c == core).count();
                prop_assert_eq!(hits, 1);
            }
            _ => prop_assert!(false, "line must be resident"),
        }
        let _ = DirectoryState::Owned(0); // type is exercised above
    }

    /// The analytic model is monotone: more network latency never helps,
    /// and the ideal fabric upper-bounds every realizable one.
    #[test]
    fn model_latency_monotonicity(
        w in any_workload(),
        kind in any_core_kind(),
        // From 4 cores up: a 1-2 tile "mesh" degenerates to a wire and
        // legitimately beats the fixed-4-cycle ideal fabric.
        cores_pow in 2u32..8,
        llc in prop::sample::select(vec![1.0, 2.0, 4.0, 8.0]),
    ) {
        let cores = 1u32 << cores_pow;
        for ic in [Interconnect::Crossbar, Interconnect::Mesh] {
            let real = DesignPoint::new(kind, cores, llc, ic).evaluate(w);
            // Compare against an ideal fabric with the SAME banking, so
            // only network latency differs.
            let banks = DesignPoint::new(kind, cores, llc, ic).llc_banks;
            let ideal = DesignPoint::new(kind, cores, llc, Interconnect::Ideal)
                .with_banks(banks)
                .evaluate(w);
            prop_assert!(real.per_core_ipc <= ideal.per_core_ipc * 1.0001,
                "{ic} beat ideal at {cores} cores");
            prop_assert!(real.per_core_ipc > 0.0);
        }
    }

    /// Miss curves are monotone non-increasing in capacity and
    /// non-decreasing in sharer count.
    #[test]
    fn miss_curve_monotonicity(
        w in any_workload(),
        c1 in 1.0f64..32.0,
        c2 in 1.0f64..32.0,
        n1 in 1u32..256,
        n2 in 1u32..256,
    ) {
        let (lo_c, hi_c) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
        let (lo_n, hi_n) = if n1 < n2 { (n1, n2) } else { (n2, n1) };
        let curve = WorkloadProfile::of(w).miss_curve;
        prop_assert!(curve.misses_per_kilo_instr(hi_c, lo_n)
            <= curve.misses_per_kilo_instr(lo_c, lo_n) + 1e-12);
        prop_assert!(curve.misses_per_kilo_instr(lo_c, hi_n) + 1e-12
            >= curve.misses_per_kilo_instr(lo_c, lo_n));
    }

    /// Pod metrics are internally consistent: PD equals aggregate over
    /// area, and both components are positive.
    #[test]
    fn pod_metrics_consistency(
        kind in any_core_kind(),
        cores_pow in 0u32..8,
        llc in prop::sample::select(vec![1.0, 2.0, 4.0, 8.0]),
    ) {
        let m = PodConfig::new(kind, 1 << cores_pow, llc, Interconnect::Crossbar).metrics();
        prop_assert!(m.area_mm2 > 0.0 && m.aggregate_ipc > 0.0);
        prop_assert!((m.performance_density - m.aggregate_ipc / m.area_mm2).abs() < 1e-12);
    }

    /// Cache bank latency is monotone in capacity.
    #[test]
    fn bank_latency_monotone(a in 0.01f64..64.0, b in 0.01f64..64.0) {
        let g = CacheGeometry::new();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(g.bank_latency_cycles(lo) <= g.bank_latency_cycles(hi));
    }

    /// Chip price falls with volume and rises with die area.
    #[test]
    fn price_monotonicity(
        die in 50.0f64..400.0,
        v1 in 10_000.0f64..2_000_000.0,
        v2 in 10_000.0f64..2_000_000.0,
    ) {
        let (lo_v, hi_v) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(estimated_price_usd(die, hi_v) <= estimated_price_usd(die, lo_v));
        prop_assert!(estimated_price_usd(die + 50.0, lo_v) > estimated_price_usd(die, lo_v));
    }

    /// 3D identities: footprint x dies equals total silicon, and one die
    /// reduces PD3D to plain perf/area.
    #[test]
    fn pod3d_identities(
        kind in any_core_kind(),
        dies in 1u32..5,
        strategy in prop::sample::select(vec![
            StackStrategy::FixedPod,
            StackStrategy::FixedDistance,
        ]),
    ) {
        let pod = Pod3d::new(kind, 16, 2.0, dies, strategy);
        let m = pod.metrics();
        prop_assert!(
            (m.footprint_mm2 * f64::from(dies) - pod.total_area_mm2()).abs() < 1e-9
        );
        if dies == 1 {
            prop_assert!(
                (m.performance_density_3d - m.aggregate_ipc / m.footprint_mm2).abs() < 1e-12
            );
        }
    }

    /// Software efficiency is in (0, 1] and non-increasing in cores.
    #[test]
    fn scalability_efficiency_bounds(w in any_workload(), n in 1u32..512) {
        let s = WorkloadProfile::of(w).scalability;
        let e = s.efficiency(n);
        prop_assert!(e > 0.0 && e <= 1.0);
        prop_assert!(s.efficiency(n.saturating_mul(2).max(n)) <= e + 1e-12);
    }

    /// Traffic curves are monotone non-increasing in LLC capacity.
    #[test]
    fn traffic_monotone(w in any_workload(), c1 in 0.5f64..64.0, c2 in 0.5f64..64.0) {
        let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
        let t = WorkloadProfile::of(w).traffic;
        prop_assert!(t.bytes_per_instr(hi) <= t.bytes_per_instr(lo) + 1e-12);
    }

    /// Delivered packet latency is never below the topology's zero-load
    /// latency plus serialization.
    #[test]
    fn noc_latency_lower_bound(
        kind in prop::sample::select(vec![
            TopologyKind::Mesh,
            TopologyKind::NocOut,
            TopologyKind::FlattenedButterfly,
        ]),
        core_sel in 0usize..64,
        llc_sel in 0usize..64,
        class in prop::sample::select(MessageClass::ALL.to_vec()),
    ) {
        let mut net = Network::new(NocConfig::pod_64(kind));
        let src = net.core_endpoints()[core_sel % net.core_endpoints().len()];
        let dst = net.llc_endpoints()[llc_sel % net.llc_endpoints().len()];
        prop_assume!(src != dst);
        let zero_load = net.topology().zero_load_latency(src, dst);
        let serialization = class.flits(net.config().link_bits) - 1;
        let id = net.inject(src, dst, class, 0, 0);
        let done = net.drain(100_000);
        let d = done.iter().find(|d| d.packet == id).expect("delivered");
        prop_assert!(d.latency() >= u64::from(zero_load + serialization));
    }

    /// Slab keys never alias: whatever interleaving of inserts and
    /// removes runs, a key handed out for a since-removed value sees
    /// nothing, even when its slot has been recycled many times over.
    #[test]
    fn slab_generation_reuse_never_aliases(
        ops in prop::collection::vec((prop::bool::ANY, 0usize..8), 1..200)
    ) {
        let mut slab = Slab::new();
        let mut live: Vec<(scale_out_processors::noc::slab::Key, u64)> = Vec::new();
        let mut dead: Vec<scale_out_processors::noc::slab::Key> = Vec::new();
        let mut stamp = 0u64;
        for &(insert, pick) in &ops {
            if insert || live.is_empty() {
                stamp += 1;
                live.push((slab.insert(stamp), stamp));
            } else {
                let (key, _) = live.swap_remove(pick % live.len());
                prop_assert!(slab.remove(key).is_some());
                dead.push(key);
            }
            // Every live key reads exactly its own value…
            for &(key, value) in &live {
                prop_assert_eq!(slab.get(key), Some(&value));
            }
            // …and every retired key reads nothing, forever.
            for &key in &dead {
                prop_assert_eq!(slab.get(key), None);
                prop_assert!(!slab.contains(key));
            }
            prop_assert_eq!(slab.len(), live.len());
        }
    }

    /// The slab agrees with a HashMap oracle under random packet
    /// inject/deliver traffic, including deferred slot reclaim at step
    /// boundaries (the network's usage pattern).
    #[test]
    fn slab_matches_hashmap_oracle(
        steps in prop::collection::vec(
            prop::collection::vec((prop::bool::ANY, 0u64..1_000_000), 0..12),
            1..30,
        )
    ) {
        let mut slab = Slab::new();
        let mut oracle = std::collections::HashMap::new();
        let mut keys: Vec<scale_out_processors::noc::slab::Key> = Vec::new();
        for step in &steps {
            slab.reclaim_deferred();
            for &(inject, payload) in step {
                if inject || keys.is_empty() {
                    let key = slab.insert(payload);
                    oracle.insert(key, payload);
                    keys.push(key);
                } else {
                    // Deliver the oldest in-flight packet, FIFO-ish.
                    let key = keys.remove(payload as usize % keys.len());
                    prop_assert_eq!(slab.remove_deferred(key), oracle.remove(&key));
                }
            }
            prop_assert_eq!(slab.len(), oracle.len());
            for (&key, value) in &oracle {
                prop_assert_eq!(slab.get(key), Some(value));
            }
        }
    }

    /// The whole machine is deterministic: identical configurations give
    /// identical results.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..50) {
        use scale_out_processors::sim::{Machine, SimConfig};
        let mut cfg = SimConfig::validation(
            scale_out_processors::workloads::Workload::MapReduceW,
            4,
            TopologyKind::Crossbar,
        );
        cfg.seed = seed;
        let a = Machine::new(cfg).run(500, 1_500);
        let b = Machine::new(cfg).run(500, 1_500);
        prop_assert_eq!(a.instructions, b.instructions);
        prop_assert_eq!(a.llc_accesses, b.llc_accesses);
        prop_assert_eq!(a.snoops, b.snoops);
    }

    /// Histogram invariants: the mean lies within [0, max], quantiles are
    /// monotone in q, and merging preserves counts.
    #[test]
    fn histogram_invariants(samples in prop::collection::vec(0u64..100_000, 1..200)) {
        use scale_out_processors::sim::Histogram;
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let max = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(h.max(), max);
        prop_assert!(h.mean() <= max as f64);
        let mut prev = 0;
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile_upper(q);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!(h.quantile_upper(1.0) >= max);
    }

    /// Merging split histograms is lossless: recording a sample stream
    /// into k shards and merging them yields exactly the histogram of
    /// recording the whole stream into one — same counts, same sum, same
    /// quantiles at every q. (Merge is a bucket-wise add, so this is an
    /// identity, not an approximation; it is what makes per-window
    /// `sim.txn.*` exports safe to aggregate across reports.)
    #[test]
    fn histogram_merge_matches_single_recording(
        samples in prop::collection::vec(0u64..1_000_000, 1..300),
        shards in 1usize..6,
    ) {
        use scale_out_processors::obs::Histogram;
        let mut single = Histogram::new();
        for &s in &samples {
            single.record(s);
        }
        let mut parts = vec![Histogram::new(); shards];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.sum(), single.sum());
        prop_assert_eq!(merged.max(), single.max());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(
                merged.try_quantile_upper(q),
                single.try_quantile_upper(q),
                "q={}", q
            );
        }
    }

    /// Pareto frontier properties: nothing on the frontier is dominated,
    /// and everything off it is dominated by something on it.
    #[test]
    fn pareto_frontier_is_sound(
        points in prop::collection::vec((0.01f64..10.0, 0.01f64..10.0), 1..40)
    ) {
        use scale_out_processors::core::{pareto_frontier, FrontierPoint};
        let pts: Vec<FrontierPoint> = points
            .iter()
            .enumerate()
            .map(|(i, &(pd, ppw))| FrontierPoint {
                label: format!("p{i}"),
                performance_density: pd,
                perf_per_watt: ppw,
            })
            .collect();
        let frontier = pareto_frontier(&pts);
        prop_assert!(!frontier.is_empty());
        for f in &frontier {
            prop_assert!(!pts.iter().any(|q| q.dominates(f)));
        }
        for p in &pts {
            let on_frontier = frontier.iter().any(|f| {
                f.performance_density == p.performance_density
                    && f.perf_per_watt == p.perf_per_watt
            });
            if !on_frontier {
                prop_assert!(frontier.iter().any(|f| f.dominates(p)));
            }
        }
    }

    /// Zipf sampling stays in range and is monotone in the uniform draw.
    #[test]
    fn zipf_is_monotone_and_bounded(n in 1u64..1_000_000, s in 0.0f64..0.99) {
        use scale_out_processors::workloads::ZipfSampler;
        let z = ZipfSampler::new(n, s);
        let mut prev = 0;
        for i in 0..=20 {
            let u = f64::from(i) / 20.0;
            let idx = z.index(u);
            prop_assert!(idx < n);
            prop_assert!(idx >= prev);
            prev = idx;
        }
    }

    /// Fleet conservation: in every reporting window, served plus
    /// dropped plus the change in in-flight backlog exactly tiles the
    /// offered load — the simulator never loses or invents a request,
    /// whatever the fleet size, policy, seed, or fault pressure.
    #[test]
    fn fleet_windows_tile_offered_load(
        servers in 1u32..6,
        per_server_qps in 50u64..5_000,
        policy in prop::sample::select(vec![
            scale_out_processors::fleet::Policy::Drain,
            scale_out_processors::fleet::Policy::Derate,
        ]),
        seed in 0u64..1_000,
        duration in 400u64..1_600,
        window in 50u64..400,
        peak_util in prop::sample::select(vec![0.5, 0.9, 1.2]),
        mtbf in 100u64..2_000,
    ) {
        use scale_out_processors::fleet::{simulate, SimParams};
        let params = SimParams {
            servers,
            per_server_qps,
            policy,
            seed,
            duration_ticks: duration,
            window_ticks: window,
            peak_util,
            mtbf_ticks: mtbf,
            mttr_ticks: (mtbf / 4).max(1),
            deadline_ms: 4_000,
            service_ms: 20,
        };
        let out = simulate(&params);
        let mut ticks = 0u64;
        let mut carried_inflight = 0u64;
        for w in &out.windows {
            // Written addition-only: backlog can shrink over a window.
            prop_assert_eq!(
                w.offered + w.inflight_start,
                w.dropped + w.served + w.inflight_end,
                "window at tick {} does not tile", w.start_tick
            );
            prop_assert_eq!(w.accepted, w.offered - w.dropped);
            prop_assert_eq!(
                w.inflight_start, carried_inflight,
                "windows must chain their backlog"
            );
            carried_inflight = w.inflight_end;
            ticks += w.ticks;
        }
        prop_assert_eq!(ticks, duration, "windows must cover the whole run");
        prop_assert_eq!(carried_inflight, out.inflight_end);
        prop_assert_eq!(
            out.offered(),
            out.served() + out.dropped() + out.inflight_end,
            "run totals must tile once the final backlog is counted"
        );
    }

    /// Node scaling shrinks everything consistently: the same design at
    /// 20nm is smaller and at least as performant per area.
    #[test]
    fn node_scaling_improves_density(
        kind in any_core_kind(),
        cores_pow in 2u32..7,
    ) {
        let cores = 1u32 << cores_pow;
        let at = |node: TechnologyNode| {
            PodConfig::new(kind, cores, 4.0, Interconnect::Crossbar)
                .at_node(node)
                .metrics()
        };
        let m40 = at(TechnologyNode::N40);
        let m20 = at(TechnologyNode::N20);
        prop_assert!(m20.area_mm2 < m40.area_mm2 * 0.3);
        prop_assert!(m20.performance_density > m40.performance_density * 2.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parallel engine's domain partition covers every tile exactly
    /// once — no node swept twice, none orphaned — and stays balanced,
    /// whatever the topology size and requested domain count.
    #[test]
    fn domain_partition_covers_every_tile_exactly_once(
        nodes in 1usize..600,
        domains in 1usize..12,
    ) {
        let part = DomainPartition::new(nodes, domains);
        let mut covered = vec![0u32; nodes];
        for d in 0..part.domains() {
            for node in part.range(d) {
                covered[node] += 1;
                prop_assert_eq!(part.domain_of(node), d);
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "partition must be exact");
        let sizes: Vec<usize> = (0..part.domains()).map(|d| part.range(d).len()).collect();
        let (min, max) = (
            *sizes.iter().min().expect("at least one domain"),
            *sizes.iter().max().expect("at least one domain"),
        );
        prop_assert!(max - min <= 1, "contiguous split must be balanced");
    }

    /// The computed lookahead never exceeds the true minimum latency of
    /// any link whose endpoints straddle domains — the conservative
    /// bound the epoch barrier relies on — and is at least one cycle on
    /// every real fabric (so barrier-merged effects are always timely).
    #[test]
    fn lookahead_is_a_conservative_cross_domain_bound(
        kind in prop::sample::select(vec![
            TopologyKind::Mesh,
            TopologyKind::FlattenedButterfly,
            TopologyKind::NocOut,
            TopologyKind::Crossbar,
        ]),
        domains in 1usize..9,
    ) {
        let net = Network::new(NocConfig::pod_64(kind));
        let topo = net.topology();
        let part = DomainPartition::new(topo.len(), domains);
        let w = lookahead(topo, &part);
        // Brute force the bound over the raw channel lists.
        let mut brute: Option<u64> = None;
        for (node, channels) in topo.channels.iter().enumerate() {
            for ch in channels {
                if part.domain_of(ch.to) != part.domain_of(node) {
                    let latency = u64::from(ch.latency);
                    brute = Some(brute.map_or(latency, |b| b.min(latency)));
                }
            }
        }
        prop_assert_eq!(w, brute);
        match w {
            Some(w) => {
                prop_assert!(w >= 1, "a zero-cycle cut would starve the barrier");
                prop_assert!(cut_links(topo, &part)
                    .iter()
                    .all(|&(n, p)| u64::from(topo.channels[n][p].latency) >= w));
            }
            None => prop_assert!(cut_links(topo, &part).is_empty()),
        }
    }
}
