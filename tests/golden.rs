//! Golden-value regression tests.
//!
//! EXPERIMENTS.md records where this reproduction landed relative to the
//! thesis. These tests pin those landing points (with modest slack) so
//! future refactors cannot silently drift the calibration. If a test here
//! fails after an intentional model change, re-run
//! `cargo run --release -p sop-bench --bin repro -- all` and update both
//! the golden values and EXPERIMENTS.md together.

use scale_out_processors::core::designs::{reference_chip, DesignKind};
use scale_out_processors::core::PodConfig;
use scale_out_processors::model::{DesignPoint, Interconnect};
use scale_out_processors::noc::{NocAreaBreakdown, NocConfig, TopologyKind};
use scale_out_processors::tco::{estimated_price_usd, Datacenter, TcoParams};
use scale_out_processors::tech::{CoreKind, TechnologyNode};
use scale_out_processors::workloads::Workload;

fn within(value: f64, golden: f64, tol: f64) -> bool {
    (value - golden).abs() <= golden.abs() * tol
}

#[test]
fn golden_fig2_1_ipc_values() {
    let expect = [
        (Workload::DataServing, 1.26),
        (Workload::MapReduceC, 1.02),
        (Workload::MapReduceW, 1.66),
        (Workload::MediaStreaming, 0.91),
        (Workload::SatSolver, 1.50),
        (Workload::WebFrontend, 1.65),
        (Workload::WebSearch, 1.81),
    ];
    for (w, golden) in expect {
        let ipc = DesignPoint::new(CoreKind::Conventional, 4, 8.0, Interconnect::Ideal)
            .evaluate(w)
            .per_core_ipc;
        assert!(within(ipc, golden, 0.05), "{w}: {ipc:.2} vs {golden}");
    }
}

#[test]
fn golden_pod_metrics() {
    let ooo = PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar).metrics();
    assert!(within(ooo.area_mm2, 92.6, 0.02), "area {}", ooo.area_mm2);
    assert!(within(ooo.power_w, 20.3, 0.03), "power {}", ooo.power_w);
    assert!(
        within(ooo.bandwidth_gbps, 9.2, 0.10),
        "bw {}",
        ooo.bandwidth_gbps
    );
    let io = PodConfig::new(CoreKind::InOrder, 32, 2.0, Interconnect::Crossbar).metrics();
    assert!(within(io.area_mm2, 54.2, 0.02), "area {}", io.area_mm2);
    assert!(within(io.power_w, 18.0, 0.05), "power {}", io.power_w);
}

#[test]
fn golden_table_3_2_scale_out_rows() {
    struct Row {
        design: DesignKind,
        node: TechnologyNode,
        pd: f64,
        cores: u32,
        channels: u32,
    }
    let rows = [
        Row {
            design: DesignKind::ScaleOut(CoreKind::OutOfOrder),
            node: TechnologyNode::N40,
            pd: 0.106,
            cores: 32,
            channels: 3,
        },
        Row {
            design: DesignKind::ScaleOut(CoreKind::InOrder),
            node: TechnologyNode::N40,
            pd: 0.185,
            cores: 96,
            channels: 6,
        },
        Row {
            design: DesignKind::ScaleOut(CoreKind::OutOfOrder),
            node: TechnologyNode::N20,
            pd: 0.385,
            cores: 112,
            channels: 4,
        },
        Row {
            design: DesignKind::ScaleOut(CoreKind::InOrder),
            node: TechnologyNode::N20,
            pd: 0.522,
            cores: 192,
            channels: 6,
        },
    ];
    for r in rows {
        let c = reference_chip(r.design, r.node);
        assert_eq!(c.cores, r.cores, "{} at {}", c.label, r.node);
        assert_eq!(c.memory_channels, r.channels, "{} at {}", c.label, r.node);
        assert!(
            within(c.performance_density, r.pd, 0.05),
            "{} at {}: PD {:.3} vs {:.3}",
            c.label,
            r.node,
            c.performance_density,
            r.pd
        );
    }
}

#[test]
fn golden_fig4_7_noc_areas() {
    let area = |kind| {
        let cfg = NocConfig::pod_64(kind);
        NocAreaBreakdown::of(&cfg.build_topology(), cfg.link_bits).total_mm2()
    };
    assert!(within(area(TopologyKind::Mesh), 3.24, 0.05));
    assert!(within(area(TopologyKind::FlattenedButterfly), 29.2, 0.05));
    assert!(within(area(TopologyKind::NocOut), 2.89, 0.05));
}

#[test]
fn golden_table_5_1_prices() {
    assert!(within(estimated_price_usd(158.6, 200_000.0), 312.0, 0.03));
    assert!(within(estimated_price_usd(263.3, 200_000.0), 365.0, 0.03));
}

#[test]
fn golden_datacenter_headlines() {
    let params = TcoParams::thesis();
    let conv = Datacenter::for_design(DesignKind::Conventional, &params, 64);
    let one_pod = Datacenter::for_design(DesignKind::OnePod(CoreKind::OutOfOrder), &params, 64);
    let sop_io = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::InOrder), &params, 64);
    let perf_gain = one_pod.performance / conv.performance;
    assert!(
        within(perf_gain, 4.47, 0.05),
        "1pod perf gain {perf_gain:.2}"
    );
    let tco_gain = sop_io.perf_per_tco() / conv.perf_per_tco();
    assert!(
        within(tco_gain, 7.7, 0.08),
        "SOP-IO perf/TCO gain {tco_gain:.2}"
    );
}
