//! Cross-crate integration tests: each checks that a full experiment
//! pipeline reproduces a qualitative result the thesis reports.

use scale_out_processors::core::designs::{reference_chip, DesignKind};
use scale_out_processors::core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use scale_out_processors::noc::{NocAreaBreakdown, NocConfig, TopologyKind};
use scale_out_processors::sim::{Machine, SimConfig};
use scale_out_processors::tco::{Datacenter, TcoParams};
use scale_out_processors::tech::{CoreKind, TechnologyNode};
use scale_out_processors::threed::{Pod3d, StackStrategy};
use scale_out_processors::workloads::Workload;

/// Table 3.2's PD ordering holds at both nodes and for both core types:
/// conventional < tiled < LLC-optimal < Scale-Out < ideal.
#[test]
fn performance_density_ordering_is_reproduced() {
    for node in [TechnologyNode::N40, TechnologyNode::N20] {
        let conv = reference_chip(DesignKind::Conventional, node).performance_density;
        for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
            let tiled = reference_chip(DesignKind::Tiled(kind), node).performance_density;
            let opt = reference_chip(DesignKind::LlcOptimalTiled(kind), node).performance_density;
            let sop = reference_chip(DesignKind::ScaleOut(kind), node).performance_density;
            let ideal = reference_chip(DesignKind::Ideal(kind), node).performance_density;
            assert!(conv < tiled, "{node} {kind:?}");
            assert!(tiled < opt, "{node} {kind:?}");
            assert!(opt < sop * 1.06, "{node} {kind:?}: opt {opt} sop {sop}");
            assert!(sop < ideal, "{node} {kind:?}");
        }
    }
}

/// The derived pods match §3.4.2/§3.4.3: 16c/4MB (OoO, 5% rule) and
/// 32c/2MB (in-order, 3.5% rule — see EXPERIMENTS.md).
#[test]
fn pod_derivation_matches_chapter_3() {
    let ooo = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
    assert_eq!(preferred_pod(&ooo, 0.05).config.cores, 16);
    assert_eq!(preferred_pod(&ooo, 0.05).config.llc_mb, 4.0);
    assert_eq!(optimal_pod(&ooo).config.cores, 32);
    let io = PodSearchSpace::thesis_chapter3(CoreKind::InOrder, TechnologyNode::N40);
    let pick = preferred_pod(&io, 0.035);
    assert_eq!((pick.config.cores, pick.config.llc_mb), (32, 2.0));
}

/// Technology scaling (§3.4.4): Scale-Out Processors double their pods
/// from 40nm to 20nm and keep their PD lead.
#[test]
fn scale_out_chips_scale_with_technology() {
    let sop40 = reference_chip(
        DesignKind::ScaleOut(CoreKind::OutOfOrder),
        TechnologyNode::N40,
    );
    let sop20 = reference_chip(
        DesignKind::ScaleOut(CoreKind::OutOfOrder),
        TechnologyNode::N20,
    );
    assert!(
        sop20.cores >= 3 * sop40.cores,
        "{} -> {}",
        sop40.cores,
        sop20.cores
    );
    assert!(sop20.performance_density > 2.5 * sop40.performance_density);
}

/// The chapter-4 headline: NOC-Out delivers flattened-butterfly-class
/// performance at roughly a tenth of its area and beats the mesh.
#[test]
fn nocout_performance_and_area_headline() {
    let area = |kind| {
        let cfg = NocConfig::pod_64(kind);
        NocAreaBreakdown::of(&cfg.build_topology(), cfg.link_bits).total_mm2()
    };
    assert!(area(TopologyKind::FlattenedButterfly) / area(TopologyKind::NocOut) > 7.0);
    assert!(area(TopologyKind::NocOut) < area(TopologyKind::Mesh));

    let run = |kind| {
        Machine::new(SimConfig::pod_64(Workload::WebSearch, kind))
            .run(4_000, 10_000)
            .aggregate_ipc()
    };
    let mesh = run(TopologyKind::Mesh);
    let nocout = run(TopologyKind::NocOut);
    let fbfly = run(TopologyKind::FlattenedButterfly);
    assert!(nocout > mesh * 1.03, "nocout {nocout} vs mesh {mesh}");
    assert!(nocout > fbfly * 0.90, "nocout {nocout} vs fbfly {fbfly}");
}

/// The chapter-5 headline: 4.4x-7.1x-class performance/TCO gains over
/// conventional-processor datacenters.
#[test]
fn datacenter_efficiency_headline() {
    let params = TcoParams::thesis();
    let conv = Datacenter::for_design(DesignKind::Conventional, &params, 64);
    let ooo = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::OutOfOrder), &params, 64);
    let io = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::InOrder), &params, 64);
    let lo = ooo.perf_per_tco() / conv.perf_per_tco();
    let hi = io.perf_per_tco() / conv.perf_per_tco();
    assert!(lo > 3.5 && lo < hi && hi < 9.5, "gains {lo:.1}x / {hi:.1}x");
}

/// The chapter-6 headline: stacking improves volume-normalised PD under
/// both strategies, for both core types.
#[test]
fn stacked_pods_beat_planar_pods() {
    for (kind, cores) in [(CoreKind::OutOfOrder, 32), (CoreKind::InOrder, 64)] {
        let flat = Pod3d::new(kind, cores, 2.0, 1, StackStrategy::FixedPod)
            .metrics()
            .performance_density_3d;
        for dies in [2, 4] {
            let stacked = Pod3d::new(kind, cores, 2.0, dies, StackStrategy::FixedPod)
                .metrics()
                .performance_density_3d;
            assert!(stacked > flat, "{kind:?} {dies} dies");
        }
    }
}

/// The software-scalability effect of Fig 3.3: the cycle simulator shows
/// sub-linear scaling at 64 cores for knee-limited workloads, while the
/// analytic model (which ignores software) does not.
#[test]
fn simulation_captures_software_scalability() {
    let run = |cores| {
        Machine::new(SimConfig::validation(
            Workload::DataServing,
            cores,
            TopologyKind::Crossbar,
        ))
        .run(2_000, 6_000)
        .per_core_ipc()
    };
    let at16 = run(16);
    let at64 = run(64);
    assert!(at64 < at16, "per-core perf should erode: {at16} -> {at64}");
}

/// End-to-end energy sanity: every composed chip respects its budgets.
#[test]
fn all_reference_chips_respect_budgets() {
    for node in [TechnologyNode::N40, TechnologyNode::N20] {
        for design in DesignKind::table_3_2() {
            let c = reference_chip(design, node);
            assert!(
                c.die_mm2 <= 280.0,
                "{} at {node}: {}mm2",
                c.label,
                c.die_mm2
            );
            assert!(c.power_w <= 95.0, "{} at {node}: {}W", c.label, c.power_w);
            assert!(c.memory_channels <= 6, "{} at {node}", c.label);
            assert!(c.performance_density > 0.0);
        }
    }
}
