//! # Scale-Out Processors
//!
//! A reproduction of *Scale-Out Processors* (ISCA 2012; EPFL thesis
//! no. 5906, 2013): a design methodology for server chips that run
//! scale-out workloads — web search, media streaming, data serving —
//! whose traits (independent requests, huge instruction footprints, vast
//! memory-resident datasets, negligible inter-thread communication) make
//! conventional server chips inefficient.
//!
//! ## The methodology in five steps
//!
//! 1. **Measure the workloads** ([`workloads`]): each of the seven
//!    CloudSuite-style workloads is a statistical profile — base ILP, L1
//!    miss rates, an LLC miss-versus-capacity curve, MLP, snoop rates,
//!    off-chip traffic, software scalability — plus a synthetic trace
//!    generator for cycle-level simulation.
//! 2. **Model candidate organizations** ([`model`]): an
//!    average-memory-access-time extension predicts per-core performance
//!    for any (core type, core count, LLC capacity, interconnect)
//!    combination, validated against the cycle-level simulator.
//! 3. **Derive the pod** ([`core`]): *performance density* — aggregate
//!    throughput per mm² — peaks at a small, crossbar-coupled grouping of
//!    cores and cache (16 out-of-order cores with 4MB, or 32 in-order
//!    cores with 2MB at 40nm). The pod is a complete server: its own OS,
//!    no coherence with its neighbours.
//! 4. **Tile pods onto a die** ([`core::chip`]) under area, power, and
//!    memory-bandwidth budgets ([`tech`]): the result is a Scale-Out
//!    Processor, and it beats conventional, tiled, and LLC-optimized
//!    organizations on performance density at every node.
//! 5. **Check it where it matters** — the 64-core pod's on-chip network
//!    ([`noc`], the NOC-Out topology), the datacenter's total cost of
//!    ownership ([`tco`]), and the post-Moore 3D-stacked future
//!    ([`threed`]).
//!
//! ## Where to start
//!
//! ```no_run
//! use scale_out_processors::core::designs::{reference_chip, DesignKind};
//! use scale_out_processors::tech::{CoreKind, TechnologyNode};
//!
//! let sop = reference_chip(
//!     DesignKind::ScaleOut(CoreKind::OutOfOrder),
//!     TechnologyNode::N40,
//! );
//! println!(
//!     "{}: {} cores, {:.0}mm2, PD {:.3}",
//!     sop.label, sop.cores, sop.die_mm2, sop.performance_density
//! );
//! ```
//!
//! The `repro` binary in `sop-bench` regenerates every table and figure
//! of the thesis' evaluation; `EXPERIMENTS.md` records how each compares
//! to the published numbers; `DESIGN.md` maps every subsystem to the
//! crate that implements it.

pub use sop_3d as threed;
pub use sop_bench as bench;
pub use sop_core as core;
pub use sop_exec as exec;
pub use sop_fault as fault;
pub use sop_fleet as fleet;
pub use sop_model as model;
pub use sop_noc as noc;
pub use sop_obs as obs;
pub use sop_sim as sim;
pub use sop_tco as tco;
pub use sop_tech as tech;
pub use sop_workloads as workloads;
