//! `sop` — interactive design-space explorer.
//!
//! ```text
//! sop pod    <ooo|io> [--node 40|20]          derive the PD-optimal pod
//! sop chip   <design> [--node 40|20]          compose a reference chip
//! sop dc     <design> [--mem GB]              size a 20MW datacenter
//! sop stack  <ooo|io> <dies> [--fixed-distance]   evaluate a 3D pod
//! sop trace  <workload> [--topo mesh|fbfly|nocout] [--out FILE] [--quick]
//!            [--analyze] [--sample N] [--cores N]
//!                                             capture a Chrome trace of a pod run;
//!                                             --analyze prints the per-stage latency
//!                                             breakdown (NOC, bank, directory, memory)
//! sop diff   <a.json> <b.json> [--tol PCT] [--tol-path PREFIX=PCT]
//!                                             structurally compare two sop-report/v1
//!                                             documents; exit 1 on any divergence
//! sop sweep  <ch2|ch3|ch4|ch5|ch6|degradation|all> [--jobs N] [--threads N] [--no-cache]
//!            [--resume] [--json FILE] [--quick] [--stable] [--no-heartbeat]
//!                                             run a named experiment campaign;
//!                                             --threads shards each machine across
//!                                             N worker threads (bit-identical)
//! sop fleet  [--servers N] [--policy drain|derate] [--org NAME] [--seed S] [--quick]
//!            [--jobs N] [--no-cache] [--resume] [--json FILE] [--stable] [--no-heartbeat]
//!                                             simulate a fleet of SOP servers behind a
//!                                             load balancer: cost per sustained QPS and
//!                                             tail latency vs utilization per chip
//!                                             organization
//! sop bench  [--quick] [--jobs N] [--threads N] [--only ch3[,ch4...]] [--json FILE]
//!            [--baseline FILE] [--tol PCT]    time the simulator hot paths and
//!                                             append the run to the bench history
//! sop prof   [<workload>] [--topo T] [--quick] [--cores N] [--threads N] [--json FILE]
//!                                             run a self-profiled pod window and
//!                                             print the host-side component
//!                                             self-time table
//! sop prof   --analyze <a.json> [b.json] [--tol PCT] [--tol-path PREFIX=PCT]
//!                                             re-render the table from a report's
//!                                             prof metrics; with two files, diff
//!                                             the prof sections under tolerance
//! sop top    [--file PATH] [--once] [--interval-ms N]
//!                                             live terminal monitor over a
//!                                             campaign's progress.ndjson heartbeat
//! sop metrics <report.json> [--text]          dump a report's metrics object;
//!                                             --text emits Prometheus exposition
//! sop cache  [--dir DIR]                      audit the result cache for debris
//! sop list                                    list design names
//! ```

use scale_out_processors::bench::bench::{
    append_history, check_regression, commit_hash, history_entry, run_suite_with_metrics,
    today_utc, BENCH_CAMPAIGNS,
};
use scale_out_processors::bench::campaign::{run_campaign, CAMPAIGNS};
use scale_out_processors::core::designs::{reference_chip, DesignKind};
use scale_out_processors::core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use scale_out_processors::exec::audit_dir;
use scale_out_processors::exec::heartbeat::{read_events, snapshot, PROGRESS_FILE};
use scale_out_processors::exec::{Exec, ExecConfig};
use scale_out_processors::noc::TopologyKind;
use scale_out_processors::obs::prom::exposition_from_json;
use scale_out_processors::obs::{
    diff_reports, stabilized, write_atomic, DiffConfig, Json, ProfBreakdown, Registry, Report,
    SpanLog, TxnBreakdown,
};
use scale_out_processors::sim::{Machine, SimConfig};
use scale_out_processors::tco::{Datacenter, TcoParams};
use scale_out_processors::tech::{CoreKind, TechnologyNode};
use scale_out_processors::threed::{
    compose_3d, CoolingTechnology, Pod3d, StackStrategy, ThermalModel,
};
use scale_out_processors::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "pod" => pod(&args),
        "chip" => chip(&args),
        "dc" => dc(&args),
        "stack" => stack(&args),
        "trace" => trace(&args),
        "diff" => diff(&args),
        "sweep" => sweep(&args),
        "fleet" => fleet(&args),
        "bench" => bench(&args),
        "prof" => prof(&args),
        "top" => top(&args),
        "metrics" => metrics_cmd(&args),
        "cache" => cache(&args),
        "list" => list(),
        _ => usage(),
    }
}

/// Parses `--threads N` and arms the intra-run parallel engine for
/// every machine the command builds. Results are bit-identical at any
/// thread count — the knob is a host resource, not a config axis —
/// which is also why it is not part of the result-cache identity.
fn apply_threads(args: &[String]) {
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if threads == 0 {
        eprintln!("--threads must be at least 1");
        std::process::exit(2);
    }
    scale_out_processors::sim::set_default_threads(threads);
}

fn usage() {
    eprintln!("usage: sop pod <ooo|io> [--node 40|20]");
    eprintln!("       sop chip <design> [--node 40|20]");
    eprintln!("       sop dc <design> [--mem GB]");
    eprintln!("       sop stack <ooo|io> <dies> [--fixed-distance]");
    eprintln!(
        "       sop trace <workload> [--topo mesh|fbfly|nocout] [--out FILE] [--quick] \
         [--analyze] [--sample N] [--cores N]"
    );
    eprintln!("       sop diff <a.json> <b.json> [--tol PCT] [--tol-path PREFIX=PCT]");
    eprintln!(
        "       sop sweep <ch2|ch3|ch4|ch5|ch6|degradation|all> [--jobs N] [--threads N] \
         [--no-cache] [--resume] [--json FILE] [--quick] [--stable] [--no-heartbeat]"
    );
    eprintln!(
        "       sop fleet [--servers N] [--policy drain|derate] [--org NAME] [--seed S] \
         [--quick] [--jobs N] [--no-cache] [--resume] [--json FILE] [--stable] [--no-heartbeat]"
    );
    eprintln!(
        "       sop bench [--quick] [--jobs N] [--threads N] [--only ch3[,ch4...]] \
         [--json FILE] [--baseline FILE] [--tol PCT]"
    );
    eprintln!(
        "       sop prof [<workload>] [--topo mesh|fbfly|nocout] [--quick] [--cores N] \
         [--threads N] [--json FILE]"
    );
    eprintln!("       sop prof --analyze <a.json> [b.json] [--tol PCT] [--tol-path PREFIX=PCT]");
    eprintln!("       sop top [--file PATH] [--once] [--interval-ms N]");
    eprintln!("       sop metrics <report.json> [--text]");
    eprintln!("       sop cache [--dir DIR]");
    eprintln!("       sop list");
    std::process::exit(2);
}

/// Runs a named experiment campaign on the execution engine and writes
/// its data as a `sop-report/v1` document.
fn sweep(args: &[String]) {
    let name = args.get(1).map(String::as_str).unwrap_or("");
    if !CAMPAIGNS.contains(&name) {
        eprintln!("unknown campaign {name:?}; one of: {}", CAMPAIGNS.join(" "));
        std::process::exit(2);
    }
    apply_threads(args);
    let quick = args.iter().any(|a| a == "--quick");
    let stable = args.iter().any(|a| a == "--stable");
    let out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("sweep-{name}.json"));
    let exec = Exec::new(ExecConfig::from_args(args));

    let mut spans = SpanLog::new();
    let data = spans.time(name, |_| {
        run_campaign(name, quick, &exec).expect("campaign name was validated")
    });
    let mut metrics = Registry::new();
    metrics.merge(&exec.metrics_snapshot());
    let mut report = Report::new("sweep", "Scale-Out Processors: experiment campaign");
    report.set("campaign", Json::from(name));
    report.set("quick", Json::from(quick));
    report.set("data", data);
    let doc = report.to_json(&spans, &metrics);
    let doc = if stable { stabilized(&doc) } else { doc };
    if let Err(e) = write_atomic(&out, &(doc.to_pretty_string() + "\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    let m = exec.metrics_snapshot();
    println!(
        "campaign {name}: {} points on {} worker(s)",
        m.counter("exec.jobs.completed") + m.counter("exec.map.items"),
        exec.workers()
    );
    println!("wrote {out}");
    let failures = exec.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("sweep: job failed: {} ({})", f.name, f.error);
        }
        std::process::exit(1);
    }
}

/// Simulates a fleet of SOP servers behind a load balancer through the
/// execution engine and writes the result as a `sop-report/v1` document:
/// one row per chip organization × repair policy with cost per sustained
/// QPS and the tail-latency-vs-utilization curve. Every run is a pure,
/// cacheable engine job; the report is byte-identical across worker
/// counts.
fn fleet(args: &[String]) {
    use scale_out_processors::fleet::{fleet_points, grid, org_by_name, Policy, ORGS};
    let quick = args.iter().any(|a| a == "--quick");
    let stable = args.iter().any(|a| a == "--stable");
    let servers: u32 = args
        .iter()
        .position(|a| a == "--servers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 256 });
    if servers == 0 {
        eprintln!("--servers must be at least 1");
        std::process::exit(2);
    }
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let org = args
        .iter()
        .position(|a| a == "--org")
        .and_then(|i| args.get(i + 1))
        .map(|name| {
            if org_by_name(name).is_none() {
                let known: Vec<&str> = ORGS.iter().map(|o| o.name).collect();
                eprintln!("unknown organization {name:?}; one of: {}", known.join(" "));
                std::process::exit(2);
            }
            name.as_str()
        });
    let policy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|label| {
            Policy::from_label(label).unwrap_or_else(|| {
                eprintln!("unknown policy {label:?}; one of: drain derate");
                std::process::exit(2);
            })
        });
    let out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "fleet.json".to_owned());
    // Heartbeat job_finish events carry the fleet tick counter so
    // `sop top` can report simulated-hours per second.
    scale_out_processors::exec::heartbeat::set_cycle_source(
        scale_out_processors::bench::campaign::simulated_work_counter,
    );
    let exec = Exec::new(ExecConfig::from_args(args));

    let specs = grid(servers, seed, quick, org, policy);
    let mut spans = SpanLog::new();
    let rows = spans.time("fleet", |_| fleet_points(&exec, "fleet", &specs));

    // Deterministic fleet aggregates (summed from the rows, so cached
    // and fresh evaluations export identical values) plus the engine's
    // own counters.
    let mut metrics = Registry::new();
    let total_of = |row: &Json, key: &str| {
        row.get("totals")
            .and_then(|t| t.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    for row in &rows {
        metrics.counter_add("fleet.requests.offered", total_of(row, "offered"));
        metrics.counter_add("fleet.requests.served", total_of(row, "served"));
        metrics.counter_add("fleet.requests.dropped", total_of(row, "dropped"));
    }
    metrics.gauge_set("fleet.points", rows.len() as f64);
    metrics.gauge_set("fleet.servers", f64::from(servers));
    metrics.merge(&exec.metrics_snapshot());

    let mut report = Report::new("fleet", "Scale-Out Processors: fleet simulation");
    report.set("campaign", Json::from("fleet"));
    report.set("quick", Json::from(quick));
    report.set(
        "config",
        Json::object()
            .with("servers", servers)
            .with("seed", seed)
            .with("org", org.map_or(Json::Null, Json::from))
            .with(
                "policy",
                policy.map_or(Json::Null, |p| Json::from(p.label())),
            ),
    );
    report.set("fleet", Json::Arr(rows.clone()));
    let doc = report.to_json(&spans, &metrics);
    let doc = if stable { stabilized(&doc) } else { doc };
    if let Err(e) = write_atomic(&out, &(doc.to_pretty_string() + "\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }

    println!(
        "{:<14} {:<7} {:>9} {:>7} {:>7} {:>7} {:>12}",
        "org", "policy", "sust.qps", "p50ms", "p99ms", "drop%", "$/k-qps/mo"
    );
    for row in &rows {
        let s = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?").to_owned();
        if row.get("failed").is_some() {
            println!("{:<14} {:<7} FAILED", s("org"), s("policy"));
            continue;
        }
        let n = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let cost = match row
            .get("cost_per_sustained_kqps_usd")
            .and_then(Json::as_f64)
        {
            Some(c) => format!("{c:.2}"),
            None => "-".to_owned(),
        };
        println!(
            "{:<14} {:<7} {:>9.0} {:>7.0} {:>7.0} {:>6.2}% {:>12}",
            s("org"),
            s("policy"),
            n("sustained_qps"),
            n("p50_ms"),
            n("p99_ms"),
            n("drop_pct"),
            cost
        );
    }
    println!(
        "fleet: {} point(s), {} server(s), seed {seed} on {} worker(s)",
        rows.len(),
        servers,
        exec.workers()
    );
    println!("wrote {out}");
    let failures = exec.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fleet: job failed: {} ({})", f.name, f.error);
        }
        std::process::exit(1);
    }
}

/// Audits the on-disk result cache: every entry re-validated against its
/// content hash, stray `*.tmp.*` debris and foreign files called out.
/// Exits non-zero if anything but valid entries is found.
fn cache(args: &[String]) {
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(scale_out_processors::exec::default_cache_dir);
    let audit = match audit_dir(&dir) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot audit {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    println!("cache {}", dir.display());
    println!("  valid entries: {}", audit.valid);
    println!("  invalid entries: {}", audit.invalid.len());
    for name in &audit.invalid {
        println!("    {name}");
    }
    println!("  stray tmp files: {}", audit.stray_tmp.len());
    for name in &audit.stray_tmp {
        println!("    {name}");
    }
    println!("  other files: {}", audit.other.len());
    for name in &audit.other {
        println!("    {name}");
    }
    if !audit.is_clean() {
        std::process::exit(1);
    }
}

/// Times the simulator micro-benchmarks and cold chapter campaigns and
/// writes the numbers as a `bench` section in a `sop-report/v1`
/// document. The run is appended to the `history` array carried forward
/// from the previous document at the output path (commit, date, per-tier
/// Mcycles/s), and the engine registry populates the report's top-level
/// `metrics`. With `--baseline FILE` the run becomes a regression gate:
/// any campaign more than `--tol` percent (default 25) slower than the
/// baseline document's latest history entry fails the command.
fn bench(args: &[String]) {
    apply_threads(args);
    let quick = args.iter().any(|a| a == "--quick");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let only_arg = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let only: Option<Vec<&str>> = only_arg.as_deref().map(|list| {
        list.split(',')
            .map(|name| {
                BENCH_CAMPAIGNS
                    .iter()
                    .copied()
                    .find(|c| *c == name)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "unknown bench campaign {name:?}; one of: {}",
                            BENCH_CAMPAIGNS.join(" ")
                        );
                        std::process::exit(2);
                    })
            })
            .collect()
    });
    let out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_owned());
    let tol: f64 = args
        .iter()
        .position(|a| a == "--tol")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);

    let mut spans = SpanLog::new();
    let (mut data, metrics) = spans.time("bench", |_| {
        run_suite_with_metrics(quick, jobs, only.as_deref())
    });
    // Carry the bench trajectory forward from the previous document at
    // the output path, then append this run.
    let previous = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| scale_out_processors::obs::json::parse(&text).ok());
    let entry = history_entry(&data, &commit_hash(), &today_utc());
    append_history(&mut data, previous.as_ref(), entry);
    let mut report = Report::new("bench", "Scale-Out Processors: simulator benchmarks");
    report.set("bench", data.clone());
    let doc = report.to_json(&spans, &metrics);
    if let Err(e) = write_atomic(&out, &(doc.to_pretty_string() + "\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    for row in data.get("campaigns").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = row.get("campaign").and_then(Json::as_str).unwrap_or("?");
        let wall = row.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
        match (
            row.get("mcycles_per_sec").and_then(Json::as_f64),
            row.get("events_per_sec").and_then(Json::as_f64),
        ) {
            (Some(rate), _) => println!("{name:5} {wall:7.0}ms  {rate:8.3} Mcycles/s"),
            (None, Some(rate)) => {
                println!("{name:5} {wall:7.0}ms  {:8.3} Mevents/s", rate / 1e6);
            }
            (None, None) => println!("{name:5} {wall:7.0}ms  (analytic)"),
        }
    }
    if let Some(x) = data.get("speedup_vs_baseline").and_then(Json::as_f64) {
        println!("speedup vs per-cycle baseline: {x:.2}x");
    }
    println!("wrote {out}");

    if let Some(path) = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
    {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base = scale_out_processors::obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("baseline {path} is not valid JSON: {e:?}");
            std::process::exit(1);
        });
        let violations = check_regression(&doc, &base, tol);
        if violations.is_empty() {
            println!("bench within {tol:.0}% of {path}");
        } else {
            for v in &violations {
                eprintln!("REGRESSION {v}");
            }
            std::process::exit(1);
        }
    }
}

fn core_kind(args: &[String]) -> CoreKind {
    match args.get(1).map(String::as_str) {
        Some("ooo") => CoreKind::OutOfOrder,
        Some("io") => CoreKind::InOrder,
        Some("conv") => CoreKind::Conventional,
        _ => {
            eprintln!("expected a core type: ooo | io | conv");
            std::process::exit(2);
        }
    }
}

fn node(args: &[String]) -> TechnologyNode {
    match args
        .iter()
        .position(|a| a == "--node")
        .and_then(|i| args.get(i + 1))
    {
        Some(v) if v == "20" => TechnologyNode::N20,
        Some(v) if v == "32" => TechnologyNode::N32,
        _ => TechnologyNode::N40,
    }
}

fn design(args: &[String]) -> DesignKind {
    let name = args.get(1).map(String::as_str).unwrap_or("");
    let all = roster();
    all.iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| *d)
        .unwrap_or_else(|| {
            eprintln!("unknown design {name:?}; try `sop list`");
            std::process::exit(2);
        })
}

fn roster() -> Vec<(&'static str, DesignKind)> {
    vec![
        ("conventional", DesignKind::Conventional),
        ("tiled-ooo", DesignKind::Tiled(CoreKind::OutOfOrder)),
        ("tiled-io", DesignKind::Tiled(CoreKind::InOrder)),
        (
            "llcopt-ooo",
            DesignKind::LlcOptimalTiled(CoreKind::OutOfOrder),
        ),
        ("llcopt-io", DesignKind::LlcOptimalTiled(CoreKind::InOrder)),
        (
            "ir-ooo",
            DesignKind::LlcOptimalTiledIr(CoreKind::OutOfOrder),
        ),
        ("ir-io", DesignKind::LlcOptimalTiledIr(CoreKind::InOrder)),
        ("ideal-ooo", DesignKind::Ideal(CoreKind::OutOfOrder)),
        ("ideal-io", DesignKind::Ideal(CoreKind::InOrder)),
        ("1pod-ooo", DesignKind::OnePod(CoreKind::OutOfOrder)),
        ("1pod-io", DesignKind::OnePod(CoreKind::InOrder)),
        ("scaleout-ooo", DesignKind::ScaleOut(CoreKind::OutOfOrder)),
        ("scaleout-io", DesignKind::ScaleOut(CoreKind::InOrder)),
    ]
}

fn list() {
    for (name, _) in roster() {
        println!("{name}");
    }
}

fn pod(args: &[String]) {
    let kind = core_kind(args);
    let node = node(args);
    let space = PodSearchSpace::thesis_chapter3(kind, node);
    let peak = optimal_pod(&space);
    let pick = preferred_pod(&space, 0.05);
    println!("PD-optimal {kind:?} pod at {node}:");
    println!(
        "  peak:     {} cores + {}MB  (PD {:.4})",
        peak.config.cores, peak.config.llc_mb, peak.performance_density
    );
    println!(
        "  adopted:  {} cores + {}MB  ({:.1}mm2, {:.1}W, {:.1}GB/s)",
        pick.config.cores, pick.config.llc_mb, pick.area_mm2, pick.power_w, pick.bandwidth_gbps
    );
}

fn chip(args: &[String]) {
    let d = design(args);
    let node = node(args);
    let c = reference_chip(d, node);
    println!("{} at {node}:", c.label);
    println!("  cores             {}", c.cores);
    println!("  LLC               {:.1} MB", c.llc_mb);
    println!("  memory channels   {}", c.memory_channels);
    println!("  die               {:.1} mm2 ({})", c.die_mm2, c.binding);
    println!("  power             {:.1} W", c.power_w);
    println!("  perf density      {:.4} IPC/mm2", c.performance_density);
    println!("  perf/W            {:.3}", c.perf_per_watt);
}

fn dc(args: &[String]) {
    let d = design(args);
    let mem: u32 = args
        .iter()
        .position(|a| a == "--mem")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let params = TcoParams::thesis();
    let dc = Datacenter::for_design(d, &params, mem);
    println!(
        "20MW datacenter of {} servers ({}GB each):",
        dc.chip.label, mem
    );
    println!("  sockets per 1U    {}", dc.sockets_per_server);
    println!("  total chips       {}", dc.total_chips());
    println!("  chip price        ${:.0}", dc.chip_price_usd);
    println!(
        "  TCO               ${:.2}M/month",
        dc.tco.total_usd() / 1e6
    );
    println!("  perf/TCO          {:.3}", dc.perf_per_tco());
    println!("  perf/W            {:.4}", dc.perf_per_watt());
}

/// Runs a 64-core pod with transaction tracing on and writes the event
/// log in Chrome trace format (load it at `chrome://tracing` or in
/// Perfetto). One simulated cycle maps to one microsecond. Sampled
/// transactions appear as per-component `txn.hop` lanes; `--analyze`
/// additionally prints the per-stage latency breakdown table. `--cores N`
/// runs the chapter-3 validation point instead of the full 64-core pod.
fn trace(args: &[String]) {
    let name = args.get(1).map(String::as_str).unwrap_or("websearch");
    let workload = workload_by_name(name);
    let topo = topology_arg(args);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "trace.json".to_owned());
    let (warm, measure) = if args.iter().any(|a| a == "--quick") {
        (1_000, 2_000)
    } else {
        (4_000, 8_000)
    };
    let sample: u64 = args
        .iter()
        .position(|a| a == "--sample")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if sample == 0 {
        eprintln!("--sample must be at least 1");
        std::process::exit(2);
    }
    let cores: Option<u32> = args
        .iter()
        .position(|a| a == "--cores")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let (cfg, point) = match cores {
        Some(n) => (
            SimConfig::validation(workload, n, topo),
            format!("validation_{n}"),
        ),
        None => (SimConfig::pod_64(workload, topo), "pod_64".to_owned()),
    };

    let mut machine = Machine::new(cfg);
    machine.enable_tracing(1 << 16);
    machine.enable_txn_tracing(sample);
    let result = machine.run_window(warm, measure);
    let log = machine.event_log().expect("tracing was enabled");
    let process = format!("{point} {workload:?} {topo:?}");
    let trace = log.to_chrome_trace(&process);
    if let Err(e) = write_atomic(&out, &(trace.to_compact_string() + "\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "{} events ({} dropped), aggregate IPC {:.2}",
        log.events().count(),
        log.dropped(),
        result.aggregate_ipc()
    );
    println!("wrote {out}");
    if args.iter().any(|a| a == "--analyze") {
        let breakdown = TxnBreakdown::from_registry(&result.metrics)
            .expect("transaction tracing was armed, sim.txn.total is exported");
        println!();
        print!("{}", breakdown.render());
        if !breakdown.consistent() {
            std::process::exit(1);
        }
    }
}

/// Resolves a workload by its debug name or label (case- and
/// punctuation-insensitive), exiting with usage help when unknown.
fn workload_by_name(name: &str) -> Workload {
    Workload::ALL
        .iter()
        .copied()
        .find(|w| {
            let debug = format!("{w:?}").to_lowercase();
            let label = w.label().to_lowercase().replace([' ', '-'], "");
            let wanted = name.to_lowercase().replace([' ', '-'], "");
            debug == wanted || label == wanted
        })
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; one of:");
            for w in Workload::ALL {
                eprintln!("  {:?}", w);
            }
            std::process::exit(2);
        })
}

/// Parses `--topo mesh|fbfly|nocout` (default NOC-Out).
fn topology_arg(args: &[String]) -> TopologyKind {
    match args
        .iter()
        .position(|a| a == "--topo")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("mesh") => TopologyKind::Mesh,
        Some("fbfly") => TopologyKind::FlattenedButterfly,
        None | Some("nocout") => TopologyKind::NocOut,
        Some(other) => {
            eprintln!("unknown topology {other:?}: mesh | fbfly | nocout");
            std::process::exit(2);
        }
    }
}

/// Runs a self-profiled pod window and prints the host-side component
/// self-time table: where the simulator's own wall clock goes (NOC
/// routing, directory, LLC banks, memory channels, core stepping,
/// next-event calculation) per simulated cycle. The full report —
/// `prof` section plus raw `prof.*` counters in `metrics` — is written
/// as a `sop-report/v1` document. Exits 1 if the attributed self-times
/// exceed the measured advance wall (a profiler bug, not a model bug).
///
/// With `--analyze FILE [FILE2]` no simulation runs: the table is
/// re-rendered from the report's metrics, and a second file is diffed
/// against the first under `sop diff` tolerance rules.
fn prof(args: &[String]) {
    if args.iter().any(|a| a == "--analyze") {
        prof_analyze(args);
        return;
    }
    apply_threads(args);
    let name = args
        .get(1)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or("websearch");
    let workload = workload_by_name(name);
    let topo = topology_arg(args);
    let (warm, measure) = if args.iter().any(|a| a == "--quick") {
        (1_000, 2_000)
    } else {
        (4_000, 8_000)
    };
    let cores: Option<u32> = args
        .iter()
        .position(|a| a == "--cores")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "prof.json".to_owned());
    let (cfg, point) = match cores {
        Some(n) => (
            SimConfig::validation(workload, n, topo),
            format!("validation_{n}"),
        ),
        None => (SimConfig::pod_64(workload, topo), "pod_64".to_owned()),
    };

    let mut machine = Machine::new(cfg);
    machine.enable_profiling();
    let mut spans = SpanLog::new();
    let result = spans.time("prof", |_| machine.run_window(warm, measure));
    let breakdown = ProfBreakdown::from_registry(&result.metrics)
        .expect("profiling was armed, prof.advance is exported");
    let mut report = Report::new("prof", "Scale-Out Processors: host self-profile");
    report.set(
        "point",
        Json::object()
            .with("point", point.as_str())
            .with("workload", workload.label())
            .with("topology", format!("{topo:?}").as_str())
            .with("warm", warm)
            .with("measure", measure),
    );
    report.set("prof", breakdown.to_json());
    let doc = report.to_json(&spans, &result.metrics);
    if let Err(e) = write_atomic(&out, &(doc.to_pretty_string() + "\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{}", breakdown.render());
    println!("wrote {out}");
    if !breakdown.consistent() {
        std::process::exit(1);
    }
}

/// The `--analyze` arm of [`prof`]: re-renders the component table from
/// one or two report documents' `prof.*` metrics; with two, diffs the
/// `prof` sections under `--tol`/`--tol-path` (default 25% — host
/// timings are noisy).
fn prof_analyze(args: &[String]) {
    let at = args
        .iter()
        .position(|a| a == "--analyze")
        .expect("checked by caller");
    let files: Vec<&String> = args[at + 1..]
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .collect();
    if files.is_empty() || files.len() > 2 {
        eprintln!("usage: sop prof --analyze <a.json> [b.json] [--tol PCT] [--tol-path P=PCT]");
        std::process::exit(2);
    }
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        scale_out_processors::obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path} is not valid JSON: {e:?}");
            std::process::exit(2);
        })
    };
    let breakdown_of = |doc: &Json, path: &str| -> ProfBreakdown {
        doc.get("metrics")
            .and_then(ProfBreakdown::from_metrics_json)
            .unwrap_or_else(|| {
                eprintln!("{path}: no prof.* metrics (was the run profiled?)");
                std::process::exit(1);
            })
    };
    let doc_a = load(files[0]);
    let a = breakdown_of(&doc_a, files[0]);
    println!("{}:", files[0]);
    print!("{}", a.render());
    let mut failed = !a.consistent();
    if let Some(path_b) = files.get(1) {
        let doc_b = load(path_b);
        let b = breakdown_of(&doc_b, path_b);
        println!();
        println!("{path_b}:");
        print!("{}", b.render());
        let tol: f64 = args
            .iter()
            .position(|x| x == "--tol")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let mut cfg = DiffConfig::with_tol(tol / 100.0);
        let mut i = at + 1;
        while i < args.len() {
            if args[i] == "--tol-path" {
                let Some((prefix, pct)) = args.get(i + 1).and_then(|r| r.split_once('=')) else {
                    eprintln!("--tol-path needs PREFIX=PCT");
                    std::process::exit(2);
                };
                let Ok(pct) = pct.parse::<f64>() else {
                    eprintln!("--tol-path: {pct:?} is not a number");
                    std::process::exit(2);
                };
                cfg.rules.push((prefix.to_owned(), pct / 100.0));
                i += 2;
            } else {
                i += 1;
            }
        }
        failed |= !b.consistent();
        let result = diff_reports(&a.to_json(), &b.to_json(), &cfg);
        println!();
        if result.ok() {
            println!(
                "prof sections match ({} values compared, tol {tol}%)",
                result.compared
            );
        } else {
            for v in &result.violations {
                eprintln!("DIFF {v}");
            }
            eprintln!(
                "prof sections diverge: {} violation(s) across {} compared values",
                result.violations.len(),
                result.compared
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Live terminal monitor over a campaign's heartbeat stream
/// (`progress.ndjson` in the result cache, or `--file PATH`). Redraws
/// every `--interval-ms` (default 500) until the campaign ends;
/// `--once` renders a single snapshot and exits (1 when the stream
/// holds no campaign yet).
fn top(args: &[String]) {
    let file = args
        .iter()
        .position(|a| a == "--file")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| scale_out_processors::exec::default_cache_dir().join(PROGRESS_FILE));
    let once = args.iter().any(|a| a == "--once");
    let interval: u64 = args
        .iter()
        .position(|a| a == "--interval-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    loop {
        let snap = snapshot(&read_events(&file));
        if once {
            match snap {
                Some(s) => print!("{}", s.render()),
                None => {
                    eprintln!("no campaign activity in {}", file.display());
                    std::process::exit(1);
                }
            }
            return;
        }
        // Clear the screen and repaint the panel in place.
        print!("\x1b[2J\x1b[H");
        match snap {
            Some(s) => {
                print!("{}", s.render());
                if s.done {
                    return;
                }
            }
            None => println!("sop top: waiting for events in {}", file.display()),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

/// Dumps a report's top-level `metrics` object — pretty JSON by
/// default, Prometheus text exposition with `--text` (counters, gauges,
/// and histograms re-expanded into cumulative `_bucket` samples).
fn metrics_cmd(args: &[String]) {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: sop metrics <report.json> [--text]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = scale_out_processors::obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e:?}");
        std::process::exit(2);
    });
    let metrics = doc.get("metrics").cloned().unwrap_or(Json::Null);
    if args.iter().any(|a| a == "--text") {
        print!("{}", exposition_from_json(&metrics));
    } else {
        println!("{}", metrics.to_pretty_string());
    }
}

/// Structurally compares two `sop-report/v1` documents. Numeric leaves
/// are held to `--tol` percent (default exact); `--tol-path PREFIX=PCT`
/// loosens individual subtrees (longest prefix wins). Wall-clock
/// subtrees (`spans`, exec timings) are ignored. Exits 1 when any value
/// moved beyond tolerance or a key appeared/vanished, 2 on usage or IO
/// errors.
fn diff(args: &[String]) {
    let (Some(path_a), Some(path_b)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: sop diff <a.json> <b.json> [--tol PCT] [--tol-path PREFIX=PCT]");
        std::process::exit(2);
    };
    let tol: f64 = args
        .iter()
        .position(|a| a == "--tol")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let mut cfg = DiffConfig::with_tol(tol / 100.0);
    let mut i = 3;
    while i < args.len() {
        if args[i] == "--tol-path" {
            let Some(rule) = args.get(i + 1) else {
                eprintln!("--tol-path needs PREFIX=PCT");
                std::process::exit(2);
            };
            let Some((prefix, pct)) = rule.split_once('=') else {
                eprintln!("--tol-path needs PREFIX=PCT, got {rule:?}");
                std::process::exit(2);
            };
            let Ok(pct) = pct.parse::<f64>() else {
                eprintln!("--tol-path {rule:?}: {pct:?} is not a number");
                std::process::exit(2);
            };
            cfg.rules.push((prefix.to_owned(), pct / 100.0));
            i += 2;
        } else {
            i += 1;
        }
    }
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        scale_out_processors::obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path} is not valid JSON: {e:?}");
            std::process::exit(2);
        })
    };
    let a = load(path_a);
    let b = load(path_b);
    let result = diff_reports(&a, &b, &cfg);
    if result.ok() {
        println!(
            "{path_a} and {path_b} match ({} values compared, tol {tol}%)",
            result.compared
        );
    } else {
        for v in &result.violations {
            eprintln!("DIFF {v}");
        }
        eprintln!(
            "{path_a} and {path_b} diverge: {} violation(s) across {} compared values",
            result.violations.len(),
            result.compared
        );
        std::process::exit(1);
    }
}

fn stack(args: &[String]) {
    let kind = core_kind(args);
    let dies: u32 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(2);
    let strategy = if args.iter().any(|a| a == "--fixed-distance") {
        StackStrategy::FixedDistance
    } else {
        StackStrategy::FixedPod
    };
    let (cores, mb) = match kind {
        CoreKind::InOrder => (64, 2.0),
        _ => (32, 2.0),
    };
    let pod = Pod3d::new(kind, cores, mb, dies, strategy);
    let chip = compose_3d(&pod);
    let thermal = ThermalModel::datacenter(CoolingTechnology::LiquidCooled);
    println!("{kind:?} 3D pod, {dies} die(s), {strategy:?}:");
    println!(
        "  pod               {} cores + {:.0}MB",
        pod.total_cores(),
        pod.total_llc_mb()
    );
    println!("  footprint         {:.1} mm2/die", pod.footprint_mm2());
    println!(
        "  chip              {} pods, {} channels",
        chip.pods, chip.memory_channels
    );
    println!("  PD (per volume)   {:.4}", chip.performance_density_3d);
    println!(
        "  junction temp     {:.0}C (limit {:.0}C, liquid cooled)",
        thermal.junction_c(chip.power_w, dies),
        thermal.t_max_c
    );
    if !thermal.admits(chip.power_w, dies) {
        println!("  WARNING: thermally infeasible at this power");
    }
}
