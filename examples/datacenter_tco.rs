//! Size a 20MW datacenter around each server-chip design and compare
//! performance per TCO dollar — the chapter-5 study.
//!
//! ```text
//! cargo run --release --example datacenter_tco [memory_gb]
//! ```

use scale_out_processors::core::designs::DesignKind;
use scale_out_processors::tco::{Datacenter, TcoParams};

fn main() {
    let memory_gb: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let params = TcoParams::thesis();
    println!(
        "20MW facility, {} racks, {}GB DRAM per 1U server\n",
        params.racks(),
        memory_gb
    );
    println!(
        "{:22} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "chip", "sockets", "perf(x)", "TCO $/month", "perf/TCO", "perf/W"
    );
    let base = Datacenter::for_design(DesignKind::Conventional, &params, memory_gb);
    for design in DesignKind::table_5_1() {
        let dc = Datacenter::for_design(design, &params, memory_gb);
        println!(
            "{:22} {:>8} {:>8.2} {:>12.0} {:>10.3} {:>10.4}",
            dc.chip.label,
            dc.sockets_per_server,
            dc.performance / base.performance,
            dc.tco.total_usd(),
            dc.perf_per_tco(),
            dc.perf_per_watt()
        );
    }
    let sop = Datacenter::for_design(
        DesignKind::ScaleOut(scale_out_processors::tech::CoreKind::InOrder),
        &params,
        memory_gb,
    );
    println!(
        "\nheadline: Scale-Out (IO) delivers {:.1}x the performance/TCO of the\nconventional-processor datacenter (thesis: 4.4x-7.1x across designs).",
        sop.perf_per_tco() / base.perf_per_tco()
    );
}
