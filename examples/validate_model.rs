//! Validate the analytic model against the cycle-level simulator for one
//! workload — a single panel of Fig 3.3, with error statistics and a
//! SimFlex-style confidence interval on each simulated point.
//!
//! ```text
//! cargo run --release --example validate_model [search|sat|...]
//! ```

use scale_out_processors::model::{DesignPoint, ErrorStats, Interconnect};
use scale_out_processors::noc::TopologyKind;
use scale_out_processors::sim::{measure, SimConfig};
use scale_out_processors::tech::{CoreKind, TechnologyNode};
use scale_out_processors::workloads::Workload;

fn main() {
    let workload = match std::env::args().nth(1).as_deref() {
        Some("sat") => Workload::SatSolver,
        Some("dataserving") => Workload::DataServing,
        Some("mapreduce-w") => Workload::MapReduceW,
        _ => Workload::WebSearch,
    };
    println!("model validation: {workload}, crossbar, 4MB LLC\n");
    println!(
        "  {:>6} {:>12} {:>10} {:>8} {:>8}",
        "cores", "sim (95% CI)", "model", "error", "rel CI"
    );
    let mut stats = ErrorStats::new();
    for cores in [1u32, 2, 4, 8, 16, 32] {
        let cfg = SimConfig::validation(workload, cores, TopologyKind::Crossbar);
        let sampled = measure(cfg, 4, 1_500, 4_000);
        let sim = sampled.mean / f64::from(cores);
        let model = DesignPoint::new(CoreKind::OutOfOrder, cores, 4.0, Interconnect::Crossbar)
            .at_node(TechnologyNode::N40)
            .evaluate(workload)
            .per_core_ipc;
        stats.record(model, sim);
        println!(
            "  {:>6} {:>5.2} ±{:>4.2} {:>10.2} {:>7.0}% {:>7.1}%",
            cores,
            sim,
            sampled.ci95 / f64::from(cores),
            model,
            ((model - sim) / sim * 100.0).abs(),
            sampled.relative_error() * 100.0
        );
    }
    println!(
        "\n  mean |error| {:.0}%, bias {:+.0}%, shape correlation {:.2}",
        stats.mean_abs_error() * 100.0,
        stats.bias() * 100.0,
        stats.correlation()
    );
    println!("  (the thesis' model, parameterised from its own simulator, reports");
    println!("   a few percent; ours is independently calibrated — see EXPERIMENTS.md)");
}
