//! Quickstart: derive a pod, compose a Scale-Out Processor, and compare
//! it against a conventional server chip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scale_out_processors::core::designs::{reference_chip, DesignKind};
use scale_out_processors::core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use scale_out_processors::tech::{CoreKind, TechnologyNode};

fn main() {
    let node = TechnologyNode::N40;

    // 1. Derive the performance-density-optimal pod for out-of-order
    //    cores: sweep core count x LLC capacity x interconnect.
    let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, node);
    let peak = optimal_pod(&space);
    let pod = preferred_pod(&space, 0.05);
    println!(
        "performance-density peak: {} cores + {}MB (PD {:.4})",
        peak.config.cores, peak.config.llc_mb, peak.performance_density
    );
    println!(
        "adopted pod (within 5%):  {} cores + {}MB crossbar",
        pod.config.cores, pod.config.llc_mb
    );
    println!(
        "  {:.0}mm2, {:.1}W, {:.1}GB/s worst-case off-chip demand",
        pod.area_mm2, pod.power_w, pod.bandwidth_gbps
    );

    // 2. Tile pods onto a die under area/power/bandwidth budgets.
    let sop = reference_chip(DesignKind::ScaleOut(CoreKind::OutOfOrder), node);
    println!(
        "\nScale-Out Processor: {} cores, {} channels, {:.0}mm2, {:.0}W",
        sop.cores, sop.memory_channels, sop.die_mm2, sop.power_w
    );

    // 3. Compare against the conventional server chip.
    let conv = reference_chip(DesignKind::Conventional, node);
    println!("\nperformance density (aggregate app-IPC per mm2):");
    println!("  conventional  {:.3}", conv.performance_density);
    println!(
        "  scale-out     {:.3}  ({:.1}x)",
        sop.performance_density,
        sop.performance_density / conv.performance_density
    );
}
