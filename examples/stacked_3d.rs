//! Explore 3D-stacked pods: fixed-pod versus fixed-distance scaling —
//! the chapter-6 post-Moore study.
//!
//! ```text
//! cargo run --release --example stacked_3d
//! ```

use scale_out_processors::tech::CoreKind;
use scale_out_processors::threed::{compose_3d, Pod3d, StackStrategy};

fn main() {
    for (kind, base_cores, base_mb) in [
        (CoreKind::OutOfOrder, 32, 2.0),
        (CoreKind::InOrder, 64, 2.0),
    ] {
        println!("== {kind:?} pods (base: {base_cores} cores + {base_mb}MB per die) ==");
        println!(
            "  {:>4} {:14} {:>10} {:>10} {:>6} {:>10}",
            "dies", "strategy", "pod cfg", "footprint", "pods", "PD3D"
        );
        for dies in [1u32, 2, 4] {
            for strategy in [StackStrategy::FixedPod, StackStrategy::FixedDistance] {
                if dies == 1 && strategy == StackStrategy::FixedDistance {
                    continue;
                }
                let pod = Pod3d::new(kind, base_cores, base_mb, dies, strategy);
                let chip = compose_3d(&pod);
                println!(
                    "  {:>4} {:14} {:>5}c/{:>2.0}MB {:>8.1}mm2 {:>5} {:>10.4}",
                    dies,
                    format!("{strategy:?}"),
                    pod.total_cores(),
                    pod.total_llc_mb(),
                    pod.footprint_mm2(),
                    chip.pods,
                    chip.performance_density_3d
                );
            }
        }
        println!();
    }
    println!("stacking keeps Moore-style gains flowing once planar scaling stops:");
    println!("either the same pod gets physically smaller (fixed-pod) or it grows");
    println!("without getting slower (fixed-distance).");
}
