//! Simulate a 64-core pod on three on-chip networks — the chapter-4
//! NOC-Out experiment — with the cycle-level CMP simulator.
//!
//! ```text
//! cargo run --release --example nocout_pod [workload]
//! ```
//!
//! where `workload` is one of: dataserving, mapreduce-c, mapreduce-w,
//! streaming, sat, frontend, search (default: search).

use scale_out_processors::noc::{NocAreaBreakdown, NocConfig, TopologyKind};
use scale_out_processors::sim::{Machine, SimConfig};
use scale_out_processors::workloads::Workload;

fn parse_workload(arg: Option<String>) -> Workload {
    match arg.as_deref() {
        Some("dataserving") => Workload::DataServing,
        Some("mapreduce-c") => Workload::MapReduceC,
        Some("mapreduce-w") => Workload::MapReduceW,
        Some("streaming") => Workload::MediaStreaming,
        Some("sat") => Workload::SatSolver,
        Some("frontend") => Workload::WebFrontend,
        Some("search") | None => Workload::WebSearch,
        Some(other) => {
            eprintln!("unknown workload {other}, using Web Search");
            Workload::WebSearch
        }
    }
}

fn main() {
    let workload = parse_workload(std::env::args().nth(1));
    println!("64-core pod, 8MB LLC, 4 x DDR3 — workload: {workload}\n");
    println!(
        "{:22} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "fabric", "agg IPC", "pkt lat", "snoop%", "LLC miss%", "NOC mm2"
    );
    let mut mesh_ipc = None;
    for kind in [
        TopologyKind::Mesh,
        TopologyKind::FlattenedButterfly,
        TopologyKind::NocOut,
    ] {
        let cfg = SimConfig::pod_64(workload, kind);
        let area =
            NocAreaBreakdown::of(&NocConfig::pod_64(kind).build_topology(), cfg.noc.link_bits);
        let r = Machine::new(cfg).run(6_000, 14_000);
        let ipc = r.aggregate_ipc();
        mesh_ipc.get_or_insert(ipc);
        println!(
            "{:22} {:>9.2} {:>9.1} {:>7.1}% {:>8.1}% {:>9.2}   p50<{} p99<{}",
            format!("{kind:?}"),
            ipc,
            r.mean_packet_latency,
            r.snoop_fraction() * 100.0,
            r.llc_misses as f64 / r.llc_accesses.max(1) as f64 * 100.0,
            area.total_mm2(),
            r.request_latency.quantile_upper(0.5),
            r.request_latency.quantile_upper(0.99),
        );
    }
    println!(
        "\nNOC-Out's pitch: flattened-butterfly performance at about a tenth of\nits network area, and {}+% over the mesh.",
        5
    );
}
