//! Provision a mixed-QoS facility: out-of-order Scale-Out chips for the
//! latency-sensitive pool, in-order for batch (§5.3.1's guidance).
//!
//! ```text
//! cargo run --release --example qos_fleet [latency_fraction]
//! ```

use scale_out_processors::tco::{MixedFleet, TcoParams};
use scale_out_processors::workloads::QosClass;

fn main() {
    let fraction: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.6);
    let params = TcoParams::thesis();
    println!(
        "mixed fleet: {:.0}% latency-sensitive, {:.0}% batch\n",
        fraction * 100.0,
        (1.0 - fraction) * 100.0
    );
    let fleet = MixedFleet::provision(fraction, &params, 64);
    for pool in &fleet.pools {
        println!(
            "  {:18} {:>4.0}%  {:22} perf/TCO {:.3}",
            format!("{:?}", pool.qos),
            pool.fraction * 100.0,
            pool.datacenter.chip.label,
            pool.datacenter.perf_per_tco()
        );
    }
    println!("\n  blended perf/TCO: {:.3}", fleet.perf_per_tco());
    println!(
        "  ({} serves the tight-latency tier; {} mops up throughput)",
        fleet.chip_for(QosClass::LatencySensitive),
        fleet.chip_for(QosClass::Batch)
    );
    println!("\nsweep of the mix:");
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let f = MixedFleet::provision(pct, &params, 64);
        println!(
            "  {:>3.0}% latency -> blended perf/TCO {:.3}",
            pct * 100.0,
            f.perf_per_tco()
        );
    }
}
