//! Availability-derated datacenter capacity: run the graceful-degradation
//! sweep (pod throughput vs fraction of dead routers), fit the measured
//! curve, and price the degrade-vs-drain repair policies against the
//! chapter-5 TCO model.
//!
//! ```text
//! cargo run --release --example derated_capacity [--quick]
//! ```

use scale_out_processors::bench::degradation;
use scale_out_processors::core::designs::DesignKind;
use scale_out_processors::tco::{derated_performance, Datacenter, DegradationCurve, TcoParams};
use scale_out_processors::tech::CoreKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Measuring the degradation curve (seeded router deaths)...\n");
    let rows = degradation::sweep(quick);
    println!("  dead  failed%  relative");
    for r in &rows {
        println!(
            "  {:>4}  {:>6.1}%  {:>7.4}",
            r.dead_routers,
            r.failed_fraction * 100.0,
            r.relative_performance
        );
    }

    let curve = DegradationCurve::new(
        rows.iter()
            .map(|r| (r.failed_fraction, r.relative_performance))
            .collect(),
    );

    // Steady state: failure rate x repair latency leaves ~6% of routers
    // dead inside a damaged pod, and ~20% of pods carrying some damage.
    let expected_failed = 0.0625;
    let damaged_pods = 0.20;
    let (degrade, drain) = derated_performance(&curve, expected_failed, damaged_pods);

    let params = TcoParams::thesis();
    let dc = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::InOrder), &params, 64);
    let healthy = dc.perf_per_tco();

    println!("\nScale-Out (IO) 20MW facility, {} racks", params.racks());
    println!(
        "  {:>5.1}% of pods damaged, {:>5.2}% of routers dead inside them",
        damaged_pods * 100.0,
        expected_failed * 100.0
    );
    println!(
        "  perf/TCO healthy:          {healthy:10.3}\n  \
           perf/TCO degrade-in-place: {:10.3}  ({:.1}% retained)\n  \
           perf/TCO drain-and-repair: {:10.3}  ({:.1}% retained)",
        healthy * degrade,
        degrade * 100.0,
        healthy * drain,
        drain * 100.0
    );
    println!(
        "\ngraceful degradation retains {:.1}% more datacenter capacity than\n\
         draining damaged pods outright.",
        (degrade - drain) * 100.0
    );
}
