//! 3D pod organizations and the volume-normalised PD metric.
//!
//! A 3D pod spans every stacked die (§6.2): its LLC sits in the centre of
//! each die with cores on both sides (Fig 6.3), and the per-die LLC rows
//! are joined vertically by TSVs at negligible latency. For the analytic
//! model this means one thing: the crossbar/fabric wire span is set by the
//! *per-die footprint*, not the pod's total silicon.

use sop_model::{DesignPoint, Interconnect};
use sop_tech::{CoreKind, LlcParams, TechnologyNode};

/// How a pod uses additional stacked dies (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackStrategy {
    /// Keep the pod's cores and LLC constant; stacking shrinks the
    /// footprint and with it the on-chip distance.
    FixedPod,
    /// Grow cores and LLC linearly with the die count; the footprint and
    /// distance stay those of the single-die pod.
    FixedDistance,
}

/// A pod stacked over `dies` logic dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pod3d {
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// Cores of the *single-die* base pod.
    pub base_cores: u32,
    /// LLC MB of the single-die base pod.
    pub base_llc_mb: f64,
    /// Stacked logic dies.
    pub dies: u32,
    /// Stacking strategy.
    pub strategy: StackStrategy,
    /// Technology node (chapter 6 evaluates at 40nm with DDR4).
    pub node: TechnologyNode,
}

impl Pod3d {
    /// A 3D pod at the chapter-6 baseline node.
    ///
    /// # Panics
    ///
    /// Panics if `dies` or `base_cores` is zero.
    pub fn new(
        core_kind: CoreKind,
        base_cores: u32,
        base_llc_mb: f64,
        dies: u32,
        strategy: StackStrategy,
    ) -> Self {
        assert!(dies > 0, "need at least one die");
        assert!(base_cores > 0, "need at least one core");
        Pod3d {
            core_kind,
            base_cores,
            base_llc_mb,
            dies,
            strategy,
            node: TechnologyNode::N40,
        }
    }

    /// Total cores across all dies.
    pub fn total_cores(&self) -> u32 {
        match self.strategy {
            StackStrategy::FixedPod => self.base_cores,
            StackStrategy::FixedDistance => self.base_cores * self.dies,
        }
    }

    /// Total LLC capacity across all dies.
    pub fn total_llc_mb(&self) -> f64 {
        match self.strategy {
            StackStrategy::FixedPod => self.base_llc_mb,
            StackStrategy::FixedDistance => self.base_llc_mb * f64::from(self.dies),
        }
    }

    /// Total silicon area of the pod (summed over dies), mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.core_kind.area_mm2(self.node) * f64::from(self.total_cores())
            + LlcParams::at(self.node).area_mm2(self.total_llc_mb())
            + 0.2 * f64::from(self.dies) // TSV fields + fabric share per die
    }

    /// Planar footprint per die, mm². This is what the pod's wires span.
    pub fn footprint_mm2(&self) -> f64 {
        self.total_area_mm2() / f64::from(self.dies)
    }

    /// Peak pod power (cores + LLC), W.
    pub fn power_w(&self) -> f64 {
        self.core_kind.power_w(self.node) * f64::from(self.total_cores())
            + LlcParams::at(self.node).power_w(self.total_llc_mb())
    }

    /// The analytic design point: a crossbar pod whose wires span one
    /// die's footprint.
    pub fn design_point(&self) -> DesignPoint {
        DesignPoint::new(
            self.core_kind,
            self.total_cores(),
            self.total_llc_mb(),
            Interconnect::Crossbar,
        )
        .at_node(self.node)
        .with_crossbar_span_area(self.footprint_mm2())
    }

    /// Evaluates the pod.
    pub fn metrics(&self) -> Pod3dMetrics {
        let dp = self.design_point();
        let per_core_ipc = dp.mean_per_core_ipc();
        let aggregate_ipc = per_core_ipc * f64::from(self.total_cores());
        let footprint = self.footprint_mm2();
        Pod3dMetrics {
            pod: *self,
            aggregate_ipc,
            per_core_ipc,
            footprint_mm2: footprint,
            power_w: self.power_w(),
            bandwidth_gbps: dp.worst_case_bandwidth_gbps(),
            // §6.3: performance per unit volume ∝ perf / (area x dies).
            performance_density_3d: aggregate_ipc / (footprint * f64::from(self.dies)),
        }
    }
}

/// Evaluated 3D pod.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pod3dMetrics {
    /// The pod evaluated.
    pub pod: Pod3d,
    /// Aggregate application IPC.
    pub aggregate_ipc: f64,
    /// Per-core application IPC.
    pub per_core_ipc: f64,
    /// Per-die footprint, mm².
    pub footprint_mm2: f64,
    /// Pod power, W.
    pub power_w: f64,
    /// Worst-case off-chip demand, GB/s.
    pub bandwidth_gbps: f64,
    /// Performance per mm² per die (§6.3).
    pub performance_density_3d: f64,
}

/// One point of the Fig 6.4/6.6 sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sweep3dPoint {
    /// Total cores of the configuration.
    pub cores: u32,
    /// Total LLC in MB.
    pub llc_mb: f64,
    /// Stacked dies.
    pub dies: u32,
    /// Volume-normalised PD.
    pub pd3d: f64,
}

/// Sweeps total core count and LLC capacity for a given die count,
/// spreading each configuration evenly across the dies (the homogeneous
/// organization of §6.4). Non-divisible configurations are skipped.
pub fn sweep_3d(
    kind: CoreKind,
    dies: u32,
    core_counts: &[u32],
    llc_capacities_mb: &[f64],
) -> Vec<Sweep3dPoint> {
    let mut out = Vec::new();
    for &cores in core_counts {
        if cores % dies != 0 {
            continue;
        }
        for &mb in llc_capacities_mb {
            let pod = Pod3d::new(
                kind,
                cores / dies,
                mb / f64::from(dies),
                dies,
                StackStrategy::FixedDistance,
            );
            out.push(Sweep3dPoint {
                cores,
                llc_mb: mb,
                dies,
                pd3d: pod.metrics().performance_density_3d,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_die_pod_matches_2d_semantics() {
        let p = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 1, StackStrategy::FixedPod);
        let m = p.metrics();
        assert_eq!(p.total_cores(), 32);
        assert!((m.footprint_mm2 - p.total_area_mm2()).abs() < 1e-9);
        // PD3D at one die equals plain perf/area.
        assert!((m.performance_density_3d - m.aggregate_ipc / m.footprint_mm2).abs() < 1e-12);
    }

    #[test]
    fn strategies_agree_at_one_die() {
        let a = Pod3d::new(CoreKind::InOrder, 64, 2.0, 1, StackStrategy::FixedPod).metrics();
        let b = Pod3d::new(CoreKind::InOrder, 64, 2.0, 1, StackStrategy::FixedDistance).metrics();
        assert!((a.performance_density_3d - b.performance_density_3d).abs() < 1e-12);
    }

    #[test]
    fn fixed_pod_gains_from_stacking() {
        // Fig 6.5: 5% at two dies, ~8% at four (OoO). Accept the band.
        let d1 = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 1, StackStrategy::FixedPod)
            .metrics()
            .performance_density_3d;
        let d2 = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 2, StackStrategy::FixedPod)
            .metrics()
            .performance_density_3d;
        let d4 = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 4, StackStrategy::FixedPod)
            .metrics()
            .performance_density_3d;
        assert!(d2 > d1 && d4 > d2);
        let gain4 = d4 / d1;
        assert!((1.01..1.25).contains(&gain4), "gain {gain4}");
    }

    #[test]
    fn fixed_distance_keeps_footprint_constant() {
        let d1 = Pod3d::new(
            CoreKind::OutOfOrder,
            32,
            2.0,
            1,
            StackStrategy::FixedDistance,
        );
        let d4 = Pod3d::new(
            CoreKind::OutOfOrder,
            32,
            2.0,
            4,
            StackStrategy::FixedDistance,
        );
        let rel = d4.footprint_mm2() / d1.footprint_mm2();
        assert!((0.95..1.1).contains(&rel), "footprints {rel}");
        assert_eq!(d4.total_cores(), 128);
        assert_eq!(d4.total_llc_mb(), 8.0);
    }

    #[test]
    fn fixed_distance_beats_its_own_2d_expansion() {
        // A 128-core/8MB pod built flat pays the full planar distance; the
        // same resources over four dies pay a quarter the span.
        let flat = Pod3d::new(CoreKind::OutOfOrder, 128, 8.0, 1, StackStrategy::FixedPod)
            .metrics()
            .per_core_ipc;
        let stacked = Pod3d::new(
            CoreKind::OutOfOrder,
            32,
            2.0,
            4,
            StackStrategy::FixedDistance,
        )
        .metrics()
        .per_core_ipc;
        assert!(stacked > flat);
    }

    #[test]
    fn sweep_skips_non_divisible_configs() {
        let pts = sweep_3d(CoreKind::OutOfOrder, 4, &[2, 8, 16], &[4.0]);
        assert!(pts.iter().all(|p| p.cores % 4 == 0));
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn sweep_peak_moves_right_with_dies() {
        // Fig 6.4: with more dies, bigger configurations become optimal
        // (distance no longer punishes them).
        let cores: Vec<u32> = vec![4, 8, 16, 32, 64, 128, 256];
        let caps = [2.0, 4.0, 8.0, 16.0];
        let peak = |dies: u32| {
            sweep_3d(CoreKind::OutOfOrder, dies, &cores, &caps)
                .into_iter()
                .max_by(|a, b| a.pd3d.total_cmp(&b.pd3d))
                .expect("non-empty sweep")
        };
        let p1 = peak(1);
        let p4 = peak(4);
        assert!(p4.cores >= p1.cores, "{} vs {}", p4.cores, p1.cores);
        assert!(p4.pd3d >= p1.pd3d * 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_panics() {
        Pod3d::new(CoreKind::InOrder, 8, 1.0, 0, StackStrategy::FixedPod);
    }
}
