//! 3D-stacked Scale-Out Processors (chapter 6).
//!
//! When transistor scaling ends, stacking logic dies with through-silicon
//! vias keeps adding transistors *without* adding distance: the vertical
//! hop is micrometres, the horizontal millimetres (§6.1). A 3D pod can
//! therefore either keep its resources and shrink its planar span
//! (**fixed-pod**), or grow resources with the die count at constant span
//! (**fixed-distance**) — the two strategies of §6.2. The design metric
//! becomes volume-normalised performance density: performance per mm² per
//! die (§6.3).
//!
//! # Example
//!
//! ```
//! use sop_3d::{Pod3d, StackStrategy};
//! use sop_tech::CoreKind;
//!
//! let flat = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 1, StackStrategy::FixedPod);
//! let stacked = Pod3d::new(CoreKind::OutOfOrder, 32, 2.0, 4, StackStrategy::FixedPod);
//! // Stacking the same pod over four dies shortens its wires and lifts
//! // volume-normalized performance density (Fig 6.5).
//! assert!(stacked.metrics().performance_density_3d > flat.metrics().performance_density_3d);
//! ```

pub mod chip;
pub mod stack;
pub mod thermal;

pub use chip::{compose_3d, Chip3dSpec};
pub use stack::{sweep_3d, Pod3d, Pod3dMetrics, StackStrategy, Sweep3dPoint};
pub use thermal::{CoolingTechnology, ThermalModel};
