//! Thermal feasibility of stacked logic dies (§6.1).
//!
//! The main challenge of logic-on-logic stacking is heat: every die adds
//! power over the same footprint, and the dies far from the heat sink see
//! the accumulated thermal resistance of everything between them and the
//! sink. The thesis assumes the problem solved by (expensive) liquid
//! cooling and budgets 250W; this module makes that assumption checkable
//! with a standard one-dimensional resistance model:
//!
//! ```text
//! T_hot = T_ambient + P_total x R_sink + R_inter x sum over levels of
//!         (power that must cross that inter-die interface)
//! ```
//!
//! For a homogeneous stack of `L` dies the crossing sum is
//! `P_total x (L-1) / 2`.

/// Cooling solutions considered by the thesis (§6.1 cites both air-cooled
/// prototypes and the liquid cooling its 250W budget needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoolingTechnology {
    /// Conventional heat-sink-and-fan cooling.
    AirCooled,
    /// Interlayer/coldplate liquid cooling.
    LiquidCooled,
}

impl CoolingTechnology {
    /// Sink-to-ambient thermal resistance in K/W.
    pub fn sink_resistance_k_per_w(self) -> f64 {
        match self {
            // ~95W at a ~33K rise: the 2D server-chip operating point.
            CoolingTechnology::AirCooled => 0.35,
            // ~250W four-die stacks within a 40K budget (§6.5.1).
            CoolingTechnology::LiquidCooled => 0.08,
        }
    }
}

/// One-dimensional stack thermal model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Cooling solution.
    pub cooling: CoolingTechnology,
    /// Ambient (inlet) temperature in °C.
    pub ambient_c: f64,
    /// Maximum junction temperature in °C.
    pub t_max_c: f64,
    /// Inter-die thermal resistance in K/W per interface.
    pub inter_die_k_per_w: f64,
}

impl ThermalModel {
    /// The model at datacenter conditions (45°C inlet, 85°C junction).
    pub fn datacenter(cooling: CoolingTechnology) -> Self {
        ThermalModel {
            cooling,
            ambient_c: 45.0,
            t_max_c: 85.0,
            inter_die_k_per_w: 0.03,
        }
    }

    /// Hottest-die junction temperature for a homogeneous stack burning
    /// `power_w` over `dies` dies.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero or power is negative.
    pub fn junction_c(&self, power_w: f64, dies: u32) -> f64 {
        assert!(dies > 0, "need at least one die");
        assert!(power_w >= 0.0, "power must be non-negative");
        // Power crossing interface i (counted from the sink) is
        // P x (L-i)/L; summing over the L-1 interfaces gives P(L-1)/2.
        let crossing = power_w * f64::from(dies - 1) / 2.0;
        self.ambient_c
            + power_w * self.cooling.sink_resistance_k_per_w()
            + crossing * self.inter_die_k_per_w
    }

    /// Maximum stack power before the hottest die exceeds `t_max_c`.
    pub fn max_power_w(&self, dies: u32) -> f64 {
        assert!(dies > 0, "need at least one die");
        let budget_k = self.t_max_c - self.ambient_c;
        let r = self.cooling.sink_resistance_k_per_w()
            + self.inter_die_k_per_w * f64::from(dies - 1) / 2.0;
        budget_k / r
    }

    /// Whether a stack of `dies` dies at `power_w` is thermally feasible.
    pub fn admits(&self, power_w: f64, dies: u32) -> bool {
        power_w <= self.max_power_w(dies)
    }

    /// The largest stack that can carry `power_per_die_w` on every die.
    pub fn max_dies(&self, power_per_die_w: f64) -> u32 {
        assert!(power_per_die_w > 0.0, "per-die power must be positive");
        let mut dies = 1;
        while dies < 64 && self.admits(power_per_die_w * f64::from(dies + 1), dies + 1) {
            dies += 1;
        }
        dies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_cooling_carries_a_2d_server_chip() {
        let m = ThermalModel::datacenter(CoolingTechnology::AirCooled);
        assert!(m.admits(95.0, 1), "max {:.0}W", m.max_power_w(1));
    }

    #[test]
    fn air_cooling_cannot_carry_the_250w_stack() {
        // §6.1: stacked logic needs liquid cooling at the thesis' budget.
        let air = ThermalModel::datacenter(CoolingTechnology::AirCooled);
        assert!(!air.admits(250.0, 4));
        let liquid = ThermalModel::datacenter(CoolingTechnology::LiquidCooled);
        assert!(liquid.admits(250.0, 4), "max {:.0}W", liquid.max_power_w(4));
    }

    #[test]
    fn more_dies_lower_the_power_ceiling() {
        let m = ThermalModel::datacenter(CoolingTechnology::LiquidCooled);
        let mut prev = f64::INFINITY;
        for dies in 1..=8 {
            let p = m.max_power_w(dies);
            assert!(p < prev, "ceiling must fall with stacking");
            prev = p;
        }
    }

    #[test]
    fn max_dies_matches_admits() {
        let m = ThermalModel::datacenter(CoolingTechnology::LiquidCooled);
        let per_die = 60.0;
        let dies = m.max_dies(per_die);
        assert!(m.admits(per_die * f64::from(dies), dies));
        assert!(!m.admits(per_die * f64::from(dies + 1), dies + 1));
    }

    #[test]
    fn liquid_supports_deeper_stacks_than_air() {
        let air = ThermalModel::datacenter(CoolingTechnology::AirCooled);
        let liquid = ThermalModel::datacenter(CoolingTechnology::LiquidCooled);
        let per_die = 40.0;
        assert!(liquid.max_dies(per_die) > air.max_dies(per_die));
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_panics() {
        ThermalModel::datacenter(CoolingTechnology::AirCooled).max_power_w(0);
    }
}
