//! 3D chip composition (Table 6.2).
//!
//! A 3D Scale-Out Processor tiles 3D pods across the per-die footprint,
//! shares six DDR4 interfaces on the bottom die, and runs under the 250W
//! liquid-cooled budget of §6.5.1.

use crate::stack::{Pod3d, Pod3dMetrics};
use sop_tech::{ChipBudget, MemoryInterface, SocParams, TechnologyNode};

/// A composed 3D chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chip3dSpec {
    /// The replicated pod.
    pub pod: Pod3dMetrics,
    /// Pods on the chip.
    pub pods: u32,
    /// Stacked logic dies.
    pub dies: u32,
    /// Total cores.
    pub cores: u32,
    /// Total LLC in MB.
    pub llc_mb: f64,
    /// Memory channels (DDR4, on the bottom die).
    pub memory_channels: u32,
    /// Footprint of one die, mm².
    pub die_mm2: f64,
    /// Stack power, W.
    pub power_w: f64,
    /// Volume-normalised performance density.
    pub performance_density_3d: f64,
}

/// Composes as many copies of `pod` as the 3D budgets admit.
///
/// # Panics
///
/// Panics if not even one pod fits.
pub fn compose_3d(pod: &Pod3d) -> Chip3dSpec {
    let budget = ChipBudget::stacked_3d();
    let node = pod.node;
    let mem = MemoryInterface::at(TechnologyNode::N20); // DDR4 per §6.5.1
    let soc = SocParams::at(node);
    let metrics = pod.metrics();
    let mut best: Option<Chip3dSpec> = None;
    for pods in 1..=64u32 {
        let n = f64::from(pods);
        let bw = metrics.bandwidth_gbps * n;
        let channels = mem.channels_for(bw);
        if channels > budget.max_memory_channels {
            break;
        }
        // Memory interfaces and SoC glue live on the bottom die and count
        // against its footprint.
        let die = metrics.footprint_mm2 * n
            + (f64::from(channels) * mem.area_mm2 + soc.area_mm2) / f64::from(pod.dies);
        let power = metrics.power_w * n + f64::from(channels) * mem.power_w + soc.power_w;
        if die > budget.max_die_mm2 || power > budget.max_power_w {
            break;
        }
        best = Some(Chip3dSpec {
            pod: metrics,
            pods,
            dies: pod.dies,
            cores: pod.total_cores() * pods,
            llc_mb: pod.total_llc_mb() * n,
            memory_channels: channels,
            die_mm2: die,
            power_w: power,
            performance_density_3d: metrics.aggregate_ipc * n / (die * f64::from(pod.dies)),
        });
    }
    best.expect("at least one pod must fit the 3D budget")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackStrategy;
    use sop_tech::CoreKind;

    #[test]
    fn more_dies_admit_more_fixed_pods() {
        // Fig 6.1 / §6.6.1: 1, 2, and 4 stacked dies afford one, two, and
        // four OoO pods respectively... (subject to the same footprint).
        let pods_at = |dies: u32| {
            compose_3d(&Pod3d::new(
                CoreKind::OutOfOrder,
                32,
                2.0,
                dies,
                StackStrategy::FixedPod,
            ))
            .pods
        };
        let p1 = pods_at(1);
        let p2 = pods_at(2);
        let p4 = pods_at(4);
        assert!(p2 >= 2 * p1, "{p1} {p2}");
        assert!(p4 >= 2 * p2 || p4 >= 4 * p1, "{p2} {p4}");
    }

    #[test]
    fn channels_never_exceed_six() {
        for dies in [1, 2, 4] {
            let chip = compose_3d(&Pod3d::new(
                CoreKind::InOrder,
                64,
                2.0,
                dies,
                StackStrategy::FixedPod,
            ));
            assert!(chip.memory_channels <= 6);
        }
    }

    #[test]
    fn stacking_raises_chip_level_density() {
        let flat = compose_3d(&Pod3d::new(
            CoreKind::OutOfOrder,
            32,
            2.0,
            1,
            StackStrategy::FixedPod,
        ));
        let stacked = compose_3d(&Pod3d::new(
            CoreKind::OutOfOrder,
            32,
            2.0,
            4,
            StackStrategy::FixedPod,
        ));
        assert!(stacked.performance_density_3d > flat.performance_density_3d);
        assert!(stacked.cores > flat.cores);
    }

    #[test]
    fn composition_is_internally_consistent() {
        let chip = compose_3d(&Pod3d::new(
            CoreKind::InOrder,
            64,
            2.0,
            2,
            StackStrategy::FixedDistance,
        ));
        assert_eq!(chip.cores, 128 * chip.pods);
        assert!(chip.die_mm2 <= 280.0);
        assert!(chip.power_w <= 250.0);
    }
}
