//! Packets, flits, and message classes.

/// Unique identifier of an injected packet: a slot in the network's
/// packet slab plus the allocation generation that guards against slot
/// reuse (see [`crate::slab`]). Generations count injections globally,
/// so `PacketId: Ord` sorts packets by injection order — the same total
/// order the engine used when ids were a bare incrementing integer.
pub type PacketId = crate::slab::Key;

/// Coherence-protocol message classes (§4.2.2). Each class travels in its
/// own virtual channel to guarantee protocol-level deadlock freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Data request from a core to the LLC (control-sized).
    Request,
    /// Snoop request from a directory to a core (control-sized).
    SnoopRequest,
    /// Data or snoop response (usually carries a 64B line).
    Response,
}

impl MessageClass {
    /// All classes, lowest priority first.
    pub const ALL: [MessageClass; 3] = [
        MessageClass::Request,
        MessageClass::SnoopRequest,
        MessageClass::Response,
    ];

    /// Virtual-channel index of the class. Responses get the highest
    /// priority so replies can always drain (§4.2.2's static priority).
    pub fn vc(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::SnoopRequest => 1,
            MessageClass::Response => 2,
        }
    }

    /// Lowercase metric-key segment for this class, used in telemetry
    /// names such as `noc.class.response.packets`.
    pub fn key(self) -> &'static str {
        match self {
            MessageClass::Request => "request",
            MessageClass::SnoopRequest => "snoop",
            MessageClass::Response => "response",
        }
    }

    /// Payload size in bytes (control packets carry an address and
    /// command; responses carry a 64B cache line).
    pub fn payload_bytes(self) -> u32 {
        match self {
            MessageClass::Request | MessageClass::SnoopRequest => 8,
            MessageClass::Response => 64,
        }
    }

    /// Number of flits a packet of this class needs on `link_bits`-wide
    /// channels, including an 8-byte header.
    ///
    /// # Panics
    ///
    /// Panics if `link_bits` is zero.
    pub fn flits(self, link_bits: u32) -> u32 {
        assert!(link_bits > 0, "links must be at least one bit wide");
        let bits = (self.payload_bytes() + 8) * 8;
        bits.div_ceil(link_bits).max(1)
    }
}

/// One flit in flight. Wormhole switching: the head flit allocates the
/// path, body flits follow in order, the tail releases it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Message class (selects the VC at every hop).
    pub class: MessageClass,
    /// Destination node index.
    pub dst: usize,
    /// True for the first flit of the packet.
    pub is_head: bool,
    /// True for the last flit of the packet (a one-flit packet is both).
    pub is_tail: bool,
}

/// A completed packet delivery reported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The packet that arrived.
    pub packet: PacketId,
    /// Message class.
    pub class: MessageClass,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Cycle the packet was injected.
    pub injected_at: u64,
    /// Cycle the tail flit was ejected.
    pub delivered_at: u64,
}

impl Delivered {
    /// End-to-end packet latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts_follow_link_width() {
        // 128-bit links: control = 1 flit, response = (64+8)*8/128 = 5.
        assert_eq!(MessageClass::Request.flits(128), 1);
        assert_eq!(MessageClass::Response.flits(128), 5);
        // 18-bit links (the Fig 4.8 squeezed butterfly): everything longer.
        assert!(MessageClass::Response.flits(18) > 5 * 5);
    }

    #[test]
    fn response_class_has_highest_vc() {
        assert!(MessageClass::Response.vc() > MessageClass::Request.vc());
        assert!(MessageClass::Response.vc() > MessageClass::SnoopRequest.vc());
    }

    #[test]
    #[should_panic(expected = "one bit")]
    fn zero_width_links_panic() {
        MessageClass::Request.flits(0);
    }

    #[test]
    fn latency_is_delivery_minus_injection() {
        let d = Delivered {
            packet: crate::slab::Slab::new().insert(()),
            class: MessageClass::Request,
            src: 0,
            dst: 5,
            injected_at: 10,
            delivered_at: 31,
        };
        assert_eq!(d.latency(), 21);
    }
}
