//! Lookahead-bounded domain decomposition for deterministic intra-run
//! parallelism.
//!
//! A [`DomainPartition`] splits a topology's nodes into contiguous,
//! balanced ranges — each domain owns the routers (and, at the machine
//! layer, the cores/L1s/LLC slices) of its range. [`cut_links`] names
//! the directed channels crossing domain boundaries, and [`lookahead`]
//! computes the conservative-parallelism bound from them: the minimum
//! cut-link latency `W`. Any event a domain produces for another domain
//! at cycle `c` lands at `c + W` or later, so domains may advance
//! independently for up to `W` cycles between exchanges. The engine's
//! epochs are single ticks (`W >= 1` always holds — every channel takes
//! at least one cycle), which keeps the exchange barrier aligned with
//! the protocol's one-cycle reactivity; see the parallel-step notes in
//! [`crate::sim`].
//!
//! [`DomainPool`] is the persistent fork-join pool domains run on:
//! `threads - 1` parked workers plus the calling thread, all claiming
//! domain indices from a shared counter. The pool imposes no ordering —
//! determinism comes from the caller merging domain outputs in
//! canonical order afterwards.

use crate::topology::Topology;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A balanced, contiguous split of nodes `0..n` into domains. Every
/// node belongs to exactly one domain; domain `d`'s nodes form the
/// half-open range [`DomainPartition::range`]. Contiguity is what lets
/// the parallel sweep hand each domain a disjoint `&mut` slice of
/// per-node state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainPartition {
    /// Range starts, ascending, plus the final end: `starts[d]..starts[d+1]`
    /// is domain `d`. Length `domains + 1`.
    starts: Vec<usize>,
}

impl DomainPartition {
    /// Splits `nodes` nodes into `domains` contiguous ranges whose sizes
    /// differ by at most one (the first `nodes % domains` ranges get the
    /// extra node). `domains` is clamped to `1..=nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, domains: usize) -> DomainPartition {
        assert!(nodes > 0, "cannot partition an empty topology");
        let domains = domains.clamp(1, nodes);
        let (base, extra) = (nodes / domains, nodes % domains);
        let mut starts = Vec::with_capacity(domains + 1);
        let mut at = 0;
        for d in 0..domains {
            starts.push(at);
            at += base + usize::from(d < extra);
        }
        starts.push(at);
        debug_assert_eq!(at, nodes);
        DomainPartition { starts }
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total nodes covered.
    pub fn nodes(&self) -> usize {
        *self.starts.last().expect("non-empty")
    }

    /// The half-open node range of domain `d`.
    pub fn range(&self, d: usize) -> Range<usize> {
        self.starts[d]..self.starts[d + 1]
    }

    /// The domain owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn domain_of(&self, node: usize) -> usize {
        assert!(node < self.nodes(), "node out of range");
        // First start strictly above `node`, minus one.
        self.starts.partition_point(|&s| s <= node) - 1
    }
}

/// Directed channels whose endpoints lie in different domains, as
/// `(source node, output port)` — the links the lookahead bound is
/// computed over, and the only paths by which one domain can affect
/// another within a tick's sweep.
pub fn cut_links(topo: &Topology, part: &DomainPartition) -> Vec<(usize, usize)> {
    let mut cut = Vec::new();
    for (node, channels) in topo.channels.iter().enumerate() {
        let home = part.domain_of(node);
        for (port, ch) in channels.iter().enumerate() {
            if part.domain_of(ch.to) != home {
                cut.push((node, port));
            }
        }
    }
    cut
}

/// The conservative lookahead window `W`: the minimum latency over all
/// domain-cut channels. A flit forwarded across a cut at cycle `c`
/// arrives no earlier than `c + W`, so domains advanced independently
/// for fewer than `W` cycles can never miss a cross-domain event.
/// `None` when no channel crosses a cut (a single domain, or mutually
/// unreachable domains): the window is unbounded.
pub fn lookahead(topo: &Topology, part: &DomainPartition) -> Option<u64> {
    cut_links(topo, part)
        .iter()
        .map(|&(node, port)| u64::from(topo.channels[node][port].latency))
        .min()
}

/// The closure a pool run executes, lifetime-erased. The raw pointer is
/// only dereferenced for successfully claimed task indices, and
/// [`DomainPool::run`] blocks until every claimed task has finished —
/// so the pointee outlives every dereference.
struct JobState {
    task: *const (dyn Fn(usize) + Sync),
    tasks: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
}

// Safety: `task` points at a `Sync` closure that `run` keeps alive
// until `remaining` reaches zero; workers only call it through a shared
// reference, and only for indices claimed while it is alive.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

impl JobState {
    /// Claims and executes tasks until the counter is exhausted. Safe to
    /// call from a worker holding a stale job: its counters stay
    /// exhausted forever, so the closure is never touched again.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.tasks {
                return;
            }
            // Safety: see `JobState` — a claimed index proves liveness.
            (unsafe { &*self.task })(i);
            self.remaining.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

struct PoolShared {
    /// Latest published job, replaced wholesale each run. Workers key off
    /// `seq` so a job is joined at most once per worker; a worker waking
    /// late simply finds the counters exhausted.
    slot: Mutex<JobSlot>,
    go: Condvar,
}

struct JobSlot {
    seq: u64,
    job: Option<Arc<JobState>>,
    shutdown: bool,
}

/// A persistent fork-join pool: `threads - 1` parked worker threads
/// plus the caller. [`DomainPool::run`] publishes one closure, every
/// participant greedily claims task indices, and the call returns once
/// all tasks completed — the epoch barrier of the parallel engine.
/// With `threads <= 1` no workers are spawned and `run` degenerates to
/// a plain loop.
pub struct DomainPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DomainPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl DomainPool {
    /// Spawns a pool of `threads` participants (the caller counts as
    /// one, so `threads - 1` OS threads are created).
    pub fn new(threads: usize) -> DomainPool {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                seq: 0,
                job: None,
                shutdown: false,
            }),
            go: Condvar::new(),
        });
        let workers = (1..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        DomainPool { shared, workers }
    }

    /// Worker threads this pool runs besides the caller.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn worker_loop(shared: &PoolShared) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut slot = shared.slot.lock().expect("pool lock");
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.seq != seen {
                        seen = slot.seq;
                        break slot.job.clone();
                    }
                    slot = shared.go.wait(slot).expect("pool lock");
                }
            };
            if let Some(job) = job {
                job.work();
            }
        }
    }

    /// Runs `f(0..tasks)` across the pool and returns the nanoseconds
    /// the *caller* spent stalled at the completion barrier after its
    /// own task claims ran dry (zero when it finished last — the
    /// epoch-barrier cost the profiler attributes).
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) -> u64 {
        if self.workers.is_empty() || tasks <= 1 {
            for i in 0..tasks {
                f(i);
            }
            return 0;
        }
        // Erase the borrow lifetime for storage; the safety argument on
        // `JobState` bounds every dereference to within this call.
        let f: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let job = Arc::new(JobState {
            task: f as *const _,
            tasks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(tasks),
        });
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.seq += 1;
            slot.job = Some(Arc::clone(&job));
            self.shared.go.notify_all();
        }
        job.work();
        if job.remaining.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let stalled = Instant::now();
        while job.remaining.load(Ordering::Acquire) != 0 {
            // Tasks are balanced and short (one tick's domain sweep);
            // yielding lets a preempted worker finish on small hosts.
            std::thread::yield_now();
        }
        stalled.elapsed().as_nanos() as u64
    }
}

impl Drop for DomainPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.shutdown = true;
            self.shared.go.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn partition_is_balanced_and_exhaustive() {
        let p = DomainPartition::new(10, 4);
        assert_eq!(p.domains(), 4);
        let sizes: Vec<usize> = (0..4).map(|d| p.range(d).len()).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
        let mut seen = Vec::new();
        for d in 0..p.domains() {
            seen.extend(p.range(d));
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for node in 0..10 {
            let d = p.domain_of(node);
            assert!(p.range(d).contains(&node));
        }
    }

    #[test]
    fn partition_clamps_domain_count() {
        assert_eq!(DomainPartition::new(3, 8).domains(), 3);
        assert_eq!(DomainPartition::new(3, 0).domains(), 1);
    }

    #[test]
    fn mesh_cut_lookahead_is_the_link_latency() {
        let topo = Topology::mesh(8, 8, 1.0);
        let part = DomainPartition::new(topo.len(), 4);
        let cut = cut_links(&topo, &part);
        assert!(!cut.is_empty(), "a split mesh must have cut links");
        for &(node, port) in &cut {
            assert_ne!(
                part.domain_of(node),
                part.domain_of(topo.channels[node][port].to)
            );
        }
        // Every mesh link takes one cycle, so the window is exactly 1.
        assert_eq!(lookahead(&topo, &part), Some(1));
    }

    #[test]
    fn single_domain_has_no_cut() {
        let topo = Topology::mesh(4, 4, 1.0);
        let part = DomainPartition::new(topo.len(), 1);
        assert!(cut_links(&topo, &part).is_empty());
        assert_eq!(lookahead(&topo, &part), None);
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = DomainPool::new(4);
        assert_eq!(pool.workers(), 3);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = DomainPool::new(1);
        assert_eq!(pool.workers(), 0);
        let hits = AtomicU64::new(0);
        let stall = pool.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(stall, 0);
    }
}
