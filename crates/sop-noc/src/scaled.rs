//! NOC-Out scalability mechanisms (§4.5.1).
//!
//! The thesis sketches three ways to scale NOC-Out past 64 cores and
//! commits to none; this module implements all three so they can be
//! evaluated:
//!
//! * **Concentration** — several adjacent cores share one tree port
//!   (a concentration factor of 2 supports twice the cores at nearly the
//!   same network cost);
//! * **Express links** — long-range links inserted into the reduction and
//!   dispersion trees that bypass intermediate nodes, holding tree delay
//!   near-constant as columns deepen;
//! * **A 2-D LLC butterfly** — the LLC region grows from one row to a
//!   grid of rows, each row pair serving its own banks, with the flattened
//!   butterfly extended across both dimensions.

use crate::topology::{Channel, NodeRole, Topology, TopologyKind};

/// Configuration of a scaled NOC-Out fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledNocOut {
    /// Total cores.
    pub cores: u32,
    /// LLC tiles (each holding two banks), arranged in `llc_rows` rows.
    pub llc_tiles: u32,
    /// Rows of LLC tiles (1 = the chapter-4 organization).
    pub llc_rows: u32,
    /// Cores sharing each tree port (1 = no concentration).
    pub concentration: u32,
    /// Insert an express link past every `express_stride` tree nodes
    /// (0 = no express links).
    pub express_stride: u32,
    /// Core tile edge in mm.
    pub tile_mm: f64,
}

impl ScaledNocOut {
    /// The §4.5.1 sketch for a 128-core pod: concentration of two over
    /// the 64-core organization.
    pub fn concentrated_128() -> Self {
        ScaledNocOut {
            cores: 128,
            llc_tiles: 8,
            llc_rows: 1,
            concentration: 2,
            express_stride: 0,
            tile_mm: 1.82,
        }
    }

    /// A 256-core pod: concentration of two, express links every two
    /// nodes, and a 2x8 LLC grid.
    pub fn express_256() -> Self {
        ScaledNocOut {
            cores: 256,
            llc_tiles: 16,
            llc_rows: 2,
            concentration: 2,
            express_stride: 2,
            tile_mm: 1.82,
        }
    }

    /// Builds the topology graph.
    ///
    /// # Panics
    ///
    /// Panics if the cores do not divide evenly into the tree columns or
    /// the tiles into the rows.
    pub fn build(&self) -> Topology {
        assert!(
            self.concentration >= 1,
            "concentration factor of at least 1"
        );
        assert!(
            self.llc_rows >= 1 && self.llc_tiles.is_multiple_of(self.llc_rows),
            "tiles must split evenly into rows"
        );
        let ports = self.cores / self.concentration;
        assert_eq!(
            ports % (self.llc_tiles * 2),
            0,
            "tree ports must split evenly into two half-columns per tile"
        );
        let depth = ports / (self.llc_tiles * 2);
        let n_llc = self.llc_tiles as usize;
        let cols = (self.llc_tiles / self.llc_rows) as usize;
        // Node layout: [0, n_llc) LLC routers (row-major grid); then one
        // tree node per port, grouped (tile, half, position).
        let n = n_llc + ports as usize;
        let tree_node = |tile: u32, half: u32, pos: u32| {
            n_llc + (tile * 2 * depth + half * depth + pos) as usize
        };
        let mut roles = vec![NodeRole::TreeNode; n];
        let mut channels = vec![Vec::new(); n];
        let mut pipeline = vec![0u32; n];
        for (t, role) in roles.iter_mut().enumerate().take(n_llc) {
            *role = NodeRole::Llc(t as u32);
        }
        // LLC grid: flattened butterfly along rows and columns.
        for t in 0..self.llc_tiles {
            let (row, col) = (t as usize / cols, t as usize % cols);
            pipeline[t as usize] = 3;
            for o in 0..self.llc_tiles {
                let (orow, ocol) = (o as usize / cols, o as usize % cols);
                if (orow == row) != (ocol == col) {
                    // Same row or same column (not both = not self).
                    let span_mm = ((orow.abs_diff(row) + ocol.abs_diff(col)) * 2) as f64;
                    channels[t as usize].push(Channel {
                        to: o as usize,
                        latency: ((span_mm / 4.0).ceil() as u32).max(1),
                        length_mm: span_mm,
                    });
                }
            }
        }
        // Trees with optional express links.
        for t in 0..self.llc_tiles {
            for half in 0..2 {
                for pos in 0..depth {
                    let node = tree_node(t, half, pos);
                    pipeline[node] = 1;
                    let parent = if pos == 0 {
                        t as usize
                    } else {
                        tree_node(t, half, pos - 1)
                    };
                    channels[node].push(Channel {
                        to: parent,
                        latency: 1,
                        length_mm: self.tile_mm * self.concentration as f64,
                    });
                    let child = Channel {
                        to: node,
                        latency: 1,
                        length_mm: self.tile_mm * self.concentration as f64,
                    };
                    if pos == 0 {
                        channels[t as usize].push(child);
                    } else {
                        channels[tree_node(t, half, pos - 1)].push(child);
                    }
                    // Express links: jump straight to the LLC tile from
                    // every stride-th node (and back), bypassing the chain.
                    if self.express_stride > 0
                        && pos >= self.express_stride
                        && pos % self.express_stride == 0
                    {
                        let span = self.tile_mm * f64::from(pos + 1);
                        channels[node].push(Channel {
                            to: t as usize,
                            latency: ((span / 4.0).ceil() as u32).max(1),
                            length_mm: span,
                        });
                        channels[t as usize].push(Channel {
                            to: node,
                            latency: ((span / 4.0).ceil() as u32).max(1),
                            length_mm: span,
                        });
                    }
                }
            }
        }
        // Routing tables via BFS (the express/grid structure no longer has
        // the simple closed form of the one-row fabric).
        let next_hop = bfs_routes(&channels, &pipeline, n);
        // Core endpoints: concentration maps several cores onto one tree
        // node; endpoint lists repeat nodes accordingly.
        let mut core_nodes = Vec::with_capacity(self.cores as usize);
        for port in 0..ports {
            let (tile, rem) = (port / (2 * depth), port % (2 * depth));
            let (half, pos) = (rem / depth, rem % depth);
            for _ in 0..self.concentration {
                core_nodes.push(tree_node(tile, half, pos));
            }
        }
        for (i, &node) in core_nodes.iter().enumerate().take(ports as usize) {
            let _ = (i, node);
        }
        // Mark tree nodes that host cores.
        for (i, &node) in core_nodes.iter().enumerate() {
            roles[node] = NodeRole::Core(i as u32 / self.concentration);
        }
        Topology {
            kind: TopologyKind::NocOut,
            roles,
            channels,
            pipeline,
            next_hop,
            core_nodes,
            llc_nodes: (0..n_llc).collect(),
        }
    }

    /// Mean zero-load latency from a core port to an LLC tile.
    pub fn mean_core_to_llc_latency(&self) -> f64 {
        let topo = self.build();
        let mut sum = 0u64;
        let mut count = 0u64;
        for &c in topo.core_nodes.iter().step_by(self.concentration as usize) {
            for &l in &topo.llc_nodes {
                sum += u64::from(topo.zero_load_latency(c, l));
                count += 1;
            }
        }
        sum as f64 / count as f64
    }
}

/// All-pairs next-hop routing by breadth-first search, minimizing
/// (latency-weighted) hop distance with deterministic tie-breaking.
fn bfs_routes(channels: &[Vec<Channel>], pipeline: &[u32], n: usize) -> Vec<Vec<usize>> {
    let mut next = vec![vec![0usize; n]; n];
    for dst in 0..n {
        // Reverse Dijkstra (small weights, use simple relaxation).
        let mut dist = vec![u32::MAX; n];
        dist[dst] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                for (port, ch) in channels[u].iter().enumerate() {
                    let through = dist[ch.to].saturating_add(ch.latency + pipeline[u]);
                    if through < dist[u] {
                        dist[u] = through;
                        next[u][dst] = port;
                        changed = true;
                    }
                }
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrated_128_has_64_tree_ports() {
        let cfg = ScaledNocOut::concentrated_128();
        let topo = cfg.build();
        assert_eq!(topo.core_nodes.len(), 128);
        // Two cores share each port: 64 distinct tree endpoints.
        let mut distinct: Vec<_> = topo.core_nodes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn concentration_keeps_network_cost_flat() {
        // §4.5.1: twice the cores at nearly the same network area.
        let base = crate::topology::Topology::noc_out(64, 8, 1.82);
        let scaled = ScaledNocOut::concentrated_128().build();
        let base_area = crate::area::NocAreaBreakdown::of(&base, 128).total_mm2();
        let scaled_area = crate::area::NocAreaBreakdown::of(&scaled, 128).total_mm2();
        assert!(
            scaled_area < base_area * 1.35,
            "128-core fabric {scaled_area:.2} vs 64-core {base_area:.2}"
        );
    }

    #[test]
    fn express_links_cut_tree_latency() {
        let without = ScaledNocOut {
            express_stride: 0,
            ..ScaledNocOut::express_256()
        };
        let with = ScaledNocOut::express_256();
        let slow = without.mean_core_to_llc_latency();
        let fast = with.mean_core_to_llc_latency();
        assert!(fast < slow, "express {fast:.1} vs chain {slow:.1}");
    }

    #[test]
    fn two_dimensional_llc_grid_is_fully_reachable() {
        let topo = ScaledNocOut::express_256().build();
        for &c in topo.core_nodes.iter().step_by(7) {
            for &l in &topo.llc_nodes {
                if c != l {
                    topo.hops(c, l); // panics on a routing failure
                    topo.hops(l, c);
                }
            }
        }
    }

    #[test]
    fn llc_grid_rows_use_two_hops_max() {
        let topo = ScaledNocOut::express_256().build();
        for &a in &topo.llc_nodes {
            for &b in &topo.llc_nodes {
                if a != b {
                    assert!(topo.hops(a, b) <= 2, "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn scaled_latency_grows_slowly_with_core_count() {
        // 4x the cores should cost far less than 4x the latency.
        let base = crate::topology::Topology::noc_out(64, 8, 1.82);
        let mut sum = 0u64;
        let mut count = 0u64;
        for &c in &base.core_nodes {
            for &l in &base.llc_nodes {
                sum += u64::from(base.zero_load_latency(c, l));
                count += 1;
            }
        }
        let base_mean = sum as f64 / count as f64;
        let scaled_mean = ScaledNocOut::express_256().mean_core_to_llc_latency();
        assert!(
            scaled_mean < base_mean * 2.0,
            "256-core {scaled_mean:.1} vs 64-core {base_mean:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_rows_panic() {
        ScaledNocOut {
            llc_rows: 3,
            ..ScaledNocOut::express_256()
        }
        .build();
    }
}
