//! Cycle-stepped flit-level network simulation.
//!
//! The engine models input-buffered routers with one virtual channel per
//! message class, credit-based flow control, and flit-interleaved
//! switching: every cycle each output port moves at most one flit, chosen
//! by class priority (responses > snoops > requests, §4.2.2) and
//! round-robin among input ports. Router pipelines and link flight times
//! are charged as in-transit delay; per-packet flit order is preserved by
//! deterministic routing and FIFO queues, so wormhole-style multi-flit
//! packets reassemble in order at the destination.

use crate::message::{Delivered, Flit, MessageClass, PacketId};
use crate::slab::{SideTable, Slab};
use crate::topology::{RouteHealth, Topology, TopologyKind};
use std::collections::{BinaryHeap, VecDeque};

/// Number of virtual channels (one per message class).
const VCS: usize = 3;

/// Configuration of a network instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Which fabric to build.
    pub topology: TopologyKind,
    /// Number of core endpoints.
    pub cores: u32,
    /// Number of LLC endpoints (tiles in NOC-Out and star fabrics; equal
    /// to `cores` in tiled fabrics, where every tile has a slice).
    pub llc_tiles: u32,
    /// Link width in bits (128 in the Table 4.1 baseline).
    pub link_bits: u32,
    /// Buffer depth per virtual channel, in flits.
    pub vc_depth: u32,
    /// Tile edge length in mm (sets link lengths for area/energy).
    pub tile_mm: f64,
    /// Crossbar hub arbitration depth in cycles (star fabrics only).
    pub hub_cycles: u32,
}

impl NocConfig {
    /// The 64-core, 8MB chapter-4 pod (Table 4.1) on the given fabric.
    pub fn pod_64(topology: TopologyKind) -> Self {
        let llc_tiles = match topology {
            TopologyKind::NocOut => 8,
            TopologyKind::Mesh | TopologyKind::FlattenedButterfly => 64,
            TopologyKind::Crossbar | TopologyKind::Ideal => 16,
        };
        NocConfig {
            topology,
            cores: 64,
            llc_tiles,
            link_bits: 128,
            vc_depth: 5,
            tile_mm: 1.82,
            hub_cycles: 3,
        }
    }

    /// Returns a copy with a different link width (the Fig 4.8 equal-area
    /// study squeezes links until fabrics match NOC-Out's area).
    pub fn with_link_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0, "links must be at least one bit wide");
        self.link_bits = bits;
        self
    }

    /// Builds the topology graph for this configuration.
    pub fn build_topology(&self) -> Topology {
        match self.topology {
            TopologyKind::Mesh => {
                let (w, h) = near_square(self.cores);
                Topology::mesh(w, h, self.tile_mm)
            }
            TopologyKind::FlattenedButterfly => {
                let (w, h) = near_square(self.cores);
                Topology::flattened_butterfly(w, h, self.tile_mm)
            }
            TopologyKind::NocOut => Topology::noc_out(self.cores, self.llc_tiles, self.tile_mm),
            TopologyKind::Crossbar => Topology::crossbar(
                self.cores,
                self.llc_tiles,
                self.hub_cycles,
                (f64::from(self.cores)).sqrt() * self.tile_mm,
            ),
            TopologyKind::Ideal => Topology::ideal(self.cores, self.llc_tiles),
        }
    }
}

fn near_square(n: u32) -> (u32, u32) {
    let mut h = (n as f64).sqrt().floor() as u32;
    while h > 1 && !n.is_multiple_of(h) {
        h -= 1;
    }
    (n / h.max(1), h.max(1))
}

#[derive(Debug, Default)]
struct InputBuffer {
    queues: [VecDeque<Flit>; VCS],
}

#[derive(Debug)]
struct RouterState {
    /// One buffer per input port; the last entry is the injection port
    /// (endpoint nodes only).
    inputs: Vec<InputBuffer>,
    /// Credits toward each downstream input, per output port and VC.
    credits: Vec<[u32; VCS]>,
    /// Round-robin pointer per output port (+1 for the local/eject port).
    rr: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    due: u64,
    node: usize,
    in_port: usize,
    flit: Flit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CreditReturn {
    due: u64,
    node: usize,
    out_port: usize,
    vc: usize,
}

// BinaryHeap is a max-heap; order events so earliest-due pops first.
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then(other.flit.packet.cmp(&self.flit.packet))
    }
}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CreditReturn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due)
    }
}
impl PartialOrd for CreditReturn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    src: usize,
    dst: usize,
    class: MessageClass,
    injected_at: u64,
    flits: u32,
    received: u32,
}

/// Causal timestamps collected for one traced packet: when its head
/// flit first won switch allocation (leaving the source's injection
/// queue) and when its tail flit reached the destination's input
/// buffer. Both stay `None` for hops the packet never took — a
/// self-injected packet bypasses the fabric entirely — and the span
/// decomposition in [`Network::take_packet_trace`] degrades gracefully.
#[derive(Debug, Clone, Copy, Default)]
struct PacketTrace {
    depart: Option<u64>,
    tail_arrived: Option<u64>,
}

/// One delivered packet's time split into the three NOC hop stages:
/// source queueing (`inject`), fabric traversal (`route`), and
/// destination ejection (`eject`). The three always sum exactly to
/// [`Delivered::latency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocSpans {
    /// Cycles the head flit waited at the source for link access.
    pub inject: u64,
    /// Head departure until the tail reached the destination buffer.
    pub route: u64,
    /// Tail arrival until the packet was fully ejected.
    pub eject: u64,
}

/// Aggregate traffic counters for power estimation, with per-message-class
/// breakdowns (indexed by [`MessageClass::vc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Total flit-hops through router switches.
    pub flit_hops: u64,
    /// Total flit-millimetres of wire traversed.
    pub flit_mm: f64,
    /// Total packets delivered.
    pub packets: u64,
    /// Sum of packet latencies (for averaging).
    pub total_latency: u64,
    /// Flit-hops per message class.
    pub class_flit_hops: [u64; VCS],
    /// Packets delivered per message class.
    pub class_packets: [u64; VCS],
    /// Latency sums per message class.
    pub class_latency: [u64; VCS],
}

impl TrafficCounters {
    /// Mean end-to-end packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets as f64
        }
    }

    /// Mean latency of one message class.
    pub fn class_mean_latency(&self, class: MessageClass) -> f64 {
        let vc = class.vc();
        if self.class_packets[vc] == 0 {
            0.0
        } else {
            self.class_latency[vc] as f64 / self.class_packets[vc] as f64
        }
    }

    /// Publishes these counters under `prefix` (e.g. `"noc."`):
    /// `<p>flit_hops`, `<p>flit_mm`, `<p>packets`, `<p>mean_latency`, and
    /// per-class `<p>class.<name>.{packets,flit_hops,mean_latency}`.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}flit_hops"), self.flit_hops);
        reg.gauge_set(&format!("{prefix}flit_mm"), self.flit_mm);
        reg.counter_add(&format!("{prefix}packets"), self.packets);
        reg.gauge_set(&format!("{prefix}mean_latency"), self.mean_latency());
        for class in MessageClass::ALL {
            let vc = class.vc();
            let name = class.key();
            reg.counter_add(
                &format!("{prefix}class.{name}.packets"),
                self.class_packets[vc],
            );
            reg.counter_add(
                &format!("{prefix}class.{name}.flit_hops"),
                self.class_flit_hops[vc],
            );
            reg.gauge_set(
                &format!("{prefix}class.{name}.mean_latency"),
                self.class_mean_latency(class),
            );
        }
    }

    /// Counter-wise difference against an earlier snapshot (for window
    /// deltas). Means are recomputed from the deltas by the callers.
    #[must_use]
    pub fn delta_since(&self, earlier: &TrafficCounters) -> TrafficCounters {
        let mut d = TrafficCounters {
            flit_hops: self.flit_hops - earlier.flit_hops,
            flit_mm: self.flit_mm - earlier.flit_mm,
            packets: self.packets - earlier.packets,
            total_latency: self.total_latency - earlier.total_latency,
            ..TrafficCounters::default()
        };
        for vc in 0..VCS {
            d.class_flit_hops[vc] = self.class_flit_hops[vc] - earlier.class_flit_hops[vc];
            d.class_packets[vc] = self.class_packets[vc] - earlier.class_packets[vc];
            d.class_latency[vc] = self.class_latency[vc] - earlier.class_latency[vc];
        }
        d
    }
}

/// A running network instance.
#[derive(Debug)]
pub struct Network {
    cfg: NocConfig,
    topo: Topology,
    routers: Vec<RouterState>,
    /// `(node, out_port)` -> (downstream node, downstream input port).
    link_dst: Vec<Vec<(usize, usize)>>,
    /// `(node, in_port)` -> (upstream node, upstream out_port), if any.
    link_src: Vec<Vec<Option<(usize, usize)>>>,
    arrivals: BinaryHeap<Arrival>,
    credit_returns: BinaryHeap<CreditReturn>,
    /// Per-packet state, indexed by [`PacketId`]. Slots retired by a step
    /// are reclaimed only at the *next* step, so between two steps a
    /// caller may key its own side tables by packet id without a
    /// delivered packet's index being reissued under it (see
    /// [`crate::slab::SideTable`]).
    packets: Slab<PacketMeta>,
    counters: TrafficCounters,
    /// Flits sent per (node, output port), for utilization analysis.
    channel_flits: Vec<Vec<u64>>,
    /// Nodes holding at least one buffered flit, ascending — the only
    /// routers switch allocation has to visit.
    worklist: Vec<usize>,
    /// `worklist` membership flags (including nodes pending insertion).
    is_active: Vec<bool>,
    /// Nodes activated since the last step, merged into `worklist` (and
    /// re-sorted) when the next step begins.
    pending_activation: Vec<usize>,
    /// Routers removed by faults. Empty on fault-free runs; routing
    /// tables (not per-flit checks) carry the effect, so the hot path
    /// never consults this.
    dead_routers: Vec<bool>,
    /// Directed channels removed by faults, as `(node, out_port)`.
    dead_links: Vec<(usize, usize)>,
    /// Hop timestamps for packets marked by [`Network::trace_packet`].
    /// `None` until [`Network::enable_packet_tracing`] arms it, so an
    /// untraced run pays exactly one pointer-null test per hook.
    trace: Option<Box<SideTable<PacketTrace>>>,
    cycle: u64,
}

impl Network {
    /// Builds a network from a configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let topo = cfg.build_topology();
        let n = topo.len();
        // Input port maps.
        let mut link_dst = vec![Vec::new(); n];
        let mut link_src: Vec<Vec<Option<(usize, usize)>>> = vec![Vec::new(); n];
        let mut in_count = vec![0usize; n];
        for (u, dsts) in link_dst.iter_mut().enumerate() {
            for (port, ch) in topo.channels[u].iter().enumerate() {
                let in_port = in_count[ch.to];
                in_count[ch.to] += 1;
                dsts.push((ch.to, in_port));
                while link_src[ch.to].len() <= in_port {
                    link_src[ch.to].push(None);
                }
                link_src[ch.to][in_port] = Some((u, port));
            }
        }
        let mut routers = Vec::with_capacity(n);
        for node in 0..n {
            // +1 injection pseudo-port on every node (harmless where unused).
            let inputs = (0..=in_count[node])
                .map(|_| InputBuffer::default())
                .collect();
            let out_ports = topo.channels[node].len();
            routers.push(RouterState {
                inputs,
                credits: vec![[cfg.vc_depth; VCS]; out_ports],
                rr: vec![0; out_ports + 1],
            });
            link_src[node].resize(in_count[node], None);
            let _ = node;
        }
        let channel_flits = (0..n).map(|u| vec![0u64; topo.channels[u].len()]).collect();
        Network {
            cfg,
            topo,
            routers,
            link_dst,
            link_src,
            arrivals: BinaryHeap::new(),
            credit_returns: BinaryHeap::new(),
            packets: Slab::new(),
            counters: TrafficCounters::default(),
            channel_flits,
            worklist: Vec::new(),
            is_active: vec![false; n],
            pending_activation: Vec::new(),
            dead_routers: vec![false; n],
            dead_links: Vec::new(),
            trace: None,
            cycle: 0,
        }
    }

    /// Arms per-packet hop tracing. Until a packet is marked with
    /// [`Network::trace_packet`] nothing is recorded; without arming,
    /// marking is a no-op and the hot path stays on its original branch.
    pub fn enable_packet_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Box::default());
        }
    }

    /// Marks an in-flight packet for hop tracing (no-op when tracing is
    /// not armed). Call between [`Network::inject`] and the packet's
    /// first step.
    pub fn trace_packet(&mut self, packet: PacketId) {
        if let Some(trace) = &mut self.trace {
            trace.insert(packet, PacketTrace::default());
        }
    }

    /// Consumes the hop timestamps of a delivered traced packet and
    /// returns its inject/route/eject span split, which sums exactly to
    /// `d.latency()`. Returns `None` for untraced packets. Must be
    /// called in the same inter-step window as the delivery (packet
    /// slots are reclaimed at the next step).
    pub fn take_packet_trace(&mut self, d: &Delivered) -> Option<NocSpans> {
        let t = self.trace.as_mut()?.remove(d.packet)?;
        // A self-injected packet never wins a fabric switch slot nor
        // crosses a link: both timestamps default so its whole latency
        // lands in the eject span.
        let depart = t
            .depart
            .unwrap_or(d.injected_at)
            .clamp(d.injected_at, d.delivered_at);
        let tail = t
            .tail_arrived
            .unwrap_or(d.delivered_at)
            .clamp(depart, d.delivered_at);
        Some(NocSpans {
            inject: depart - d.injected_at,
            route: tail - depart,
            eject: d.delivered_at - tail,
        })
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The underlying topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Nodes at which cores inject and eject.
    pub fn core_endpoints(&self) -> &[usize] {
        &self.topo.core_nodes
    }

    /// Nodes at which LLC tiles inject and eject.
    pub fn llc_endpoints(&self) -> &[usize] {
        &self.topo.llc_nodes
    }

    /// Traffic counters accumulated so far.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Utilization of every channel over `cycles` of simulated time:
    /// `(source node, output port, flits-per-cycle)`. A channel moves at
    /// most one flit per cycle, so values are in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn channel_utilization(&self, cycles: u64) -> Vec<(usize, usize, f64)> {
        assert!(cycles > 0, "need a non-empty window");
        let mut out = Vec::new();
        for (node, ports) in self.channel_flits.iter().enumerate() {
            for (port, &flits) in ports.iter().enumerate() {
                out.push((node, port, flits as f64 / cycles as f64));
            }
        }
        out
    }

    /// The hottest channel and its utilization — congestion diagnosis for
    /// the §4.4.1 "networks are not congested" check.
    pub fn max_channel_utilization(&self, cycles: u64) -> f64 {
        self.channel_utilization(cycles)
            .into_iter()
            .map(|(_, _, u)| u)
            .fold(0.0, f64::max)
    }

    /// Injects a packet of `class` from node `src` to node `dst` at
    /// `cycle`, returning its id. The packet's flit count follows the
    /// class payload and the configured link width. Injecting to `src`
    /// itself is allowed (a core talking to its own tile's LLC slice) and
    /// delivers through the local port without touching the fabric.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn inject(
        &mut self,
        src: usize,
        dst: usize,
        class: MessageClass,
        _weight: u32,
        cycle: u64,
    ) -> PacketId {
        assert!(
            src < self.topo.len() && dst < self.topo.len(),
            "node out of range"
        );
        let flits = class.flits(self.cfg.link_bits);
        let id = self.packets.insert(PacketMeta {
            src,
            dst,
            class,
            injected_at: cycle,
            flits,
            received: 0,
        });
        let inj_port = self.routers[src].inputs.len() - 1;
        for f in 0..flits {
            self.routers[src].inputs[inj_port].queues[class.vc()].push_back(Flit {
                packet: id,
                class,
                dst,
                is_head: f == 0,
                is_tail: f == flits - 1,
            });
        }
        self.activate(src);
        id
    }

    /// Number of packets injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Marks a node as holding buffered flits, queueing it for the next
    /// step's worklist merge.
    fn activate(&mut self, node: usize) {
        if !self.is_active[node] {
            self.is_active[node] = true;
            self.pending_activation.push(node);
        }
    }

    /// Whether any input buffer of `node` still holds a flit.
    fn has_buffered_flits(&self, node: usize) -> bool {
        self.routers[node]
            .inputs
            .iter()
            .any(|b| b.queues.iter().any(|q| !q.is_empty()))
    }

    /// The earliest future cycle at which [`Network::step`] could do any
    /// work, or `None` while the fabric is guaranteed to stay inert.
    ///
    /// Any buffered flit means switch allocation must run next cycle; an
    /// otherwise-empty fabric sleeps until its next in-flight arrival.
    /// Pending credit returns alone never wake the network: with no
    /// buffered flits there is nothing a credit could unblock, and a
    /// later step restores every credit due by then before allocating
    /// the switch, so skipping over them is exact.
    pub fn next_event_cycle(&self) -> Option<u64> {
        if !self.worklist.is_empty() || !self.pending_activation.is_empty() {
            return Some(self.cycle + 1);
        }
        self.arrivals.peek().map(|a| a.due.max(self.cycle + 1))
    }

    /// Advances the network to `cycle` (which must be monotonically
    /// increasing) and returns the packets fully delivered during it.
    ///
    /// Only *active* routers — those holding buffered flits — are swept
    /// by switch allocation; an idle router has nothing to arbitrate, so
    /// skipping it is exact. Callers that advance time themselves can
    /// consult [`Network::next_event_cycle`] and jump over idle spans.
    pub fn step(&mut self, cycle: u64) -> Vec<Delivered> {
        self.step_inner(cycle, false)
    }

    /// [`Network::step`] sweeping *every* router, active or not: the
    /// pre-worklist reference semantics, bit-identical by construction.
    /// Equivalence tests drive one network with `step` and one with
    /// `step_full` and assert the outputs match.
    pub fn step_full(&mut self, cycle: u64) -> Vec<Delivered> {
        self.step_inner(cycle, true)
    }

    fn step_inner(&mut self, cycle: u64, sweep_all: bool) -> Vec<Delivered> {
        assert!(cycle >= self.cycle, "cycles must not go backwards");
        self.cycle = cycle;
        // Packet slots retired by the previous step become reusable now
        // that the caller has had a full inter-step window to finish its
        // side-table bookkeeping for those deliveries.
        self.packets.reclaim_deferred();
        // 1. Credits that have returned upstream.
        while let Some(cr) = self.credit_returns.peek() {
            if cr.due > cycle {
                break;
            }
            let cr = self.credit_returns.pop().expect("peeked");
            self.routers[cr.node].credits[cr.out_port][cr.vc] += 1;
        }
        // 2. Flits arriving at input buffers.
        while let Some(a) = self.arrivals.peek() {
            if a.due > cycle {
                break;
            }
            let a = self.arrivals.pop().expect("peeked");
            if let Some(trace) = &mut self.trace {
                // A traced packet's tail reaching its destination's input
                // buffer ends the route span; later re-deliveries of the
                // timestamp are impossible (the tail arrives once).
                if a.flit.is_tail && a.node == a.flit.dst {
                    if let Some(t) = trace.get_mut(a.flit.packet) {
                        t.tail_arrived.get_or_insert(cycle);
                    }
                }
            }
            self.routers[a.node].inputs[a.in_port].queues[a.flit.class.vc()].push_back(a.flit);
            self.activate(a.node);
        }
        // 3. Switch allocation: one flit per output port per active node,
        // visited in ascending node order — the same relative order as a
        // full 0..n sweep, so delivery order is unchanged.
        if !self.pending_activation.is_empty() {
            let mut pending = std::mem::take(&mut self.pending_activation);
            self.worklist.append(&mut pending);
            self.worklist.sort_unstable();
        }
        let mut delivered = Vec::new();
        let worklist = std::mem::take(&mut self.worklist);
        let full_sweep: Vec<usize>;
        let sweep: &[usize] = if sweep_all {
            full_sweep = (0..self.topo.len()).collect();
            &full_sweep
        } else {
            &worklist
        };
        for &node in sweep {
            let out_ports = self.topo.channels[node].len();
            // Local ejection is pseudo-port `out_ports`.
            for out in 0..=out_ports {
                if let Some((in_port, vc)) = self.pick_input(node, out) {
                    let flit = self.routers[node].inputs[in_port].queues[vc]
                        .pop_front()
                        .expect("picked head exists");
                    if let Some(trace) = &mut self.trace {
                        // A traced head flit's *first* switch win is at
                        // the source (later hops happen at later cycles),
                        // ending the inject span.
                        if flit.is_head {
                            if let Some(t) = trace.get_mut(flit.packet) {
                                t.depart.get_or_insert(cycle);
                            }
                        }
                    }
                    // Return a credit to the upstream router feeding this
                    // input buffer (injection ports have no upstream).
                    if let Some(Some((u, uport))) = self.link_src[node].get(in_port).copied() {
                        let latency = self.topo.channels[u][uport].latency;
                        self.credit_returns.push(CreditReturn {
                            due: cycle + u64::from(latency),
                            node: u,
                            out_port: uport,
                            vc,
                        });
                    }
                    if out == out_ports {
                        // Ejected at the destination.
                        if let Some(d) = self.eject(node, flit, cycle) {
                            delivered.push(d);
                        }
                    } else {
                        let ch = self.topo.channels[node][out];
                        let (to, to_in) = self.link_dst[node][out];
                        self.routers[node].credits[out][vc] -= 1;
                        self.arrivals.push(Arrival {
                            due: cycle
                                + u64::from(self.topo.pipeline[node])
                                + u64::from(ch.latency),
                            node: to,
                            in_port: to_in,
                            flit,
                        });
                        self.counters.flit_hops += 1;
                        self.counters.flit_mm += ch.length_mm;
                        self.counters.class_flit_hops[flit.class.vc()] += 1;
                        self.channel_flits[node][out] += 1;
                    }
                }
            }
        }
        // Drop drained routers from the worklist (buffers only empty
        // during the sweep, so this is the one place nodes retire).
        self.worklist = worklist;
        let mut retained = 0;
        for i in 0..self.worklist.len() {
            let node = self.worklist[i];
            if self.has_buffered_flits(node) {
                self.worklist[retained] = node;
                retained += 1;
            } else {
                self.is_active[node] = false;
            }
        }
        self.worklist.truncate(retained);
        delivered
    }

    /// Runs the network until idle or `max_cycles`, returning deliveries.
    /// Idle spans between in-flight arrivals are skipped outright, which
    /// changes nothing observable: skipped cycles are exactly those where
    /// a step would have found no work.
    pub fn drain(&mut self, max_cycles: u64) -> Vec<Delivered> {
        let mut out = Vec::new();
        let end = self.cycle + max_cycles;
        while let Some(next) = self.next_event_cycle() {
            if next > end {
                break;
            }
            out.extend(self.step(next));
            if self.packets.is_empty() && self.arrivals.is_empty() {
                break;
            }
        }
        out
    }

    /// Fault operations must run on an idle fabric: routing tables are
    /// rewritten wholesale, and a flit already committed to a removed
    /// channel would be silently re-aimed (or stranded) mid-flight. The
    /// machine layer quiesces (stops issuing, drains) before applying a
    /// fault, so this only fires on a sequencing bug.
    /// (In-flight credit returns are fine: credits reference channel
    /// structures, which faults disable in the routing tables but never
    /// remove.)
    fn assert_idle_for_fault(&self, what: &str) {
        assert!(
            self.packets.is_empty() && self.arrivals.is_empty(),
            "{what} requires an idle fabric ({} packets in flight)",
            self.packets.len()
        );
    }

    fn reroute(&mut self) -> RouteHealth {
        let dead = std::mem::take(&mut self.dead_routers);
        let links = std::mem::take(&mut self.dead_links);
        let health = self.topo.reroute(&dead, |u, p| links.contains(&(u, p)));
        self.dead_routers = dead;
        self.dead_links = links;
        health
    }

    /// Removes router `node` from the fabric: nothing routes to, from, or
    /// through it again. Returns the surviving fabric's reachability.
    /// Idempotent. Must be called on an idle fabric.
    pub fn fail_router(&mut self, node: usize) -> RouteHealth {
        self.assert_idle_for_fault("fail_router");
        self.dead_routers[node] = true;
        self.reroute()
    }

    /// Removes the directed channel at `(node, out_port)`; traffic takes
    /// a deterministic detour where one exists. Idle fabric only.
    pub fn fail_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("fail_link");
        assert!(port < self.topo.channels[node].len(), "no such port");
        if !self.dead_links.contains(&(node, port)) {
            self.dead_links.push((node, port));
        }
        self.reroute()
    }

    /// Restores a previously failed link (an intermittent fault ending
    /// its down window). Idle fabric only.
    pub fn restore_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("restore_link");
        self.dead_links.retain(|&l| l != (node, port));
        self.reroute()
    }

    /// Degrades router `node`: +2 pipeline stages (a faulty stage retimed
    /// with spares). Routes shift away from it where a cheaper detour
    /// exists. Idle fabric only.
    pub fn degrade_router(&mut self, node: usize) -> RouteHealth {
        self.assert_idle_for_fault("degrade_router");
        self.topo.pipeline[node] += 2;
        self.reroute()
    }

    /// Degrades the channel at `(node, out_port)`: flight latency doubles
    /// (half-width operation after a lane failure). Idle fabric only.
    pub fn degrade_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("degrade_link");
        let ch = &mut self.topo.channels[node][port];
        ch.latency = ch.latency.saturating_mul(2);
        self.reroute()
    }

    /// Whether router `node` has been removed by a fault.
    pub fn router_is_dead(&self, node: usize) -> bool {
        self.dead_routers[node]
    }

    /// Picks the input (port, vc) that wins output `out` at `node` this
    /// cycle: highest VC (class priority) first, round-robin among ports.
    fn pick_input(&mut self, node: usize, out: usize) -> Option<(usize, usize)> {
        let out_ports = self.topo.channels[node].len();
        let is_local = out == out_ports;
        let n_inputs = self.routers[node].inputs.len();
        let rr = self.routers[node].rr[out];
        for vc in (0..VCS).rev() {
            if !is_local && self.routers[node].credits[out][vc] == 0 {
                continue;
            }
            for i in 0..n_inputs {
                let in_port = (rr + i) % n_inputs;
                let head = self.routers[node].inputs[in_port].queues[vc].front();
                let Some(flit) = head else { continue };
                let want_local = flit.dst == node;
                if want_local != is_local {
                    continue;
                }
                if !is_local && self.topo.next_hop[node][flit.dst] != out {
                    continue;
                }
                self.routers[node].rr[out] = (in_port + 1) % n_inputs;
                return Some((in_port, vc));
            }
        }
        None
    }

    fn eject(&mut self, node: usize, flit: Flit, cycle: u64) -> Option<Delivered> {
        let meta = self
            .packets
            .get_mut(flit.packet)
            .expect("packet meta exists");
        meta.received += 1;
        if meta.received == meta.flits {
            // Deferred: the slot stays unissuable until the next step so
            // callers can key side tables by packet index across the
            // inter-step delivery-processing window.
            let meta = self
                .packets
                .remove_deferred(flit.packet)
                .expect("just seen");
            debug_assert_eq!(meta.dst, node);
            self.counters.packets += 1;
            self.counters.total_latency += cycle - meta.injected_at;
            self.counters.class_packets[meta.class.vc()] += 1;
            self.counters.class_latency[meta.class.vc()] += cycle - meta.injected_at;
            Some(Delivered {
                packet: flit.packet,
                class: meta.class,
                src: meta.src,
                dst: meta.dst,
                injected_at: meta.injected_at,
                delivered_at: cycle,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_single(kind: TopologyKind, class: MessageClass) -> u64 {
        let mut net = Network::new(NocConfig::pod_64(kind));
        let src = net.core_endpoints()[0];
        let dst = *net.llc_endpoints().last().expect("has llc endpoints");
        net.inject(src, dst, class, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        done[0].latency()
    }

    #[test]
    fn single_request_latency_tracks_zero_load() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::FlattenedButterfly,
            TopologyKind::NocOut,
        ] {
            let cfg = NocConfig::pod_64(kind);
            let net = Network::new(cfg);
            let src = net.core_endpoints()[0];
            let dst = *net.llc_endpoints().last().expect("has llc");
            let zero_load = net.topology().zero_load_latency(src, dst);
            let measured = run_single(kind, MessageClass::Request);
            // Measured = zero-load + injection + ejection cycles.
            assert!(
                measured >= u64::from(zero_load) && measured <= u64::from(zero_load) + 4,
                "{kind:?}: measured {measured} vs zero-load {zero_load}"
            );
        }
    }

    #[test]
    fn traced_packet_spans_sum_to_latency() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        let src = net.core_endpoints()[0];
        let dst = *net.llc_endpoints().last().expect("has llc endpoints");
        let id = net.inject(src, dst, MessageClass::Response, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        let spans = net.take_packet_trace(&done[0]).expect("traced");
        assert_eq!(
            spans.inject + spans.route + spans.eject,
            done[0].latency(),
            "{spans:?}"
        );
        assert!(spans.route > 0, "multi-hop trip crosses the fabric");
        assert_eq!(net.take_packet_trace(&done[0]), None, "consumed");
    }

    #[test]
    fn self_injection_attributes_everything_to_ejection() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        let node = net.core_endpoints()[0];
        let id = net.inject(node, node, MessageClass::Request, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        let spans = net.take_packet_trace(&done[0]).expect("traced");
        assert_eq!(spans.inject + spans.route + spans.eject, done[0].latency());
        assert_eq!(spans.route, 0, "never touched the fabric: {spans:?}");
    }

    #[test]
    fn untraced_packets_yield_no_spans() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[0];
        // Not armed: marking is a no-op, delivery yields nothing.
        let id = net.inject(src, dst, MessageClass::Request, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(net.take_packet_trace(&done[0]), None);
        // Armed but unmarked packets also stay invisible.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        net.inject(src, dst, MessageClass::Request, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(net.take_packet_trace(&done[0]), None);
    }

    #[test]
    fn responses_pay_serialization() {
        let req = run_single(TopologyKind::Mesh, MessageClass::Request);
        let resp = run_single(TopologyKind::Mesh, MessageClass::Response);
        // A 5-flit response's tail trails the head by 4 cycles.
        assert_eq!(resp, req + 4);
    }

    #[test]
    fn narrow_links_stretch_responses() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh).with_link_bits(32));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Response, 0, 0);
        let done = net.drain(10_000);
        let wide = run_single(TopologyKind::Mesh, MessageClass::Response);
        assert!(done[0].latency() > wide + 10);
    }

    #[test]
    fn all_packets_are_delivered_under_load() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::NocOut));
        let cores: Vec<usize> = net.core_endpoints().to_vec();
        let llcs: Vec<usize> = net.llc_endpoints().to_vec();
        let mut expected = 0;
        for cycle in 0..120u64 {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + i).is_multiple_of(7) {
                    let dst = llcs[(i * 31 + cycle as usize) % llcs.len()];
                    net.inject(c, dst, MessageClass::Request, 0, cycle);
                    expected += 1;
                }
            }
            net.step(cycle);
        }
        let mut got = net.counters().packets;
        let done = net.drain(50_000);
        got += done.len() as u64;
        // counters().packets already includes drained ones; recompute:
        let total = net.counters().packets;
        assert_eq!(total, expected, "lost packets: {got}");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn responses_beat_requests_under_contention() {
        // Saturate one LLC tile with requests, then send a response
        // through the same column: the response's VC has priority.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let dst = net.llc_endpoints()[0];
        for src in net.core_endpoints().to_vec() {
            if src != dst {
                net.inject(src, dst, MessageClass::Request, 0, 0);
            }
        }
        let far = net.core_endpoints()[63];
        let resp = net.inject(far, dst, MessageClass::Response, 0, 0);
        let done = net.drain(100_000);
        let resp_done = done.iter().find(|d| d.packet == resp).expect("delivered");
        let worst_req = done
            .iter()
            .filter(|d| d.class == MessageClass::Request)
            .map(Delivered::latency)
            .max()
            .expect("requests delivered");
        assert!(resp_done.latency() < worst_req);
    }

    #[test]
    fn counters_accumulate() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.drain(1000);
        let c = net.counters();
        assert_eq!(c.packets, 1);
        assert_eq!(c.flit_hops, 14); // corner-to-corner hop count
        assert!(c.flit_mm > 0.0);
        assert!(c.mean_latency() > 0.0);
    }

    #[test]
    fn per_class_counters_partition_the_totals() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.inject(dst, src, MessageClass::Response, 0, 0);
        net.inject(dst, src, MessageClass::SnoopRequest, 0, 0);
        net.drain(10_000);
        let c = net.counters();
        assert_eq!(c.class_packets.iter().sum::<u64>(), c.packets);
        assert_eq!(c.class_flit_hops.iter().sum::<u64>(), c.flit_hops);
        assert_eq!(c.class_latency.iter().sum::<u64>(), c.total_latency);
        assert_eq!(c.class_packets[MessageClass::Request.vc()], 1);
        // Responses are 5 flits on 128-bit links, requests 1.
        assert_eq!(
            c.class_flit_hops[MessageClass::Response.vc()],
            5 * c.class_flit_hops[MessageClass::Request.vc()]
        );
        assert!(c.class_mean_latency(MessageClass::Response) > 0.0);
    }

    #[test]
    fn counters_export_named_metrics() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.drain(1000);
        let before = net.counters();
        net.inject(src, dst, MessageClass::Response, 0, net.counters().packets);
        net.drain(1000);
        let mut reg = sop_obs::Registry::new();
        net.counters()
            .delta_since(&before)
            .export_metrics(&mut reg, "noc.");
        assert_eq!(reg.counter("noc.packets"), 1);
        assert_eq!(reg.counter("noc.class.response.packets"), 1);
        assert_eq!(reg.counter("noc.class.request.packets"), 0);
        assert!(reg.gauge("noc.mean_latency").expect("gauge") > 0.0);
    }

    #[test]
    fn channel_utilization_is_bounded_and_finds_hot_links() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let cores = net.core_endpoints().to_vec();
        let dst = net.llc_endpoints()[27]; // a central tile
        let horizon = 3_000u64;
        for cycle in 0..horizon {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + i).is_multiple_of(20) && c != dst {
                    net.inject(c, dst, MessageClass::Response, 0, cycle);
                }
            }
            net.step(cycle);
        }
        let max = net.max_channel_utilization(horizon);
        assert!(
            max > 0.1,
            "hot-spotted traffic should load some channel: {max}"
        );
        assert!(
            max <= 1.0,
            "no channel can exceed one flit per cycle: {max}"
        );
        // Channels into the destination tile must be among the hottest.
        let hot: Vec<_> = net
            .channel_utilization(horizon)
            .into_iter()
            .filter(|&(_, _, u)| u > max * 0.9)
            .collect();
        assert!(!hot.is_empty());
    }

    #[test]
    fn pod_networks_are_not_congested_under_realistic_load() {
        // §4.4.1: differences in latency, not bandwidth, drive the fabric
        // comparison. At pod-like injection rates no channel saturates.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::NocOut));
        let cores = net.core_endpoints().to_vec();
        let llcs = net.llc_endpoints().to_vec();
        let horizon = 4_000u64;
        for cycle in 0..horizon {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + 3 * i).is_multiple_of(35) {
                    let dst = llcs[(i * 13 + cycle as usize) % llcs.len()];
                    if dst != c {
                        net.inject(c, dst, MessageClass::Request, 0, cycle);
                        net.inject(dst, c, MessageClass::Response, 0, cycle);
                    }
                }
            }
            net.step(cycle);
        }
        assert!(net.max_channel_utilization(horizon) < 0.85);
    }

    #[test]
    fn crossbar_and_ideal_fabrics_work() {
        for kind in [TopologyKind::Crossbar, TopologyKind::Ideal] {
            let lat = run_single(kind, MessageClass::Request);
            assert!(lat > 0 && lat < 20, "{kind:?}: {lat}");
        }
    }

    #[test]
    fn dead_router_forces_a_deterministic_detour() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let baseline = net.topology().hops(0, 63);
        // Kill a router on the pristine XY path from corner 0 to corner
        // 63 (X-first along row 0: node 1 is the first hop).
        let health = net.fail_router(1);
        assert!(!health.is_partitioned());
        assert!(net.router_is_dead(1));
        assert!(net.topology().routes(0, 63));
        net.inject(0, 63, MessageClass::Request, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1, "detoured packet must still deliver");
        // The detour never transits the dead router and costs at most two
        // extra hops in a mesh.
        assert!(net.topology().hops(0, 63) <= baseline + 2);
        let path_avoids_dead = {
            let topo = net.topology();
            let mut at = 0;
            let mut ok = true;
            while at != 63 {
                let port = topo.next_hop[at][63];
                at = topo.channels[at][port].to;
                ok &= at != 1;
            }
            ok
        };
        assert!(path_avoids_dead);
    }

    #[test]
    fn dead_link_reroutes_and_restore_heals() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let topo = net.topology().clone();
        let east = topo.next_hop[0][1];
        let health = net.fail_link(0, east);
        assert!(!health.is_partitioned());
        // 0 -> 1 must now leave through a different port but still route.
        assert_ne!(net.topology().next_hop[0][1], east);
        net.inject(0, 1, MessageClass::Request, 0, 0);
        assert_eq!(net.drain(10_000).len(), 1);
        // Restoring the link brings the original table back.
        net.restore_link(0, east);
        assert_eq!(net.topology().next_hop[0][1], east);
    }

    #[test]
    fn severed_fabric_reports_a_partition_instead_of_hanging() {
        // 2x2 mesh: killing routers 1 and 2 isolates node 0 from node 3.
        let mut net = Network::new(NocConfig {
            topology: TopologyKind::Mesh,
            cores: 4,
            llc_tiles: 4,
            link_bits: 128,
            vc_depth: 5,
            tile_mm: 1.0,
            hub_cycles: 3,
        });
        assert!(!net.fail_router(1).is_partitioned());
        let health = net.fail_router(2);
        assert!(health.is_partitioned());
        assert!(health.unreachable.contains(&(0, 3)));
        assert!(health.unreachable.contains(&(3, 0)));
        assert!(!net.topology().routes(0, 3));
    }

    #[test]
    fn degraded_link_stretches_latency_without_losing_packets() {
        let mut healthy = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let mut faulty = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        // Degrade every outgoing channel of node 0 so no detour escapes
        // the slowdown.
        for port in 0..faulty.topology().channels[0].len() {
            faulty.degrade_link(0, port);
        }
        for net in [&mut healthy, &mut faulty] {
            net.inject(0, 63, MessageClass::Request, 0, 0);
        }
        let h = healthy.drain(10_000)[0].latency();
        let f = faulty.drain(10_000)[0].latency();
        assert!(f > h, "degraded {f} vs healthy {h}");
    }

    #[test]
    fn same_faults_produce_identical_routing_tables() {
        let build = || {
            let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
            net.fail_router(27);
            net.fail_link(0, 0);
            net.degrade_router(9);
            net
        };
        let a = build();
        let b = build();
        assert_eq!(a.topology().next_hop, b.topology().next_hop);
    }

    #[test]
    #[should_panic(expected = "idle fabric")]
    fn faults_on_a_busy_fabric_panic() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.inject(0, 63, MessageClass::Request, 0, 0);
        net.fail_router(5);
    }

    #[test]
    fn self_injection_delivers_locally() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let node = net.core_endpoints()[0];
        let id = net.inject(node, node, MessageClass::Request, 0, 0);
        let done = net.drain(100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].packet, id);
        assert!(done[0].latency() <= 2, "local delivery is near-free");
    }
}
