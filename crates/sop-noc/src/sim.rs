//! Cycle-stepped flit-level network simulation.
//!
//! The engine models input-buffered routers with one virtual channel per
//! message class, credit-based flow control, and flit-interleaved
//! switching: every cycle each output port moves at most one flit, chosen
//! by class priority (responses > snoops > requests, §4.2.2) and
//! round-robin among input ports. Router pipelines and link flight times
//! are charged as in-transit delay; per-packet flit order is preserved by
//! deterministic routing and FIFO queues, so wormhole-style multi-flit
//! packets reassemble in order at the destination.

use crate::domains::{lookahead, DomainPartition, DomainPool};
use crate::message::{Delivered, Flit, MessageClass, PacketId};
use crate::slab::{SideTable, Slab};
use crate::topology::{RouteHealth, Topology, TopologyKind};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Number of virtual channels (one per message class).
const VCS: usize = 3;

/// Configuration of a network instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Which fabric to build.
    pub topology: TopologyKind,
    /// Number of core endpoints.
    pub cores: u32,
    /// Number of LLC endpoints (tiles in NOC-Out and star fabrics; equal
    /// to `cores` in tiled fabrics, where every tile has a slice).
    pub llc_tiles: u32,
    /// Link width in bits (128 in the Table 4.1 baseline).
    pub link_bits: u32,
    /// Buffer depth per virtual channel, in flits.
    pub vc_depth: u32,
    /// Tile edge length in mm (sets link lengths for area/energy).
    pub tile_mm: f64,
    /// Crossbar hub arbitration depth in cycles (star fabrics only).
    pub hub_cycles: u32,
}

impl NocConfig {
    /// The 64-core, 8MB chapter-4 pod (Table 4.1) on the given fabric.
    pub fn pod_64(topology: TopologyKind) -> Self {
        let llc_tiles = match topology {
            TopologyKind::NocOut => 8,
            TopologyKind::Mesh | TopologyKind::FlattenedButterfly => 64,
            TopologyKind::Crossbar | TopologyKind::Ideal => 16,
        };
        NocConfig {
            topology,
            cores: 64,
            llc_tiles,
            link_bits: 128,
            vc_depth: 5,
            tile_mm: 1.82,
            hub_cycles: 3,
        }
    }

    /// Returns a copy with a different link width (the Fig 4.8 equal-area
    /// study squeezes links until fabrics match NOC-Out's area).
    pub fn with_link_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0, "links must be at least one bit wide");
        self.link_bits = bits;
        self
    }

    /// Builds the topology graph for this configuration.
    pub fn build_topology(&self) -> Topology {
        match self.topology {
            TopologyKind::Mesh => {
                let (w, h) = near_square(self.cores);
                Topology::mesh(w, h, self.tile_mm)
            }
            TopologyKind::FlattenedButterfly => {
                let (w, h) = near_square(self.cores);
                Topology::flattened_butterfly(w, h, self.tile_mm)
            }
            TopologyKind::NocOut => Topology::noc_out(self.cores, self.llc_tiles, self.tile_mm),
            TopologyKind::Crossbar => Topology::crossbar(
                self.cores,
                self.llc_tiles,
                self.hub_cycles,
                (f64::from(self.cores)).sqrt() * self.tile_mm,
            ),
            TopologyKind::Ideal => Topology::ideal(self.cores, self.llc_tiles),
        }
    }
}

fn near_square(n: u32) -> (u32, u32) {
    let mut h = (n as f64).sqrt().floor() as u32;
    while h > 1 && !n.is_multiple_of(h) {
        h -= 1;
    }
    (n / h.max(1), h.max(1))
}

#[derive(Debug, Default)]
struct InputBuffer {
    queues: [VecDeque<Flit>; VCS],
}

#[derive(Debug)]
struct RouterState {
    /// One buffer per input port; the last entry is the injection port
    /// (endpoint nodes only).
    inputs: Vec<InputBuffer>,
    /// Credits toward each downstream input, per output port and VC.
    credits: Vec<[u32; VCS]>,
    /// Round-robin pointer per output port (+1 for the local/eject port).
    rr: Vec<usize>,
}

impl RouterState {
    /// Whether any input buffer still holds a flit.
    fn has_buffered_flits(&self) -> bool {
        self.inputs
            .iter()
            .any(|b| b.queues.iter().any(|q| !q.is_empty()))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    due: u64,
    node: usize,
    in_port: usize,
    flit: Flit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CreditReturn {
    due: u64,
    node: usize,
    out_port: usize,
    vc: usize,
}

// BinaryHeap is a max-heap; order events so earliest-due pops first.
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then(other.flit.packet.cmp(&self.flit.packet))
    }
}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CreditReturn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due)
    }
}
impl PartialOrd for CreditReturn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    src: usize,
    dst: usize,
    class: MessageClass,
    injected_at: u64,
    flits: u32,
    received: u32,
}

/// Causal timestamps collected for one traced packet: when its head
/// flit first won switch allocation (leaving the source's injection
/// queue) and when its tail flit reached the destination's input
/// buffer. Both stay `None` for hops the packet never took — a
/// self-injected packet bypasses the fabric entirely — and the span
/// decomposition in [`Network::take_packet_trace`] degrades gracefully.
#[derive(Debug, Clone, Copy, Default)]
struct PacketTrace {
    depart: Option<u64>,
    tail_arrived: Option<u64>,
}

/// One delivered packet's time split into the three NOC hop stages:
/// source queueing (`inject`), fabric traversal (`route`), and
/// destination ejection (`eject`). The three always sum exactly to
/// [`Delivered::latency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocSpans {
    /// Cycles the head flit waited at the source for link access.
    pub inject: u64,
    /// Head departure until the tail reached the destination buffer.
    pub route: u64,
    /// Tail arrival until the packet was fully ejected.
    pub eject: u64,
}

/// Aggregate traffic counters for power estimation, with per-message-class
/// breakdowns (indexed by [`MessageClass::vc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Total flit-hops through router switches.
    pub flit_hops: u64,
    /// Total flit-millimetres of wire traversed.
    pub flit_mm: f64,
    /// Total packets delivered.
    pub packets: u64,
    /// Sum of packet latencies (for averaging).
    pub total_latency: u64,
    /// Flit-hops per message class.
    pub class_flit_hops: [u64; VCS],
    /// Packets delivered per message class.
    pub class_packets: [u64; VCS],
    /// Latency sums per message class.
    pub class_latency: [u64; VCS],
}

impl TrafficCounters {
    /// Mean end-to-end packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets as f64
        }
    }

    /// Mean latency of one message class.
    pub fn class_mean_latency(&self, class: MessageClass) -> f64 {
        let vc = class.vc();
        if self.class_packets[vc] == 0 {
            0.0
        } else {
            self.class_latency[vc] as f64 / self.class_packets[vc] as f64
        }
    }

    /// Publishes these counters under `prefix` (e.g. `"noc."`):
    /// `<p>flit_hops`, `<p>flit_mm`, `<p>packets`, `<p>mean_latency`, and
    /// per-class `<p>class.<name>.{packets,flit_hops,mean_latency}`.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}flit_hops"), self.flit_hops);
        reg.gauge_set(&format!("{prefix}flit_mm"), self.flit_mm);
        reg.counter_add(&format!("{prefix}packets"), self.packets);
        reg.gauge_set(&format!("{prefix}mean_latency"), self.mean_latency());
        for class in MessageClass::ALL {
            let vc = class.vc();
            let name = class.key();
            reg.counter_add(
                &format!("{prefix}class.{name}.packets"),
                self.class_packets[vc],
            );
            reg.counter_add(
                &format!("{prefix}class.{name}.flit_hops"),
                self.class_flit_hops[vc],
            );
            reg.gauge_set(
                &format!("{prefix}class.{name}.mean_latency"),
                self.class_mean_latency(class),
            );
        }
    }

    /// Counter-wise difference against an earlier snapshot (for window
    /// deltas). Means are recomputed from the deltas by the callers.
    #[must_use]
    pub fn delta_since(&self, earlier: &TrafficCounters) -> TrafficCounters {
        let mut d = TrafficCounters {
            flit_hops: self.flit_hops - earlier.flit_hops,
            flit_mm: self.flit_mm - earlier.flit_mm,
            packets: self.packets - earlier.packets,
            total_latency: self.total_latency - earlier.total_latency,
            ..TrafficCounters::default()
        };
        for vc in 0..VCS {
            d.class_flit_hops[vc] = self.class_flit_hops[vc] - earlier.class_flit_hops[vc];
            d.class_packets[vc] = self.class_packets[vc] - earlier.class_packets[vc];
            d.class_latency[vc] = self.class_latency[vc] - earlier.class_latency[vc];
        }
        d
    }
}

/// A running network instance.
#[derive(Debug)]
pub struct Network {
    cfg: NocConfig,
    topo: Topology,
    routers: Vec<RouterState>,
    /// `(node, out_port)` -> (downstream node, downstream input port).
    link_dst: Vec<Vec<(usize, usize)>>,
    /// `(node, in_port)` -> (upstream node, upstream out_port), if any.
    link_src: Vec<Vec<Option<(usize, usize)>>>,
    arrivals: BinaryHeap<Arrival>,
    credit_returns: BinaryHeap<CreditReturn>,
    /// Per-packet state, indexed by [`PacketId`]. Slots retired by a step
    /// are reclaimed only at the *next* step, so between two steps a
    /// caller may key its own side tables by packet id without a
    /// delivered packet's index being reissued under it (see
    /// [`crate::slab::SideTable`]).
    packets: Slab<PacketMeta>,
    counters: TrafficCounters,
    /// Flits sent per (node, output port), for utilization analysis.
    channel_flits: Vec<Vec<u64>>,
    /// Nodes holding at least one buffered flit, ascending — the only
    /// routers switch allocation has to visit.
    worklist: Vec<usize>,
    /// `worklist` membership flags (including nodes pending insertion).
    is_active: Vec<bool>,
    /// Nodes activated since the last step, merged into `worklist` (and
    /// re-sorted) when the next step begins.
    pending_activation: Vec<usize>,
    /// Routers removed by faults. Empty on fault-free runs; routing
    /// tables (not per-flit checks) carry the effect, so the hot path
    /// never consults this.
    dead_routers: Vec<bool>,
    /// Directed channels removed by faults, as `(node, out_port)`.
    dead_links: Vec<(usize, usize)>,
    /// Hop timestamps for packets marked by [`Network::trace_packet`].
    /// `None` until [`Network::enable_packet_tracing`] arms it, so an
    /// untraced run pays exactly one pointer-null test per hook.
    trace: Option<Box<SideTable<PacketTrace>>>,
    cycle: u64,
}

impl Network {
    /// Builds a network from a configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let topo = cfg.build_topology();
        let n = topo.len();
        // Input port maps.
        let mut link_dst = vec![Vec::new(); n];
        let mut link_src: Vec<Vec<Option<(usize, usize)>>> = vec![Vec::new(); n];
        let mut in_count = vec![0usize; n];
        for (u, dsts) in link_dst.iter_mut().enumerate() {
            for (port, ch) in topo.channels[u].iter().enumerate() {
                let in_port = in_count[ch.to];
                in_count[ch.to] += 1;
                dsts.push((ch.to, in_port));
                while link_src[ch.to].len() <= in_port {
                    link_src[ch.to].push(None);
                }
                link_src[ch.to][in_port] = Some((u, port));
            }
        }
        let mut routers = Vec::with_capacity(n);
        for node in 0..n {
            // +1 injection pseudo-port on every node (harmless where unused).
            let inputs = (0..=in_count[node])
                .map(|_| InputBuffer::default())
                .collect();
            let out_ports = topo.channels[node].len();
            routers.push(RouterState {
                inputs,
                credits: vec![[cfg.vc_depth; VCS]; out_ports],
                rr: vec![0; out_ports + 1],
            });
            link_src[node].resize(in_count[node], None);
            let _ = node;
        }
        let channel_flits = (0..n).map(|u| vec![0u64; topo.channels[u].len()]).collect();
        Network {
            cfg,
            topo,
            routers,
            link_dst,
            link_src,
            arrivals: BinaryHeap::new(),
            credit_returns: BinaryHeap::new(),
            packets: Slab::new(),
            counters: TrafficCounters::default(),
            channel_flits,
            worklist: Vec::new(),
            is_active: vec![false; n],
            pending_activation: Vec::new(),
            dead_routers: vec![false; n],
            dead_links: Vec::new(),
            trace: None,
            cycle: 0,
        }
    }

    /// Arms per-packet hop tracing. Until a packet is marked with
    /// [`Network::trace_packet`] nothing is recorded; without arming,
    /// marking is a no-op and the hot path stays on its original branch.
    pub fn enable_packet_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Box::default());
        }
    }

    /// Marks an in-flight packet for hop tracing (no-op when tracing is
    /// not armed). Call between [`Network::inject`] and the packet's
    /// first step.
    pub fn trace_packet(&mut self, packet: PacketId) {
        if let Some(trace) = &mut self.trace {
            trace.insert(packet, PacketTrace::default());
        }
    }

    /// Consumes the hop timestamps of a delivered traced packet and
    /// returns its inject/route/eject span split, which sums exactly to
    /// `d.latency()`. Returns `None` for untraced packets. Must be
    /// called in the same inter-step window as the delivery (packet
    /// slots are reclaimed at the next step).
    pub fn take_packet_trace(&mut self, d: &Delivered) -> Option<NocSpans> {
        let t = self.trace.as_mut()?.remove(d.packet)?;
        // A self-injected packet never wins a fabric switch slot nor
        // crosses a link: both timestamps default so its whole latency
        // lands in the eject span.
        let depart = t
            .depart
            .unwrap_or(d.injected_at)
            .clamp(d.injected_at, d.delivered_at);
        let tail = t
            .tail_arrived
            .unwrap_or(d.delivered_at)
            .clamp(depart, d.delivered_at);
        Some(NocSpans {
            inject: depart - d.injected_at,
            route: tail - depart,
            eject: d.delivered_at - tail,
        })
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The underlying topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Nodes at which cores inject and eject.
    pub fn core_endpoints(&self) -> &[usize] {
        &self.topo.core_nodes
    }

    /// Nodes at which LLC tiles inject and eject.
    pub fn llc_endpoints(&self) -> &[usize] {
        &self.topo.llc_nodes
    }

    /// Traffic counters accumulated so far.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Utilization of every channel over `cycles` of simulated time:
    /// `(source node, output port, flits-per-cycle)`. A channel moves at
    /// most one flit per cycle, so values are in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn channel_utilization(&self, cycles: u64) -> Vec<(usize, usize, f64)> {
        assert!(cycles > 0, "need a non-empty window");
        let mut out = Vec::new();
        for (node, ports) in self.channel_flits.iter().enumerate() {
            for (port, &flits) in ports.iter().enumerate() {
                out.push((node, port, flits as f64 / cycles as f64));
            }
        }
        out
    }

    /// The hottest channel and its utilization — congestion diagnosis for
    /// the §4.4.1 "networks are not congested" check.
    pub fn max_channel_utilization(&self, cycles: u64) -> f64 {
        self.channel_utilization(cycles)
            .into_iter()
            .map(|(_, _, u)| u)
            .fold(0.0, f64::max)
    }

    /// Injects a packet of `class` from node `src` to node `dst` at
    /// `cycle`, returning its id. The packet's flit count follows the
    /// class payload and the configured link width. Injecting to `src`
    /// itself is allowed (a core talking to its own tile's LLC slice) and
    /// delivers through the local port without touching the fabric.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn inject(
        &mut self,
        src: usize,
        dst: usize,
        class: MessageClass,
        _weight: u32,
        cycle: u64,
    ) -> PacketId {
        assert!(
            src < self.topo.len() && dst < self.topo.len(),
            "node out of range"
        );
        let flits = class.flits(self.cfg.link_bits);
        let id = self.packets.insert(PacketMeta {
            src,
            dst,
            class,
            injected_at: cycle,
            flits,
            received: 0,
        });
        let inj_port = self.routers[src].inputs.len() - 1;
        for f in 0..flits {
            self.routers[src].inputs[inj_port].queues[class.vc()].push_back(Flit {
                packet: id,
                class,
                dst,
                is_head: f == 0,
                is_tail: f == flits - 1,
            });
        }
        self.activate(src);
        id
    }

    /// Number of packets injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Marks a node as holding buffered flits, queueing it for the next
    /// step's worklist merge.
    fn activate(&mut self, node: usize) {
        if !self.is_active[node] {
            self.is_active[node] = true;
            self.pending_activation.push(node);
        }
    }

    /// Whether any input buffer of `node` still holds a flit.
    fn has_buffered_flits(&self, node: usize) -> bool {
        self.routers[node].has_buffered_flits()
    }

    /// The earliest future cycle at which [`Network::step`] could do any
    /// work, or `None` while the fabric is guaranteed to stay inert.
    ///
    /// Any buffered flit means switch allocation must run next cycle; an
    /// otherwise-empty fabric sleeps until its next in-flight arrival.
    /// Pending credit returns alone never wake the network: with no
    /// buffered flits there is nothing a credit could unblock, and a
    /// later step restores every credit due by then before allocating
    /// the switch, so skipping over them is exact.
    pub fn next_event_cycle(&self) -> Option<u64> {
        if !self.worklist.is_empty() || !self.pending_activation.is_empty() {
            return Some(self.cycle + 1);
        }
        self.arrivals.peek().map(|a| a.due.max(self.cycle + 1))
    }

    /// Advances the network to `cycle` (which must be monotonically
    /// increasing) and returns the packets fully delivered during it.
    ///
    /// Only *active* routers — those holding buffered flits — are swept
    /// by switch allocation; an idle router has nothing to arbitrate, so
    /// skipping it is exact. Callers that advance time themselves can
    /// consult [`Network::next_event_cycle`] and jump over idle spans.
    pub fn step(&mut self, cycle: u64) -> Vec<Delivered> {
        self.step_inner(cycle, false)
    }

    /// [`Network::step`] sweeping *every* router, active or not: the
    /// pre-worklist reference semantics, bit-identical by construction.
    /// Equivalence tests drive one network with `step` and one with
    /// `step_full` and assert the outputs match.
    pub fn step_full(&mut self, cycle: u64) -> Vec<Delivered> {
        self.step_inner(cycle, true)
    }

    fn step_inner(&mut self, cycle: u64, sweep_all: bool) -> Vec<Delivered> {
        assert!(cycle >= self.cycle, "cycles must not go backwards");
        self.cycle = cycle;
        // Packet slots retired by the previous step become reusable now
        // that the caller has had a full inter-step window to finish its
        // side-table bookkeeping for those deliveries.
        self.packets.reclaim_deferred();
        // 1. Credits that have returned upstream.
        while let Some(cr) = self.credit_returns.peek() {
            if cr.due > cycle {
                break;
            }
            let cr = self.credit_returns.pop().expect("peeked");
            self.routers[cr.node].credits[cr.out_port][cr.vc] += 1;
        }
        // 2. Flits arriving at input buffers.
        while let Some(a) = self.arrivals.peek() {
            if a.due > cycle {
                break;
            }
            let a = self.arrivals.pop().expect("peeked");
            if let Some(trace) = &mut self.trace {
                // A traced packet's tail reaching its destination's input
                // buffer ends the route span; later re-deliveries of the
                // timestamp are impossible (the tail arrives once).
                if a.flit.is_tail && a.node == a.flit.dst {
                    if let Some(t) = trace.get_mut(a.flit.packet) {
                        t.tail_arrived.get_or_insert(cycle);
                    }
                }
            }
            self.routers[a.node].inputs[a.in_port].queues[a.flit.class.vc()].push_back(a.flit);
            self.activate(a.node);
        }
        // 3. Switch allocation: one flit per output port per active node,
        // visited in ascending node order — the same relative order as a
        // full 0..n sweep, so delivery order is unchanged.
        if !self.pending_activation.is_empty() {
            let mut pending = std::mem::take(&mut self.pending_activation);
            self.worklist.append(&mut pending);
            self.worklist.sort_unstable();
        }
        let mut delivered = Vec::new();
        let worklist = std::mem::take(&mut self.worklist);
        let full_sweep: Vec<usize>;
        let sweep: &[usize] = if sweep_all {
            full_sweep = (0..self.topo.len()).collect();
            &full_sweep
        } else {
            &worklist
        };
        {
            let mut sink = InlineSink {
                arrivals: &mut self.arrivals,
                credit_returns: &mut self.credit_returns,
                packets: &mut self.packets,
                counters: &mut self.counters,
                trace: &mut self.trace,
                delivered: &mut delivered,
            };
            for &node in sweep {
                sweep_node(
                    &mut self.routers[node],
                    &mut self.channel_flits[node],
                    node,
                    &self.topo,
                    &self.link_src[node],
                    &self.link_dst[node],
                    cycle,
                    &mut sink,
                );
            }
        }
        // Drop drained routers from the worklist (buffers only empty
        // during the sweep, so this is the one place nodes retire).
        self.worklist = worklist;
        let mut retained = 0;
        for i in 0..self.worklist.len() {
            let node = self.worklist[i];
            if self.has_buffered_flits(node) {
                self.worklist[retained] = node;
                retained += 1;
            } else {
                self.is_active[node] = false;
            }
        }
        self.worklist.truncate(retained);
        delivered
    }

    /// Runs the network until idle or `max_cycles`, returning deliveries.
    /// Idle spans between in-flight arrivals are skipped outright, which
    /// changes nothing observable: skipped cycles are exactly those where
    /// a step would have found no work.
    pub fn drain(&mut self, max_cycles: u64) -> Vec<Delivered> {
        let mut out = Vec::new();
        let end = self.cycle + max_cycles;
        while let Some(next) = self.next_event_cycle() {
            if next > end {
                break;
            }
            out.extend(self.step(next));
            if self.packets.is_empty() && self.arrivals.is_empty() {
                break;
            }
        }
        out
    }

    /// Fault operations must run on an idle fabric: routing tables are
    /// rewritten wholesale, and a flit already committed to a removed
    /// channel would be silently re-aimed (or stranded) mid-flight. The
    /// machine layer quiesces (stops issuing, drains) before applying a
    /// fault, so this only fires on a sequencing bug.
    /// (In-flight credit returns are fine: credits reference channel
    /// structures, which faults disable in the routing tables but never
    /// remove.)
    fn assert_idle_for_fault(&self, what: &str) {
        assert!(
            self.packets.is_empty() && self.arrivals.is_empty(),
            "{what} requires an idle fabric ({} packets in flight)",
            self.packets.len()
        );
    }

    fn reroute(&mut self) -> RouteHealth {
        let dead = std::mem::take(&mut self.dead_routers);
        let links = std::mem::take(&mut self.dead_links);
        let health = self.topo.reroute(&dead, |u, p| links.contains(&(u, p)));
        self.dead_routers = dead;
        self.dead_links = links;
        health
    }

    /// Removes router `node` from the fabric: nothing routes to, from, or
    /// through it again. Returns the surviving fabric's reachability.
    /// Idempotent. Must be called on an idle fabric.
    pub fn fail_router(&mut self, node: usize) -> RouteHealth {
        self.assert_idle_for_fault("fail_router");
        self.dead_routers[node] = true;
        self.reroute()
    }

    /// Removes the directed channel at `(node, out_port)`; traffic takes
    /// a deterministic detour where one exists. Idle fabric only.
    pub fn fail_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("fail_link");
        assert!(port < self.topo.channels[node].len(), "no such port");
        if !self.dead_links.contains(&(node, port)) {
            self.dead_links.push((node, port));
        }
        self.reroute()
    }

    /// Restores a previously failed link (an intermittent fault ending
    /// its down window). Idle fabric only.
    pub fn restore_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("restore_link");
        self.dead_links.retain(|&l| l != (node, port));
        self.reroute()
    }

    /// Degrades router `node`: +2 pipeline stages (a faulty stage retimed
    /// with spares). Routes shift away from it where a cheaper detour
    /// exists. Idle fabric only.
    pub fn degrade_router(&mut self, node: usize) -> RouteHealth {
        self.assert_idle_for_fault("degrade_router");
        self.topo.pipeline[node] += 2;
        self.reroute()
    }

    /// Degrades the channel at `(node, out_port)`: flight latency doubles
    /// (half-width operation after a lane failure). Idle fabric only.
    pub fn degrade_link(&mut self, node: usize, port: usize) -> RouteHealth {
        self.assert_idle_for_fault("degrade_link");
        let ch = &mut self.topo.channels[node][port];
        ch.latency = ch.latency.saturating_mul(2);
        self.reroute()
    }

    /// Whether router `node` has been removed by a fault.
    pub fn router_is_dead(&self, node: usize) -> bool {
        self.dead_routers[node]
    }
}

/// Picks the input (port, vc) that wins output `out` at `node` this
/// cycle: highest VC (class priority) first, round-robin among ports.
/// Touches only the node's own router state (plus the read-only
/// topology), which is what lets the parallel sweep arbitrate domains
/// concurrently.
fn pick_input(
    router: &mut RouterState,
    topo: &Topology,
    node: usize,
    out: usize,
) -> Option<(usize, usize)> {
    let out_ports = topo.channels[node].len();
    let is_local = out == out_ports;
    let n_inputs = router.inputs.len();
    let rr = router.rr[out];
    for vc in (0..VCS).rev() {
        if !is_local && router.credits[out][vc] == 0 {
            continue;
        }
        for i in 0..n_inputs {
            let in_port = (rr + i) % n_inputs;
            let head = router.inputs[in_port].queues[vc].front();
            let Some(flit) = head else { continue };
            let want_local = flit.dst == node;
            if want_local != is_local {
                continue;
            }
            if !is_local && topo.next_hop[node][flit.dst] != out {
                continue;
            }
            router.rr[out] = (in_port + 1) % n_inputs;
            return Some((in_port, vc));
        }
    }
    None
}

/// Books one ejected flit into the packet slab and traffic counters,
/// returning the delivery when it was the packet's last flit. Shared by
/// the sequential sweep (inline) and the parallel merge (replayed in
/// canonical order), so both engines run the identical bookkeeping.
fn eject_flit(
    packets: &mut Slab<PacketMeta>,
    counters: &mut TrafficCounters,
    node: usize,
    flit: Flit,
    cycle: u64,
) -> Option<Delivered> {
    let meta = packets.get_mut(flit.packet).expect("packet meta exists");
    meta.received += 1;
    if meta.received == meta.flits {
        // Deferred: the slot stays unissuable until the next step so
        // callers can key side tables by packet index across the
        // inter-step delivery-processing window.
        let meta = packets.remove_deferred(flit.packet).expect("just seen");
        debug_assert_eq!(meta.dst, node);
        counters.packets += 1;
        counters.total_latency += cycle - meta.injected_at;
        counters.class_packets[meta.class.vc()] += 1;
        counters.class_latency[meta.class.vc()] += cycle - meta.injected_at;
        Some(Delivered {
            packet: flit.packet,
            class: meta.class,
            src: meta.src,
            dst: meta.dst,
            injected_at: meta.injected_at,
            delivered_at: cycle,
        })
    } else {
        None
    }
}

/// Where one node's switch-allocation sweep writes its effects. The
/// sequential engine applies them to the network in place; a parallel
/// domain records them into private scratch and the merge replays them
/// in canonical order — both run the *same* arbitration code
/// ([`sweep_node`]), so the two engines cannot drift apart.
trait SweepSink {
    /// A flit won switch allocation (the packet-trace depart hook).
    fn departed(&mut self, flit: &Flit, cycle: u64);
    /// A credit is owed to the upstream router feeding the freed buffer.
    fn credit(&mut self, cr: CreditReturn);
    /// A flit left through the local port at its destination.
    fn eject(&mut self, node: usize, flit: Flit, cycle: u64);
    /// A flit was forwarded over `length_mm` of wire toward `arrival`.
    fn forwarded(&mut self, length_mm: f64, arrival: Arrival);
}

/// One node's switch allocation for one cycle: at most one flit per
/// output port (local ejection is pseudo-port `out_ports`), class
/// priority then round-robin. Mutates only the node's own router state
/// and channel-flit row; every cross-node effect goes through the sink.
#[allow(clippy::too_many_arguments)]
fn sweep_node<S: SweepSink>(
    router: &mut RouterState,
    channel_flits: &mut [u64],
    node: usize,
    topo: &Topology,
    link_src: &[Option<(usize, usize)>],
    link_dst: &[(usize, usize)],
    cycle: u64,
    sink: &mut S,
) {
    let out_ports = topo.channels[node].len();
    for out in 0..=out_ports {
        if let Some((in_port, vc)) = pick_input(router, topo, node, out) {
            let flit = router.inputs[in_port].queues[vc]
                .pop_front()
                .expect("picked head exists");
            sink.departed(&flit, cycle);
            // Return a credit to the upstream router feeding this
            // input buffer (injection ports have no upstream).
            if let Some(Some((u, uport))) = link_src.get(in_port).copied() {
                let latency = topo.channels[u][uport].latency;
                sink.credit(CreditReturn {
                    due: cycle + u64::from(latency),
                    node: u,
                    out_port: uport,
                    vc,
                });
            }
            if out == out_ports {
                // Ejected at the destination.
                sink.eject(node, flit, cycle);
            } else {
                let ch = topo.channels[node][out];
                let (to, to_in) = link_dst[out];
                router.credits[out][vc] -= 1;
                channel_flits[out] += 1;
                sink.forwarded(
                    ch.length_mm,
                    Arrival {
                        due: cycle + u64::from(topo.pipeline[node]) + u64::from(ch.latency),
                        node: to,
                        in_port: to_in,
                        flit,
                    },
                );
            }
        }
    }
}

/// The sequential sink: effects land on the live network immediately,
/// exactly as the pre-refactor inline code did.
struct InlineSink<'a> {
    arrivals: &'a mut BinaryHeap<Arrival>,
    credit_returns: &'a mut BinaryHeap<CreditReturn>,
    packets: &'a mut Slab<PacketMeta>,
    counters: &'a mut TrafficCounters,
    trace: &'a mut Option<Box<SideTable<PacketTrace>>>,
    delivered: &'a mut Vec<Delivered>,
}

impl SweepSink for InlineSink<'_> {
    fn departed(&mut self, flit: &Flit, cycle: u64) {
        if let Some(trace) = self.trace {
            // A traced head flit's *first* switch win is at the source
            // (later hops happen at later cycles), ending the inject
            // span.
            if flit.is_head {
                if let Some(t) = trace.get_mut(flit.packet) {
                    t.depart.get_or_insert(cycle);
                }
            }
        }
    }

    fn credit(&mut self, cr: CreditReturn) {
        self.credit_returns.push(cr);
    }

    fn eject(&mut self, node: usize, flit: Flit, cycle: u64) {
        if let Some(d) = eject_flit(self.packets, self.counters, node, flit, cycle) {
            self.delivered.push(d);
        }
    }

    fn forwarded(&mut self, length_mm: f64, arrival: Arrival) {
        self.counters.flit_hops += 1;
        self.counters.flit_mm += length_mm;
        self.counters.class_flit_hops[arrival.flit.class.vc()] += 1;
        self.arrivals.push(arrival);
    }
}

/// One domain's inter-domain mailbox: everything its sweep produced,
/// recorded in sweep order (ascending node, then output port). The
/// merge drains scratches in ascending domain order — which, with
/// contiguous domains, is exactly ascending node order, i.e. the
/// sequential engine's own effect order.
#[derive(Debug, Default)]
struct DomainScratch {
    /// Forwarded flits' future arrivals (intra- and cross-domain alike;
    /// both are due strictly after this cycle, so both route through
    /// the global heap exactly as in the sequential engine).
    arrivals: Vec<Arrival>,
    /// Credits owed upstream (the upstream router may be any domain's;
    /// credits are applied from the heap, never directly).
    credits: Vec<CreditReturn>,
    /// Flits ejected at their destinations, in sweep order. Slab and
    /// counter bookkeeping is deferred to the merge so the sweep never
    /// touches shared packet state.
    ejected: Vec<Flit>,
    /// Individual wire-length addends, replayed one by one at the merge:
    /// summing per domain first would reassociate the floating-point
    /// fold and break bit-identity with the sequential engine.
    flit_mm: Vec<f64>,
    flit_hops: u64,
    class_flit_hops: [u64; VCS],
    /// Swept nodes still holding flits, ascending.
    retained: Vec<usize>,
    /// Host nanoseconds this domain's sweeps have cost (profiling only).
    work_ns: u64,
}

/// The parallel sink: every effect is recorded into the domain's
/// private scratch; nothing shared is touched during the sweep.
struct ParSink<'a> {
    scratch: &'a mut DomainScratch,
}

impl SweepSink for ParSink<'_> {
    fn departed(&mut self, _flit: &Flit, _cycle: u64) {
        // Packet tracing is never armed on the parallel path (the
        // machine layer falls back to the sequential engine for traced
        // runs), so there is nothing to record.
    }

    fn credit(&mut self, cr: CreditReturn) {
        self.scratch.credits.push(cr);
    }

    fn eject(&mut self, node: usize, flit: Flit, _cycle: u64) {
        debug_assert_eq!(flit.dst, node, "ejection only happens at dst");
        self.scratch.ejected.push(flit);
    }

    fn forwarded(&mut self, length_mm: f64, arrival: Arrival) {
        self.scratch.flit_hops += 1;
        self.scratch.flit_mm.push(length_mm);
        self.scratch.class_flit_hops[arrival.flit.class.vc()] += 1;
        self.scratch.arrivals.push(arrival);
    }
}

/// Per-domain mutable state handed to one pool task. The slices are
/// disjoint views over the network's per-node vectors (contiguous
/// domains make the split a plain `split_at_mut` chain).
struct DomainCtx<'a> {
    base: usize,
    routers: &'a mut [RouterState],
    channel_flits: &'a mut [Vec<u64>],
    is_active: &'a mut [bool],
    /// This domain's slice of the (sorted) worklist.
    nodes: &'a [usize],
    scratch: &'a mut DomainScratch,
}

/// Reusable state of the domain-parallel network engine: the partition,
/// its lookahead bound, and per-domain scratch buffers. Built once per
/// machine by [`Network::make_par`] and threaded into every
/// [`Network::step_parallel`] call.
#[derive(Debug)]
pub struct NetPar {
    partition: DomainPartition,
    /// Min cut-link latency `W` (`u64::MAX` when no link crosses a
    /// cut). The per-tick barrier satisfies any `W >= 1`.
    lookahead: u64,
    scratch: Vec<DomainScratch>,
    /// Cumulative per-domain sweep nanoseconds (accumulated only while
    /// `measure` is passed to `step_parallel`).
    domain_ns: Vec<u64>,
}

impl NetPar {
    /// Number of domains the fabric is sharded into.
    pub fn domains(&self) -> usize {
        self.partition.domains()
    }

    /// The conservative lookahead window `W` in cycles: no domain can
    /// affect another sooner than `W` cycles out. `u64::MAX` when the
    /// domains share no links at all.
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// Cumulative measured sweep nanoseconds per domain.
    pub fn domain_ns(&self) -> &[u64] {
        &self.domain_ns
    }

    /// Resets the per-domain timers (window exports are deltas).
    pub fn reset_domain_ns(&mut self) {
        self.domain_ns.iter_mut().for_each(|ns| *ns = 0);
    }
}

impl Network {
    /// Builds the domain decomposition for running this network's sweep
    /// on `domains` parallel tasks, or `None` when the fabric is too
    /// small to shard meaningfully (fewer than four nodes per domain,
    /// or fewer than two domains). The decomposition never changes
    /// results — only which thread arbitrates which routers.
    pub fn make_par(&self, domains: usize) -> Option<NetPar> {
        let n = self.topo.len();
        let domains = domains.min(n / 4);
        if domains < 2 {
            return None;
        }
        let partition = DomainPartition::new(n, domains);
        let w = lookahead(&self.topo, &partition).unwrap_or(u64::MAX);
        // The per-tick exchange barrier is sound for any window of at
        // least one cycle; every channel takes at least one cycle, so
        // this only fires if a zero-latency channel is ever introduced.
        assert!(
            w >= 1,
            "lookahead requires every cut link to take >=1 cycle"
        );
        let domains = partition.domains();
        Some(NetPar {
            partition,
            lookahead: w,
            scratch: (0..domains).map(|_| DomainScratch::default()).collect(),
            domain_ns: vec![0; domains],
        })
    }

    /// [`Network::step`] with the switch-allocation sweep sharded across
    /// `par`'s domains on `pool`. Bit-identical to the sequential step:
    /// the sweep itself only reads/writes node-local router state (the
    /// same arbitration code via [`sweep_node`]), every cross-node
    /// effect is recorded per domain and replayed at the per-tick
    /// barrier in canonical `(cycle, src domain, sweep order)` order —
    /// which, with contiguous domains, is exactly the sequential
    /// engine's ascending-node effect order. Heap insertion order for
    /// equal keys is the only thing that can differ, and equal-key heap
    /// entries are interchangeable: same-due arrivals always target
    /// distinct `(node, port)` buffers, and credit applications
    /// commute.
    ///
    /// Returns the deliveries plus the nanoseconds the calling thread
    /// stalled at the exchange barrier. `measure` additionally charges
    /// per-domain sweep time to [`NetPar::domain_ns`].
    ///
    /// Must not be called with packet tracing armed (the machine layer
    /// keeps traced runs on the sequential engine).
    pub fn step_parallel(
        &mut self,
        cycle: u64,
        par: &mut NetPar,
        pool: &DomainPool,
        measure: bool,
    ) -> (Vec<Delivered>, u64) {
        assert!(
            self.trace.is_none(),
            "parallel stepping does not support packet tracing"
        );
        assert!(cycle >= self.cycle, "cycles must not go backwards");
        self.cycle = cycle;
        self.packets.reclaim_deferred();
        // 1. + 2. Credits and arrivals land exactly as in `step_inner`
        // — sequentially, before any domain starts sweeping, so every
        // domain sees the same pre-sweep state the sequential engine
        // would.
        while let Some(cr) = self.credit_returns.peek() {
            if cr.due > cycle {
                break;
            }
            let cr = self.credit_returns.pop().expect("peeked");
            self.routers[cr.node].credits[cr.out_port][cr.vc] += 1;
        }
        while let Some(a) = self.arrivals.peek() {
            if a.due > cycle {
                break;
            }
            let a = self.arrivals.pop().expect("peeked");
            self.routers[a.node].inputs[a.in_port].queues[a.flit.class.vc()].push_back(a.flit);
            self.activate(a.node);
        }
        // 3. Switch allocation, sharded: each domain sweeps its slice of
        // the sorted worklist against its own router range.
        if !self.pending_activation.is_empty() {
            let mut pending = std::mem::take(&mut self.pending_activation);
            self.worklist.append(&mut pending);
            self.worklist.sort_unstable();
        }
        let worklist = std::mem::take(&mut self.worklist);
        let stall_ns;
        {
            let domains = par.partition.domains();
            let mut ctxs: Vec<Mutex<DomainCtx>> = Vec::with_capacity(domains);
            let mut routers: &mut [RouterState] = &mut self.routers;
            let mut channel_flits: &mut [Vec<u64>] = &mut self.channel_flits;
            let mut is_active: &mut [bool] = &mut self.is_active;
            let mut nodes: &[usize] = &worklist;
            for (d, scratch) in par.scratch.iter_mut().enumerate() {
                let range = par.partition.range(d);
                let len = range.len();
                let (r, rest) = routers.split_at_mut(len);
                let (c, rest_c) = channel_flits.split_at_mut(len);
                let (a, rest_a) = is_active.split_at_mut(len);
                routers = rest;
                channel_flits = rest_c;
                is_active = rest_a;
                let split = nodes.partition_point(|&n| n < range.end);
                let (mine, rest_n) = nodes.split_at(split);
                nodes = rest_n;
                ctxs.push(Mutex::new(DomainCtx {
                    base: range.start,
                    routers: r,
                    channel_flits: c,
                    is_active: a,
                    nodes: mine,
                    scratch,
                }));
            }
            let topo = &self.topo;
            let link_src = &self.link_src;
            let link_dst = &self.link_dst;
            stall_ns = pool.run(domains, &|d| {
                let mut ctx = ctxs[d].lock().expect("domain ctx is uncontended");
                let started = measure.then(Instant::now);
                let ctx = &mut *ctx;
                for &node in ctx.nodes {
                    let local = node - ctx.base;
                    let mut sink = ParSink {
                        scratch: ctx.scratch,
                    };
                    sweep_node(
                        &mut ctx.routers[local],
                        &mut ctx.channel_flits[local],
                        node,
                        topo,
                        &link_src[node],
                        &link_dst[node],
                        cycle,
                        &mut sink,
                    );
                }
                // Retire drained nodes. Buffers only change under this
                // domain's own sweep (arrivals land between steps), so
                // retention is as local as arbitration.
                for &node in ctx.nodes {
                    let local = node - ctx.base;
                    if ctx.routers[local].has_buffered_flits() {
                        ctx.scratch.retained.push(node);
                    } else {
                        ctx.is_active[local] = false;
                    }
                }
                if let Some(t) = started {
                    ctx.scratch.work_ns += t.elapsed().as_nanos() as u64;
                }
            });
        }
        // 4. Exchange barrier: replay every domain's recorded effects in
        // ascending domain order — the sequential engine's own node
        // order — so deliveries, counters, the flit-mm float fold, and
        // the rebuilt worklist are all bit-identical to `step_inner`.
        let mut delivered = Vec::new();
        self.worklist = worklist;
        self.worklist.clear();
        for (d, scratch) in par.scratch.iter_mut().enumerate() {
            self.counters.flit_hops += scratch.flit_hops;
            scratch.flit_hops = 0;
            for vc in 0..VCS {
                self.counters.class_flit_hops[vc] += scratch.class_flit_hops[vc];
            }
            scratch.class_flit_hops = [0; VCS];
            for mm in scratch.flit_mm.drain(..) {
                self.counters.flit_mm += mm;
            }
            for flit in scratch.ejected.drain(..) {
                if let Some(del) =
                    eject_flit(&mut self.packets, &mut self.counters, flit.dst, flit, cycle)
                {
                    delivered.push(del);
                }
            }
            for a in scratch.arrivals.drain(..) {
                self.arrivals.push(a);
            }
            for cr in scratch.credits.drain(..) {
                self.credit_returns.push(cr);
            }
            // Per-domain retained lists are ascending and domains are
            // contiguous, so plain concatenation keeps the worklist
            // sorted.
            self.worklist.append(&mut scratch.retained);
            par.domain_ns[d] += scratch.work_ns;
            scratch.work_ns = 0;
        }
        (delivered, stall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identical random traffic driven through the sequential engine and
    /// the domain-parallel engine must produce identical deliveries
    /// every cycle and identical counters — including the bit pattern of
    /// the floating-point flit-mm fold — on every pod fabric.
    #[test]
    fn parallel_step_is_bit_identical_to_sequential() {
        let pool = DomainPool::new(3);
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::FlattenedButterfly,
            TopologyKind::NocOut,
            TopologyKind::Crossbar,
        ] {
            let cfg = NocConfig::pod_64(kind);
            let mut seq = Network::new(cfg);
            let mut shard = Network::new(cfg);
            let mut par = shard.make_par(4).expect("64-core pods shard");
            assert!(par.lookahead() >= 1);
            let cores = seq.core_endpoints().to_vec();
            let llcs = seq.llc_endpoints().to_vec();
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for cycle in 0..500u64 {
                if cycle % 3 == 0 && cycle < 420 {
                    for _ in 0..2 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let src = cores[(state >> 33) as usize % cores.len()];
                        let dst = llcs[(state >> 17) as usize % llcs.len()];
                        let class = MessageClass::ALL[(state >> 7) as usize % 3];
                        let a = seq.inject(src, dst, class, 0, cycle);
                        let b = shard.inject(src, dst, class, 0, cycle);
                        assert_eq!(a, b, "{kind:?}: packet ids diverged");
                    }
                }
                let a = seq.step(cycle);
                let (b, _stall) = shard.step_parallel(cycle, &mut par, &pool, false);
                assert_eq!(a, b, "{kind:?}: deliveries diverged at cycle {cycle}");
            }
            assert_eq!(seq.in_flight(), shard.in_flight(), "{kind:?}");
            assert_eq!(seq.counters(), shard.counters(), "{kind:?}");
            assert_eq!(
                seq.counters().flit_mm.to_bits(),
                shard.counters().flit_mm.to_bits(),
                "{kind:?}: flit-mm fold reassociated"
            );
        }
    }

    fn run_single(kind: TopologyKind, class: MessageClass) -> u64 {
        let mut net = Network::new(NocConfig::pod_64(kind));
        let src = net.core_endpoints()[0];
        let dst = *net.llc_endpoints().last().expect("has llc endpoints");
        net.inject(src, dst, class, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        done[0].latency()
    }

    #[test]
    fn single_request_latency_tracks_zero_load() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::FlattenedButterfly,
            TopologyKind::NocOut,
        ] {
            let cfg = NocConfig::pod_64(kind);
            let net = Network::new(cfg);
            let src = net.core_endpoints()[0];
            let dst = *net.llc_endpoints().last().expect("has llc");
            let zero_load = net.topology().zero_load_latency(src, dst);
            let measured = run_single(kind, MessageClass::Request);
            // Measured = zero-load + injection + ejection cycles.
            assert!(
                measured >= u64::from(zero_load) && measured <= u64::from(zero_load) + 4,
                "{kind:?}: measured {measured} vs zero-load {zero_load}"
            );
        }
    }

    #[test]
    fn traced_packet_spans_sum_to_latency() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        let src = net.core_endpoints()[0];
        let dst = *net.llc_endpoints().last().expect("has llc endpoints");
        let id = net.inject(src, dst, MessageClass::Response, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        let spans = net.take_packet_trace(&done[0]).expect("traced");
        assert_eq!(
            spans.inject + spans.route + spans.eject,
            done[0].latency(),
            "{spans:?}"
        );
        assert!(spans.route > 0, "multi-hop trip crosses the fabric");
        assert_eq!(net.take_packet_trace(&done[0]), None, "consumed");
    }

    #[test]
    fn self_injection_attributes_everything_to_ejection() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        let node = net.core_endpoints()[0];
        let id = net.inject(node, node, MessageClass::Request, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        let spans = net.take_packet_trace(&done[0]).expect("traced");
        assert_eq!(spans.inject + spans.route + spans.eject, done[0].latency());
        assert_eq!(spans.route, 0, "never touched the fabric: {spans:?}");
    }

    #[test]
    fn untraced_packets_yield_no_spans() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[0];
        // Not armed: marking is a no-op, delivery yields nothing.
        let id = net.inject(src, dst, MessageClass::Request, 0, 0);
        net.trace_packet(id);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(net.take_packet_trace(&done[0]), None);
        // Armed but unmarked packets also stay invisible.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.enable_packet_tracing();
        net.inject(src, dst, MessageClass::Request, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(net.take_packet_trace(&done[0]), None);
    }

    #[test]
    fn responses_pay_serialization() {
        let req = run_single(TopologyKind::Mesh, MessageClass::Request);
        let resp = run_single(TopologyKind::Mesh, MessageClass::Response);
        // A 5-flit response's tail trails the head by 4 cycles.
        assert_eq!(resp, req + 4);
    }

    #[test]
    fn narrow_links_stretch_responses() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh).with_link_bits(32));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Response, 0, 0);
        let done = net.drain(10_000);
        let wide = run_single(TopologyKind::Mesh, MessageClass::Response);
        assert!(done[0].latency() > wide + 10);
    }

    #[test]
    fn all_packets_are_delivered_under_load() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::NocOut));
        let cores: Vec<usize> = net.core_endpoints().to_vec();
        let llcs: Vec<usize> = net.llc_endpoints().to_vec();
        let mut expected = 0;
        for cycle in 0..120u64 {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + i).is_multiple_of(7) {
                    let dst = llcs[(i * 31 + cycle as usize) % llcs.len()];
                    net.inject(c, dst, MessageClass::Request, 0, cycle);
                    expected += 1;
                }
            }
            net.step(cycle);
        }
        let mut got = net.counters().packets;
        let done = net.drain(50_000);
        got += done.len() as u64;
        // counters().packets already includes drained ones; recompute:
        let total = net.counters().packets;
        assert_eq!(total, expected, "lost packets: {got}");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn responses_beat_requests_under_contention() {
        // Saturate one LLC tile with requests, then send a response
        // through the same column: the response's VC has priority.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let dst = net.llc_endpoints()[0];
        for src in net.core_endpoints().to_vec() {
            if src != dst {
                net.inject(src, dst, MessageClass::Request, 0, 0);
            }
        }
        let far = net.core_endpoints()[63];
        let resp = net.inject(far, dst, MessageClass::Response, 0, 0);
        let done = net.drain(100_000);
        let resp_done = done.iter().find(|d| d.packet == resp).expect("delivered");
        let worst_req = done
            .iter()
            .filter(|d| d.class == MessageClass::Request)
            .map(Delivered::latency)
            .max()
            .expect("requests delivered");
        assert!(resp_done.latency() < worst_req);
    }

    #[test]
    fn counters_accumulate() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.drain(1000);
        let c = net.counters();
        assert_eq!(c.packets, 1);
        assert_eq!(c.flit_hops, 14); // corner-to-corner hop count
        assert!(c.flit_mm > 0.0);
        assert!(c.mean_latency() > 0.0);
    }

    #[test]
    fn per_class_counters_partition_the_totals() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.inject(dst, src, MessageClass::Response, 0, 0);
        net.inject(dst, src, MessageClass::SnoopRequest, 0, 0);
        net.drain(10_000);
        let c = net.counters();
        assert_eq!(c.class_packets.iter().sum::<u64>(), c.packets);
        assert_eq!(c.class_flit_hops.iter().sum::<u64>(), c.flit_hops);
        assert_eq!(c.class_latency.iter().sum::<u64>(), c.total_latency);
        assert_eq!(c.class_packets[MessageClass::Request.vc()], 1);
        // Responses are 5 flits on 128-bit links, requests 1.
        assert_eq!(
            c.class_flit_hops[MessageClass::Response.vc()],
            5 * c.class_flit_hops[MessageClass::Request.vc()]
        );
        assert!(c.class_mean_latency(MessageClass::Response) > 0.0);
    }

    #[test]
    fn counters_export_named_metrics() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let src = net.core_endpoints()[0];
        let dst = net.llc_endpoints()[63];
        net.inject(src, dst, MessageClass::Request, 0, 0);
        net.drain(1000);
        let before = net.counters();
        net.inject(src, dst, MessageClass::Response, 0, net.counters().packets);
        net.drain(1000);
        let mut reg = sop_obs::Registry::new();
        net.counters()
            .delta_since(&before)
            .export_metrics(&mut reg, "noc.");
        assert_eq!(reg.counter("noc.packets"), 1);
        assert_eq!(reg.counter("noc.class.response.packets"), 1);
        assert_eq!(reg.counter("noc.class.request.packets"), 0);
        assert!(reg.gauge("noc.mean_latency").expect("gauge") > 0.0);
    }

    #[test]
    fn channel_utilization_is_bounded_and_finds_hot_links() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let cores = net.core_endpoints().to_vec();
        let dst = net.llc_endpoints()[27]; // a central tile
        let horizon = 3_000u64;
        for cycle in 0..horizon {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + i).is_multiple_of(20) && c != dst {
                    net.inject(c, dst, MessageClass::Response, 0, cycle);
                }
            }
            net.step(cycle);
        }
        let max = net.max_channel_utilization(horizon);
        assert!(
            max > 0.1,
            "hot-spotted traffic should load some channel: {max}"
        );
        assert!(
            max <= 1.0,
            "no channel can exceed one flit per cycle: {max}"
        );
        // Channels into the destination tile must be among the hottest.
        let hot: Vec<_> = net
            .channel_utilization(horizon)
            .into_iter()
            .filter(|&(_, _, u)| u > max * 0.9)
            .collect();
        assert!(!hot.is_empty());
    }

    #[test]
    fn pod_networks_are_not_congested_under_realistic_load() {
        // §4.4.1: differences in latency, not bandwidth, drive the fabric
        // comparison. At pod-like injection rates no channel saturates.
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::NocOut));
        let cores = net.core_endpoints().to_vec();
        let llcs = net.llc_endpoints().to_vec();
        let horizon = 4_000u64;
        for cycle in 0..horizon {
            for (i, &c) in cores.iter().enumerate() {
                if (cycle as usize + 3 * i).is_multiple_of(35) {
                    let dst = llcs[(i * 13 + cycle as usize) % llcs.len()];
                    if dst != c {
                        net.inject(c, dst, MessageClass::Request, 0, cycle);
                        net.inject(dst, c, MessageClass::Response, 0, cycle);
                    }
                }
            }
            net.step(cycle);
        }
        assert!(net.max_channel_utilization(horizon) < 0.85);
    }

    #[test]
    fn crossbar_and_ideal_fabrics_work() {
        for kind in [TopologyKind::Crossbar, TopologyKind::Ideal] {
            let lat = run_single(kind, MessageClass::Request);
            assert!(lat > 0 && lat < 20, "{kind:?}: {lat}");
        }
    }

    #[test]
    fn dead_router_forces_a_deterministic_detour() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let baseline = net.topology().hops(0, 63);
        // Kill a router on the pristine XY path from corner 0 to corner
        // 63 (X-first along row 0: node 1 is the first hop).
        let health = net.fail_router(1);
        assert!(!health.is_partitioned());
        assert!(net.router_is_dead(1));
        assert!(net.topology().routes(0, 63));
        net.inject(0, 63, MessageClass::Request, 0, 0);
        let done = net.drain(10_000);
        assert_eq!(done.len(), 1, "detoured packet must still deliver");
        // The detour never transits the dead router and costs at most two
        // extra hops in a mesh.
        assert!(net.topology().hops(0, 63) <= baseline + 2);
        let path_avoids_dead = {
            let topo = net.topology();
            let mut at = 0;
            let mut ok = true;
            while at != 63 {
                let port = topo.next_hop[at][63];
                at = topo.channels[at][port].to;
                ok &= at != 1;
            }
            ok
        };
        assert!(path_avoids_dead);
    }

    #[test]
    fn dead_link_reroutes_and_restore_heals() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let topo = net.topology().clone();
        let east = topo.next_hop[0][1];
        let health = net.fail_link(0, east);
        assert!(!health.is_partitioned());
        // 0 -> 1 must now leave through a different port but still route.
        assert_ne!(net.topology().next_hop[0][1], east);
        net.inject(0, 1, MessageClass::Request, 0, 0);
        assert_eq!(net.drain(10_000).len(), 1);
        // Restoring the link brings the original table back.
        net.restore_link(0, east);
        assert_eq!(net.topology().next_hop[0][1], east);
    }

    #[test]
    fn severed_fabric_reports_a_partition_instead_of_hanging() {
        // 2x2 mesh: killing routers 1 and 2 isolates node 0 from node 3.
        let mut net = Network::new(NocConfig {
            topology: TopologyKind::Mesh,
            cores: 4,
            llc_tiles: 4,
            link_bits: 128,
            vc_depth: 5,
            tile_mm: 1.0,
            hub_cycles: 3,
        });
        assert!(!net.fail_router(1).is_partitioned());
        let health = net.fail_router(2);
        assert!(health.is_partitioned());
        assert!(health.unreachable.contains(&(0, 3)));
        assert!(health.unreachable.contains(&(3, 0)));
        assert!(!net.topology().routes(0, 3));
    }

    #[test]
    fn degraded_link_stretches_latency_without_losing_packets() {
        let mut healthy = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let mut faulty = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        // Degrade every outgoing channel of node 0 so no detour escapes
        // the slowdown.
        for port in 0..faulty.topology().channels[0].len() {
            faulty.degrade_link(0, port);
        }
        for net in [&mut healthy, &mut faulty] {
            net.inject(0, 63, MessageClass::Request, 0, 0);
        }
        let h = healthy.drain(10_000)[0].latency();
        let f = faulty.drain(10_000)[0].latency();
        assert!(f > h, "degraded {f} vs healthy {h}");
    }

    #[test]
    fn same_faults_produce_identical_routing_tables() {
        let build = || {
            let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
            net.fail_router(27);
            net.fail_link(0, 0);
            net.degrade_router(9);
            net
        };
        let a = build();
        let b = build();
        assert_eq!(a.topology().next_hop, b.topology().next_hop);
    }

    #[test]
    #[should_panic(expected = "idle fabric")]
    fn faults_on_a_busy_fabric_panic() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        net.inject(0, 63, MessageClass::Request, 0, 0);
        net.fail_router(5);
    }

    #[test]
    fn self_injection_delivers_locally() {
        let mut net = Network::new(NocConfig::pod_64(TopologyKind::Mesh));
        let node = net.core_endpoints()[0];
        let id = net.inject(node, node, MessageClass::Request, 0, 0);
        let done = net.drain(100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].packet, id);
        assert!(done[0].latency() <= 2, "local delivery is near-free");
    }
}
