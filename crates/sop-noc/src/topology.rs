//! Network topologies: mesh, flattened butterfly, NOC-Out, crossbar, and
//! the ideal fixed-latency fabric (Table 4.1, §4.2).
//!
//! A topology is an explicit directed graph of nodes (core tiles, LLC
//! tiles, tree mux/demux nodes, crossbar hubs) with per-channel latencies
//! and lengths, a per-node router pipeline depth, and a deterministic
//! next-hop routing table. Routing is minimal and dimension-ordered (XY in
//! the mesh, X-then-Y in the butterfly), which together with per-class
//! virtual channels keeps the network deadlock-free.

/// Which fabric a [`Topology`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 2-D mesh of core+slice tiles (the chapter-4 baseline).
    Mesh,
    /// Fully connected rows and columns (Kim et al.'s flattened butterfly).
    FlattenedButterfly,
    /// Reduction/dispersion trees into a central LLC row (the proposal).
    NocOut,
    /// Dancehall crossbar hub (pods, conventional chips).
    Crossbar,
    /// Fixed-latency star: the "ideal interconnect" of Table 3.1.
    Ideal,
}

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A core endpoint (with its index among cores).
    Core(u32),
    /// An LLC endpoint (with its index among LLC tiles).
    Llc(u32),
    /// A tile holding both a core and an LLC slice (mesh/butterfly tiles).
    Tile(u32),
    /// An internal reduction/dispersion tree node.
    TreeNode,
    /// A crossbar or star hub.
    Hub,
}

/// A directed channel between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Destination node.
    pub to: usize,
    /// Flight latency in cycles (≥ 1).
    pub latency: u32,
    /// Physical length in millimetres (drives repeater area and energy).
    pub length_mm: f64,
}

/// Sentinel value in [`Topology::next_hop`] marking a destination with no
/// surviving route (after faults). No output port ever equals this, so a
/// flit aimed at an unreachable destination can never win switch
/// allocation — callers must consult [`Topology::routes`] *before*
/// injecting and treat an unreachable pair as a partition, not retry.
pub const UNREACHABLE: usize = usize::MAX;

/// Endpoint reachability summary produced by [`Topology::reroute`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteHealth {
    /// Live endpoint pairs `(src, dst)` — over core and LLC nodes whose
    /// routers survive — with no remaining path, sorted and deduplicated.
    /// Empty means the surviving fabric is fully connected.
    pub unreachable: Vec<(usize, usize)>,
}

impl RouteHealth {
    /// True when some surviving endpoint pair can no longer communicate.
    pub fn is_partitioned(&self) -> bool {
        !self.unreachable.is_empty()
    }
}

/// An explicit network graph with routing.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Which fabric this is.
    pub kind: TopologyKind,
    /// Role of each node.
    pub roles: Vec<NodeRole>,
    /// Outgoing channels per node; the index within the vector is the
    /// output port number.
    pub channels: Vec<Vec<Channel>>,
    /// Router pipeline depth in cycles per node (0 = pure wire joint).
    pub pipeline: Vec<u32>,
    /// `next_hop[node][dst]` = output port taking a packet at `node` one
    /// step closer to `dst`.
    pub next_hop: Vec<Vec<usize>>,
    /// Nodes where cores inject/eject.
    pub core_nodes: Vec<usize>,
    /// Nodes where LLC banks inject/eject.
    pub llc_nodes: Vec<usize>,
}

impl Topology {
    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the graph is empty (never true for built topologies).
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Total one-way wire length in mm across all channels.
    pub fn total_wire_mm(&self) -> f64 {
        self.channels.iter().flatten().map(|c| c.length_mm).sum()
    }

    /// Hop count (routers traversed, including the destination's) from
    /// `src` to `dst` following the routing tables.
    ///
    /// # Panics
    ///
    /// Panics if routing loops (a topology construction bug).
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let port = self.next_hop[at][dst];
            at = self.channels[at][port].to;
            hops += 1;
            assert!(hops < 10_000, "routing loop from {src} to {dst}");
        }
        hops
    }

    /// Zero-load latency in cycles from `src` to `dst`: channel flight
    /// times plus each traversed router's pipeline.
    pub fn zero_load_latency(&self, src: usize, dst: usize) -> u32 {
        let mut at = src;
        let mut cycles = 0;
        while at != dst {
            let port = self.next_hop[at][dst];
            let ch = self.channels[at][port];
            cycles += self.pipeline[at] + ch.latency;
            at = ch.to;
        }
        cycles
    }

    /// Whether the routing tables carry a path from `src` to `dst`
    /// (trivially true for `src == dst`). Only faulted topologies ever
    /// answer `false`.
    pub fn routes(&self, src: usize, dst: usize) -> bool {
        src == dst || self.next_hop[src][dst] != UNREACHABLE
    }

    /// Recomputes every routing table over the surviving graph, then
    /// reports which live endpoint pairs were severed.
    ///
    /// `dead_node[u]` removes router `u` entirely (nothing routes to,
    /// from, or through it); `dead_link(u, port)` removes one directed
    /// channel. Routes are rebuilt by per-destination reverse Dijkstra
    /// over channel flight time plus upstream router pipeline, with ties
    /// broken toward the lowest output port — in the mesh, whose ports
    /// order W, E, N, S, that prefers X-first detours, the deterministic
    /// analogue of the pristine XY tables. Destinations with no surviving
    /// path get [`UNREACHABLE`].
    ///
    /// Deterministic: same faults in, same tables out. Never called on a
    /// fault-free run, whose tables stay exactly as built.
    pub fn reroute(
        &mut self,
        dead_node: &[bool],
        dead_link: impl Fn(usize, usize) -> bool,
    ) -> RouteHealth {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.len();
        assert_eq!(dead_node.len(), n, "one liveness flag per node");
        // Reverse adjacency: edges arriving at each node.
        let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (u, chans) in self.channels.iter().enumerate() {
            for (port, ch) in chans.iter().enumerate() {
                rev[ch.to].push((u, port));
            }
        }
        for dst in 0..n {
            let mut dist = vec![u64::MAX; n];
            let mut port_of = vec![UNREACHABLE; n];
            if !dead_node[dst] {
                dist[dst] = 0;
                let mut heap = BinaryHeap::new();
                heap.push(Reverse((0u64, dst)));
                while let Some(Reverse((d, v))) = heap.pop() {
                    if d > dist[v] {
                        continue;
                    }
                    for &(u, port) in &rev[v] {
                        if dead_node[u] || dead_link(u, port) {
                            continue;
                        }
                        let edge =
                            u64::from(self.pipeline[u]) + u64::from(self.channels[u][port].latency);
                        let cost = d + edge;
                        match cost.cmp(&dist[u]) {
                            std::cmp::Ordering::Less => {
                                dist[u] = cost;
                                port_of[u] = port;
                                heap.push(Reverse((cost, u)));
                            }
                            std::cmp::Ordering::Equal if port < port_of[u] => {
                                port_of[u] = port;
                            }
                            _ => {}
                        }
                    }
                }
            }
            for (u, &port) in port_of.iter().enumerate() {
                if u != dst {
                    self.next_hop[u][dst] = port;
                }
            }
        }
        let mut health = RouteHealth::default();
        for &c in &self.core_nodes {
            for &l in &self.llc_nodes {
                for (s, d) in [(c, l), (l, c)] {
                    if s != d && !dead_node[s] && !dead_node[d] && !self.routes(s, d) {
                        health.unreachable.push((s, d));
                    }
                }
            }
        }
        health.unreachable.sort_unstable();
        health.unreachable.dedup();
        health
    }

    fn verify(self) -> Self {
        let n = self.len();
        assert_eq!(self.channels.len(), n);
        assert_eq!(self.pipeline.len(), n);
        assert_eq!(self.next_hop.len(), n);
        // Every endpoint pair must be mutually reachable.
        for &c in &self.core_nodes {
            for &l in &self.llc_nodes {
                self.hops(c, l);
                self.hops(l, c);
            }
        }
        self
    }

    /// Builds a `width x height` mesh of tiles, each holding a core and an
    /// LLC slice. 3 cycles/hop: 2-stage speculative router + 1-cycle link
    /// (Table 4.1).
    pub fn mesh(width: u32, height: u32, tile_mm: f64) -> Topology {
        assert!(width > 0 && height > 0, "mesh needs positive dimensions");
        let n = (width * height) as usize;
        let idx = |x: u32, y: u32| (y * width + x) as usize;
        let mut channels = vec![Vec::new(); n];
        for y in 0..height {
            for x in 0..width {
                let mut add = |tx: i64, ty: i64| {
                    if (0..i64::from(width)).contains(&tx) && (0..i64::from(height)).contains(&ty) {
                        channels[idx(x, y)].push(Channel {
                            to: idx(tx as u32, ty as u32),
                            latency: 1,
                            length_mm: tile_mm,
                        });
                    }
                };
                add(i64::from(x) - 1, i64::from(y));
                add(i64::from(x) + 1, i64::from(y));
                add(i64::from(x), i64::from(y) - 1);
                add(i64::from(x), i64::from(y) + 1);
            }
        }
        // XY routing: correct X first, then Y.
        let mut next_hop = vec![vec![0usize; n]; n];
        for y in 0..height {
            for x in 0..width {
                let at = idx(x, y);
                for dy in 0..height {
                    for dx in 0..width {
                        let dst = idx(dx, dy);
                        if dst == at {
                            continue;
                        }
                        let (tx, ty) = if dx != x {
                            (if dx < x { x - 1 } else { x + 1 }, y)
                        } else {
                            (x, if dy < y { y - 1 } else { y + 1 })
                        };
                        let target = idx(tx, ty);
                        next_hop[at][dst] = channels[at]
                            .iter()
                            .position(|c| c.to == target)
                            .expect("neighbour channel exists");
                    }
                }
            }
        }
        Topology {
            kind: TopologyKind::Mesh,
            roles: (0..n as u32).map(NodeRole::Tile).collect(),
            channels,
            pipeline: vec![2; n],
            next_hop,
            core_nodes: (0..n).collect(),
            llc_nodes: (0..n).collect(),
        }
        .verify()
    }

    /// Builds a `width x height` flattened butterfly: every node is
    /// directly linked to all others in its row and column. Routers have a
    /// 3-stage non-speculative pipeline; links cover two tiles per cycle
    /// (Table 4.1).
    pub fn flattened_butterfly(width: u32, height: u32, tile_mm: f64) -> Topology {
        assert!(
            width > 0 && height > 0,
            "butterfly needs positive dimensions"
        );
        let n = (width * height) as usize;
        let idx = |x: u32, y: u32| (y * width + x) as usize;
        let mut channels = vec![Vec::new(); n];
        for y in 0..height {
            for x in 0..width {
                for tx in 0..width {
                    if tx != x {
                        let span = f64::from(x.abs_diff(tx));
                        channels[idx(x, y)].push(Channel {
                            to: idx(tx, y),
                            latency: ((span / 2.0).ceil() as u32).max(1),
                            length_mm: span * tile_mm,
                        });
                    }
                }
                for ty in 0..height {
                    if ty != y {
                        let span = f64::from(y.abs_diff(ty));
                        channels[idx(x, y)].push(Channel {
                            to: idx(x, ty),
                            latency: ((span / 2.0).ceil() as u32).max(1),
                            length_mm: span * tile_mm,
                        });
                    }
                }
            }
        }
        // X then Y, at most one hop per dimension.
        let mut next_hop = vec![vec![0usize; n]; n];
        for y in 0..height {
            for x in 0..width {
                let at = idx(x, y);
                for dy in 0..height {
                    for dx in 0..width {
                        let dst = idx(dx, dy);
                        if dst == at {
                            continue;
                        }
                        let target = if dx != x { idx(dx, y) } else { idx(x, dy) };
                        next_hop[at][dst] = channels[at]
                            .iter()
                            .position(|c| c.to == target)
                            .expect("row/column channel exists");
                    }
                }
            }
        }
        Topology {
            kind: TopologyKind::FlattenedButterfly,
            roles: (0..n as u32).map(NodeRole::Tile).collect(),
            channels,
            pipeline: vec![3; n],
            next_hop,
            core_nodes: (0..n).collect(),
            llc_nodes: (0..n).collect(),
        }
        .verify()
    }

    /// Builds the NOC-Out pod (Fig 4.4): `llc_tiles` LLC-row routers in a
    /// one-dimensional flattened butterfly, and `cores` cores hanging off
    /// reduction/dispersion trees — half above and half below the row,
    /// `cores / llc_tiles / 2` deep. Tree hops cost a single cycle
    /// including the link (§4.3.1).
    pub fn noc_out(cores: u32, llc_tiles: u32, tile_mm: f64) -> Topology {
        assert!(llc_tiles > 0, "need at least one LLC tile");
        assert!(
            cores.is_multiple_of(llc_tiles * 2),
            "cores must split evenly into two half-columns per LLC tile"
        );
        let depth = cores / (llc_tiles * 2);
        let n_llc = llc_tiles as usize;
        let n = n_llc + cores as usize;
        // Node layout: [0, n_llc) are LLC routers; cores follow, grouped
        // by (tile, half, position-in-column), position 0 adjacent to the
        // LLC row.
        let core_node = |tile: u32, half: u32, pos: u32| {
            n_llc + (tile * 2 * depth + half * depth + pos) as usize
        };
        let mut roles = vec![NodeRole::TreeNode; n];
        let mut channels = vec![Vec::new(); n];
        let mut pipeline = vec![0u32; n];
        for (t, role) in roles.iter_mut().enumerate().take(n_llc) {
            *role = NodeRole::Llc(t as u32);
        }
        for t in 0..llc_tiles {
            pipeline[t as usize] = 3; // LLC-row butterfly router
                                      // Row links: fully connected 1-D butterfly.
            for o in 0..llc_tiles {
                if o != t {
                    // LLC tiles are ~2mm wide (two 0.5MB banks + router).
                    let span_mm = f64::from(t.abs_diff(o)) * 2.0;
                    channels[t as usize].push(Channel {
                        to: o as usize,
                        latency: ((span_mm / 4.0).ceil() as u32).max(1),
                        length_mm: span_mm,
                    });
                }
            }
            for half in 0..2 {
                for pos in 0..depth {
                    let node = core_node(t, half, pos);
                    let core_index = t * 2 * depth + half * depth + pos;
                    roles[node] = NodeRole::Core(core_index);
                    pipeline[node] = 1; // mux/demux + link, single cycle
                                        // Toward the LLC (reduction direction).
                    let parent = if pos == 0 {
                        t as usize
                    } else {
                        core_node(t, half, pos - 1)
                    };
                    channels[node].push(Channel {
                        to: parent,
                        latency: 1,
                        length_mm: tile_mm,
                    });
                    // Away from the LLC (dispersion direction).
                    let child_port = Channel {
                        to: core_node(t, half, pos),
                        latency: 1,
                        length_mm: tile_mm,
                    };
                    if pos == 0 {
                        channels[t as usize].push(child_port);
                    } else {
                        channels[core_node(t, half, pos - 1)].push(child_port);
                    }
                }
            }
        }
        // Routing: cores send everything toward their LLC tile (port 0 of
        // every core node); LLC routers route across the row, then down
        // the right dispersion tree.
        let mut next_hop = vec![vec![0usize; n]; n];
        for (node, hops) in next_hop.iter_mut().enumerate() {
            for dst in 0..n {
                if dst == node {
                    continue;
                }
                hops[dst] = match roles[node] {
                    NodeRole::Core(_) | NodeRole::TreeNode => 0, // toward the LLC row
                    NodeRole::Llc(t) => {
                        let (dtile, dhalf, dpos) = match roles[dst] {
                            NodeRole::Core(ci) => (ci / (2 * depth), (ci / depth) % 2, ci % depth),
                            NodeRole::Llc(o) => (o, 0, 0),
                            _ => unreachable!("NOC-Out has no other roles"),
                        };
                        if dtile != t {
                            // Cross the row toward the destination tile.
                            channels[node]
                                .iter()
                                .position(|c| c.to == dtile as usize)
                                .expect("row channel")
                        } else if matches!(roles[dst], NodeRole::Llc(_)) {
                            unreachable!("dst == node case handled above")
                        } else {
                            // Down this tile's dispersion tree.
                            let first = core_node(t, dhalf, 0);
                            let _ = dpos;
                            channels[node]
                                .iter()
                                .position(|c| c.to == first)
                                .expect("tree root channel")
                        }
                    }
                    NodeRole::Tile(_) | NodeRole::Hub => unreachable!(),
                };
                // Tree nodes below the LLC route downward along the chain.
                if let NodeRole::Core(ci) = roles[node] {
                    if let NodeRole::Core(di) = roles[dst] {
                        let (tile, half, pos) = (ci / (2 * depth), (ci / depth) % 2, ci % depth);
                        let (dtile, dhalf, dpos) = (di / (2 * depth), (di / depth) % 2, di % depth);
                        if tile == dtile && half == dhalf && dpos > pos {
                            // Dispersion continues down: port 1 is the child.
                            hops[dst] = channels[node]
                                .iter()
                                .position(|c| c.to == core_node(tile, half, pos + 1))
                                .expect("child channel");
                        }
                    }
                }
            }
        }
        let core_nodes = (0..cores)
            .map(|ci| core_node(ci / (2 * depth), (ci / depth) % 2, ci % depth))
            .collect();
        Topology {
            kind: TopologyKind::NocOut,
            roles,
            channels,
            pipeline,
            next_hop,
            core_nodes,
            llc_nodes: (0..n_llc).collect(),
        }
        .verify()
    }

    /// Builds a dancehall crossbar: `cores` core leaves and `banks` bank
    /// leaves around a hub whose pipeline is `hub_cycles` (arbitration +
    /// switch). Used for pods and the conventional design.
    pub fn crossbar(cores: u32, banks: u32, hub_cycles: u32, span_mm: f64) -> Topology {
        Self::star(TopologyKind::Crossbar, cores, banks, hub_cycles, 1, span_mm)
    }

    /// Builds the ideal fixed-latency fabric of Table 3.1: a star whose
    /// hub is free and whose links take two cycles each way (4-cycle round
    /// trip), independent of scale.
    pub fn ideal(cores: u32, banks: u32) -> Topology {
        Self::star(TopologyKind::Ideal, cores, banks, 0, 2, 1.0)
    }

    fn star(
        kind: TopologyKind,
        cores: u32,
        banks: u32,
        hub_cycles: u32,
        link_latency: u32,
        span_mm: f64,
    ) -> Topology {
        assert!(cores > 0 && banks > 0, "star needs endpoints");
        let n = 1 + (cores + banks) as usize;
        let mut roles = vec![NodeRole::Hub];
        let mut channels = vec![Vec::new(); n];
        for c in 0..cores {
            roles.push(NodeRole::Core(c));
        }
        for b in 0..banks {
            roles.push(NodeRole::Llc(b));
        }
        for leaf in 1..n {
            channels[0].push(Channel {
                to: leaf,
                latency: link_latency,
                length_mm: span_mm,
            });
            channels[leaf].push(Channel {
                to: 0,
                latency: link_latency,
                length_mm: span_mm,
            });
        }
        let mut next_hop = vec![vec![0usize; n]; n];
        for (dst, port) in next_hop[0].iter_mut().enumerate().skip(1) {
            *port = dst - 1; // hub port order follows leaf order
        }
        let mut pipeline = vec![0; n];
        pipeline[0] = hub_cycles;
        Topology {
            kind,
            roles,
            channels,
            pipeline,
            next_hop,
            core_nodes: (1..=cores as usize).collect(),
            llc_nodes: (1 + cores as usize..n).collect(),
        }
        .verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_zero_load_matches_three_cycles_per_hop() {
        let m = Topology::mesh(8, 8, 1.82);
        // Corner to corner: 14 hops x (2-cycle router + 1-cycle link).
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.zero_load_latency(0, 63), 42);
    }

    #[test]
    fn mesh_routes_x_first() {
        let m = Topology::mesh(4, 4, 1.0);
        // From (0,0) to (2,1): first hop must be toward x=1, i.e. node 1.
        let port = m.next_hop[0][6];
        assert_eq!(m.channels[0][port].to, 1);
    }

    #[test]
    fn butterfly_needs_at_most_two_hops() {
        let f = Topology::flattened_butterfly(8, 8, 1.82);
        for src in 0..64 {
            for dst in 0..64 {
                if src != dst {
                    assert!(f.hops(src, dst) <= 2, "{src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn nocout_cores_reach_all_llc_tiles() {
        let t = Topology::noc_out(64, 8, 1.7);
        assert_eq!(t.core_nodes.len(), 64);
        assert_eq!(t.llc_nodes.len(), 8);
        // A core adjacent to the row reaches its own tile in one hop.
        let near = t.core_nodes[0];
        assert_eq!(t.hops(near, t.llc_nodes[0]), 1);
        // Deepest core of tile 0 to the farthest tile: 4 tree + 1 row hops.
        let deep = t.core_nodes[3];
        assert_eq!(t.hops(deep, t.llc_nodes[7]), 5);
    }

    #[test]
    fn nocout_zero_load_is_low() {
        let t = Topology::noc_out(64, 8, 1.7);
        // Average core-to-LLC zero-load latency should be well under the
        // mesh's (§4.4.1).
        let mesh = Topology::mesh(8, 8, 1.82);
        let avg = |topo: &Topology| {
            let mut sum = 0u64;
            let mut count = 0u64;
            for &c in &topo.core_nodes {
                for &l in &topo.llc_nodes {
                    if c != l {
                        sum += u64::from(topo.zero_load_latency(c, l));
                        count += 1;
                    }
                }
            }
            sum as f64 / count as f64
        };
        assert!(
            avg(&t) < 0.7 * avg(&mesh),
            "nocout {} mesh {}",
            avg(&t),
            avg(&mesh)
        );
    }

    #[test]
    fn nocout_response_path_returns_to_core() {
        let t = Topology::noc_out(64, 8, 1.7);
        for &core in &t.core_nodes {
            for &llc in &t.llc_nodes {
                t.hops(llc, core); // panics on a routing loop
            }
        }
    }

    #[test]
    fn crossbar_is_two_hops_each_way() {
        let x = Topology::crossbar(16, 4, 2, 4.8);
        let core = x.core_nodes[3];
        let bank = x.llc_nodes[1];
        assert_eq!(x.hops(core, bank), 2);
        // leaf (0 pipeline) + link + hub pipeline + link.
        assert_eq!(x.zero_load_latency(core, bank), 1 + 2 + 1);
    }

    #[test]
    fn ideal_star_is_scale_invariant() {
        let small = Topology::ideal(4, 1);
        let big = Topology::ideal(256, 64);
        assert_eq!(
            small.zero_load_latency(small.core_nodes[0], small.llc_nodes[0]),
            big.zero_load_latency(big.core_nodes[100], big.llc_nodes[10]),
        );
    }

    #[test]
    fn wire_length_grows_with_connectivity() {
        let mesh = Topology::mesh(8, 8, 1.82);
        let fb = Topology::flattened_butterfly(8, 8, 1.82);
        assert!(fb.total_wire_mm() > 4.0 * mesh.total_wire_mm());
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn nocout_uneven_cores_panics() {
        Topology::noc_out(30, 8, 1.7);
    }
}
