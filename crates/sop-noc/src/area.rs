//! ORION-style area and power accounting (§4.3.2, Fig 4.7, §4.4.4).
//!
//! Area is computed from the actual topology structure: link repeaters
//! from total wire length (wires route over logic, so only repeaters
//! count), input buffers from channel count x VCs x depth x width, and
//! switch fabrics quadratically in aggregate port width. Power combines
//! wire and router switching energy (from the simulator's traffic
//! counters) with buffer leakage.

use crate::message::MessageClass;
use crate::sim::TrafficCounters;
use crate::topology::{NodeRole, Topology, TopologyKind};

/// Repeater area per bit-millimetre of link at 32nm, mm².
const REPEATER_MM2_PER_BIT_MM: f64 = 2.0e-5;
/// Buffer area per bit at 32nm (flip-flop based), mm².
const BUFFER_MM2_PER_BIT: f64 = 3.2e-6;
/// Switch-fabric area coefficient: mm² per (port x bit)².
const XBAR_MM2_PER_PORTBIT2: f64 = 3.8e-8;
/// Wire energy per bit-millimetre (50fJ, §4.3.2).
const WIRE_J_PER_BIT_MM: f64 = 50e-15;
/// Router energy (buffer write+read and switch) per bit per hop.
const ROUTER_J_PER_BIT_HOP: f64 = 90e-15;
/// Leakage per buffer bit in watts.
const LEAK_W_PER_BIT: f64 = 6.0e-7;

/// Virtual channels per port (one per message class).
const VCS: f64 = MessageClass::ALL.len() as f64;

fn vc_depth_for(topo: &Topology, node: usize) -> f64 {
    match topo.roles[node] {
        // Tree mux/demux nodes need only enough to cover a 1-cycle hop,
        // and carry two message classes each way (§4.2.2).
        NodeRole::Core(_) | NodeRole::TreeNode if topo.kind == TopologyKind::NocOut => 2.0,
        _ => match topo.kind {
            // Deep buffers cover the long-range links' flight time.
            TopologyKind::FlattenedButterfly => 7.0,
            _ => 5.0,
        },
    }
}

/// Die-area breakdown of a NOC instance (the Fig 4.7 bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocAreaBreakdown {
    /// Link repeater area, mm².
    pub links_mm2: f64,
    /// Input buffer area, mm².
    pub buffers_mm2: f64,
    /// Switch fabric (crossbar) area, mm².
    pub crossbars_mm2: f64,
}

impl NocAreaBreakdown {
    /// Computes the breakdown for a topology with `link_bits`-wide links.
    pub fn of(topo: &Topology, link_bits: u32) -> Self {
        let bits = f64::from(link_bits);
        let links_mm2 = topo.total_wire_mm() * bits * REPEATER_MM2_PER_BIT_MM;
        let mut buffers_mm2 = 0.0;
        let mut crossbars_mm2 = 0.0;
        // Input buffering sits at the downstream end of each channel.
        for u in 0..topo.len() {
            for ch in &topo.channels[u] {
                let depth = vc_depth_for(topo, ch.to);
                // NocOut trees carry 2 VCs; everything else carries 3.
                let vcs = if topo.kind == TopologyKind::NocOut
                    && matches!(topo.roles[ch.to], NodeRole::Core(_) | NodeRole::TreeNode)
                {
                    2.0
                } else {
                    VCS
                };
                buffers_mm2 += vcs * depth * bits * BUFFER_MM2_PER_BIT;
            }
        }
        for node in 0..topo.len() {
            // Ports: outgoing channels + local. (Input count matches
            // output count in all our fabrics.)
            let ports = topo.channels[node].len() as f64 + 1.0;
            if topo.pipeline[node] == 0 {
                continue; // pure wire joints (star leaves) have no switch
            }
            let portbits = ports * bits;
            crossbars_mm2 += portbits * portbits * XBAR_MM2_PER_PORTBIT2;
        }
        NocAreaBreakdown {
            links_mm2,
            buffers_mm2,
            crossbars_mm2,
        }
    }

    /// Total NOC area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.links_mm2 + self.buffers_mm2 + self.crossbars_mm2
    }
}

/// NOC power estimate (§4.4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocPowerEstimate {
    /// Dynamic power in the links, W.
    pub link_w: f64,
    /// Dynamic power in buffers and switches, W.
    pub router_w: f64,
    /// Leakage (dominated by buffers), W.
    pub leakage_w: f64,
}

impl NocPowerEstimate {
    /// Estimates power from traffic accumulated over `cycles` at `ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn of(
        topo: &Topology,
        counters: &TrafficCounters,
        cycles: u64,
        ghz: f64,
        link_bits: u32,
    ) -> Self {
        assert!(cycles > 0, "need a non-empty simulation window");
        let seconds = cycles as f64 / (ghz * 1e9);
        let bits = f64::from(link_bits);
        let link_w = counters.flit_mm * bits * WIRE_J_PER_BIT_MM / seconds;
        let router_w = counters.flit_hops as f64 * bits * ROUTER_J_PER_BIT_HOP / seconds;
        let area = NocAreaBreakdown::of(topo, link_bits);
        let buffer_bits = area.buffers_mm2 / BUFFER_MM2_PER_BIT;
        NocPowerEstimate {
            link_w,
            router_w,
            leakage_w: buffer_bits * LEAK_W_PER_BIT,
        }
    }

    /// Total NOC power in watts.
    pub fn total_w(&self) -> f64 {
        self.link_w + self.router_w + self.leakage_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Network, NocConfig};
    use crate::topology::TopologyKind;

    fn area_of(kind: TopologyKind) -> NocAreaBreakdown {
        let cfg = NocConfig::pod_64(kind);
        NocAreaBreakdown::of(&cfg.build_topology(), cfg.link_bits)
    }

    #[test]
    fn fig_4_7_mesh_area() {
        let a = area_of(TopologyKind::Mesh).total_mm2();
        assert!((3.0..4.8).contains(&a), "mesh {a}");
    }

    #[test]
    fn fig_4_7_fbfly_area_explodes() {
        let a = area_of(TopologyKind::FlattenedButterfly).total_mm2();
        assert!(a > 20.0, "fbfly {a}");
    }

    #[test]
    fn fig_4_7_nocout_is_smallest() {
        let no = area_of(TopologyKind::NocOut).total_mm2();
        let mesh = area_of(TopologyKind::Mesh).total_mm2();
        let fb = area_of(TopologyKind::FlattenedButterfly).total_mm2();
        assert!((1.8..3.4).contains(&no), "nocout {no}");
        assert!(no < mesh && no < fb);
        // §4.4.5: about 10x less area than the butterfly, ~28% less than
        // the mesh.
        assert!(fb / no > 7.0, "ratio {}", fb / no);
    }

    #[test]
    fn nocout_spine_dominates_its_area() {
        // Fig 4.7: the LLC-row butterfly is ~64% of NOC-Out's area, and
        // each tree network only ~18%. We check the coarser property that
        // links+crossbars (spine-heavy) outweigh tree buffering.
        let a = area_of(TopologyKind::NocOut);
        assert!(a.links_mm2 + a.crossbars_mm2 > a.buffers_mm2);
    }

    #[test]
    fn narrower_links_shrink_area_roughly_linearly() {
        let cfg = NocConfig::pod_64(TopologyKind::FlattenedButterfly);
        let full = NocAreaBreakdown::of(&cfg.build_topology(), 128).total_mm2();
        let fifth = NocAreaBreakdown::of(&cfg.build_topology(), 25).total_mm2();
        assert!(fifth < full / 3.5, "full {full} fifth {fifth}");
    }

    #[test]
    fn power_ordering_matches_section_4_4_4() {
        // Same offered traffic on each fabric; NOC-Out should burn the
        // least (short distances), and the butterfly less than the mesh
        // (fewer hops).
        let mut results = Vec::new();
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::FlattenedButterfly,
            TopologyKind::NocOut,
        ] {
            let mut net = Network::new(NocConfig::pod_64(kind));
            let cores = net.core_endpoints().to_vec();
            let llcs = net.llc_endpoints().to_vec();
            let horizon = 6_000u64;
            for cycle in 0..horizon {
                for (i, &c) in cores.iter().enumerate() {
                    if (cycle as usize + i * 3).is_multiple_of(40) {
                        let dst = llcs[(i * 7 + cycle as usize) % llcs.len()];
                        if dst != c {
                            net.inject(c, dst, MessageClass::Request, 0, cycle);
                            net.inject(dst, c, MessageClass::Response, 0, cycle);
                        }
                    }
                }
                net.step(cycle);
            }
            net.drain(20_000);
            let p = NocPowerEstimate::of(
                net.topology(),
                &net.counters(),
                horizon,
                2.0,
                net.config().link_bits,
            );
            results.push((kind, p.total_w()));
        }
        let mesh = results[0].1;
        let fb = results[1].1;
        let no = results[2].1;
        assert!(no < mesh, "nocout {no} vs mesh {mesh}");
        assert!(no < fb, "nocout {no} vs fbfly {fb}");
        // All fabrics stay in the low single-digit watts (§4.4.4).
        for (kind, w) in results {
            assert!(w < 5.0, "{kind:?} power {w}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cycle_power_panics() {
        let cfg = NocConfig::pod_64(TopologyKind::Mesh);
        let topo = cfg.build_topology();
        NocPowerEstimate::of(&topo, &TrafficCounters::default(), 0, 2.0, 128);
    }
}
