//! Flit-level on-chip network simulation for the chapter-4 pod study.
//!
//! The thesis compares three 64-core pod fabrics — a mesh, a flattened
//! butterfly, and the proposed **NOC-Out** (reduction trees into a central
//! LLC row joined by a one-row flattened butterfly, with dispersion trees
//! back out) — on performance (Fig 4.6), area (Fig 4.7), equal-area
//! performance (Fig 4.8), and power (§4.4.4). This crate implements all
//! four fabrics (plus the pod crossbar) as flit-level, credit-flow-
//! controlled wormhole networks with virtual channels per message class,
//! and provides the ORION-style area and wire-energy accounting used for
//! the figures.
//!
//! # Example
//!
//! ```
//! use sop_noc::{Network, NocConfig, TopologyKind, MessageClass};
//!
//! let mut net = Network::new(NocConfig::pod_64(TopologyKind::NocOut));
//! let core = net.core_endpoints()[0];
//! let bank = net.llc_endpoints()[0];
//! let id = net.inject(core, bank, MessageClass::Request, 8, 0);
//! let mut delivered = Vec::new();
//! for cycle in 1..200 {
//!     delivered.extend(net.step(cycle));
//! }
//! assert!(delivered.iter().any(|d| d.packet == id));
//! ```

pub mod area;
pub mod domains;
pub mod message;
pub mod scaled;
pub mod sim;
pub mod slab;
pub mod topology;

pub use area::{NocAreaBreakdown, NocPowerEstimate};
pub use domains::{cut_links, lookahead, DomainPartition, DomainPool};
pub use message::{Delivered, MessageClass, PacketId};
pub use scaled::ScaledNocOut;
pub use sim::{NetPar, Network, NocConfig, NocSpans, TrafficCounters};
pub use topology::{NodeRole, RouteHealth, Topology, TopologyKind, UNREACHABLE};
