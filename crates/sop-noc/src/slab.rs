//! Generation-checked slabs: O(1) keyed storage without hashing.
//!
//! The cycle-level engines used to keep per-packet state behind
//! `HashMap<PacketId, _>` tables, paying a SipHash round on every flit
//! ejection and protocol step. A [`Slab`] replaces that with a plain
//! vector indexed by the low half of a [`Key`] — one bounds-checked array
//! access on the hot path — while the high half carries a monotonically
//! increasing *generation* that makes every key unique for the lifetime
//! of the slab: a slot may be reused, but a stale key can never alias the
//! new occupant because its generation no longer matches.
//!
//! Generations are drawn from a single per-slab counter (not a per-slot
//! one), which buys two extra properties the simulators rely on:
//!
//! * **ABA-proof**: a slot reused any number of times never resurrects an
//!   old key, even after `u32::MAX` reuses of one slot.
//! * **Allocation order is total order**: `Key: Ord` compares generations,
//!   so sorting keys sorts by allocation time. The network leans on this
//!   to keep event tie-breaking byte-identical to the days when packet
//!   ids were a bare incrementing `u64`.
//!
//! [`SideTable`] is the companion structure for *foreign* keys: state a
//! client wants to attach to somebody else's slab entries (the machine
//! annotating the network's packets). It stores `(generation, value)`
//! at the key's index and treats a generation mismatch on insert as a
//! logic error, so aliasing bugs fail loudly instead of corrupting state.

/// A slab handle: slot index plus the allocation generation that must
/// match for the handle to still be valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    index: u32,
    generation: u64,
}

impl Key {
    /// The slot index this key addresses.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The allocation generation: a per-slab counter value, unique to
    /// this key and monotonically increasing in allocation order.
    pub fn generation(self) -> u64 {
        self.generation
    }
}

// Generations are unique per slab, so they alone define a total order:
// the order in which keys were allocated. The index participates only to
// keep the ordering consistent for keys minted by different slabs.
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.generation
            .cmp(&other.generation)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One slab slot: vacant, or occupied by a value tagged with the
/// generation of the key that owns it.
#[derive(Debug, Clone)]
enum Slot<T> {
    Vacant,
    Occupied { generation: u64, value: T },
}

/// A generation-checked slab allocator.
///
/// Freed slots are recycled in LIFO order. [`Slab::remove_deferred`]
/// vacates a slot but parks its index on a side list until
/// [`Slab::reclaim_deferred`] runs, letting a simulation step guarantee
/// that indices retired during the step are not reissued until the next
/// one — the property that makes index-keyed [`SideTable`]s sound for
/// clients that finish their bookkeeping between steps.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    deferred: Vec<u32>,
    next_generation: u64,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab. The first key allocated has generation 1.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            deferred: Vec::new(),
            next_generation: 1,
            live: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores `value` and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` slots would be needed.
    pub fn insert(&mut self, value: T) -> Key {
        let generation = self.next_generation;
        self.next_generation += 1;
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.slots.len()).expect("slab capacity");
                self.slots.push(Slot::Vacant);
                i
            }
        };
        self.slots[index as usize] = Slot::Occupied { generation, value };
        self.live += 1;
        Key { index, generation }
    }

    fn slot_matches(&self, key: Key) -> bool {
        matches!(
            self.slots.get(key.index as usize),
            Some(Slot::Occupied { generation, .. }) if *generation == key.generation
        )
    }

    /// The value behind `key`, if the key is still live.
    pub fn get(&self, key: Key) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `key`, if still live.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether `key` still addresses a live value.
    pub fn contains(&self, key: Key) -> bool {
        self.slot_matches(key)
    }

    /// Removes and returns the value behind `key`; the slot becomes
    /// immediately reusable.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let value = self.take(key)?;
        self.free.push(key.index);
        Some(value)
    }

    /// Removes and returns the value behind `key`, but holds the slot out
    /// of circulation until [`Slab::reclaim_deferred`].
    pub fn remove_deferred(&mut self, key: Key) -> Option<T> {
        let value = self.take(key)?;
        self.deferred.push(key.index);
        Some(value)
    }

    /// Returns every slot parked by [`Slab::remove_deferred`] to the free
    /// list.
    pub fn reclaim_deferred(&mut self) {
        self.free.append(&mut self.deferred);
    }

    fn take(&mut self, key: Key) -> Option<T> {
        if !self.slot_matches(key) {
            return None;
        }
        let slot = std::mem::replace(&mut self.slots[key.index as usize], Slot::Vacant);
        let Slot::Occupied { value, .. } = slot else {
            unreachable!("slot_matches checked occupancy")
        };
        self.live -= 1;
        Some(value)
    }
}

/// Values attached to another slab's keys, indexed by slot.
///
/// An entry occupies the key's index and remembers the key's generation;
/// reads and removals with a mismatched generation see nothing. Inserting
/// over a live entry of a *different* generation panics: it means the key
/// allocator reissued an index while this table still tracked the old
/// occupant, which is a lifecycle bug the caller must fix (the network's
/// deferred slot reclaim exists precisely to prevent it).
#[derive(Debug, Clone)]
pub struct SideTable<T> {
    slots: Vec<Option<(u64, T)>>,
    live: usize,
}

impl<T> Default for SideTable<T> {
    fn default() -> Self {
        SideTable::new()
    }
}

impl<T> SideTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        SideTable {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Attaches `value` to `key`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied under a different generation (see
    /// the type-level docs).
    pub fn insert(&mut self, key: Key, value: T) {
        let index = key.index as usize;
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        match &self.slots[index] {
            Some((generation, _)) if *generation != key.generation => {
                panic!(
                    "side-table collision at slot {}: live generation {} vs inserted {}",
                    key.index, generation, key.generation
                );
            }
            Some(_) => {}
            None => self.live += 1,
        }
        self.slots[index] = Some((key.generation, value));
    }

    /// The value attached to `key`, if any.
    pub fn get(&self, key: Key) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some(Some((generation, value))) if *generation == key.generation => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value attached to `key`, if any.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Some((generation, value))) if *generation == key.generation => Some(value),
            _ => None,
        }
    }

    /// Detaches and returns the value attached to `key`, if any.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        match self.slots.get_mut(key.index as usize) {
            Some(slot @ Some(_)) if slot.as_ref().is_some_and(|(g, _)| *g == key.generation) => {
                let (_, value) = slot.take().expect("matched occupied slot");
                self.live -= 1;
                Some(value)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn reused_slot_never_aliases_the_old_key() {
        let mut slab = Slab::new();
        let old = slab.insert(1u32);
        slab.remove(old);
        let new = slab.insert(2u32);
        assert_eq!(new.index(), old.index(), "slot is recycled");
        assert_ne!(new, old, "but the key is fresh");
        assert_eq!(slab.get(old), None);
        assert_eq!(slab.get_mut(old), None);
        assert!(!slab.contains(old));
        assert_eq!(slab.get(new), Some(&2));
    }

    #[test]
    fn generations_order_keys_by_allocation() {
        let mut slab = Slab::new();
        let a = slab.insert(());
        slab.remove(a);
        let b = slab.insert(()); // reuses a's slot with a later generation
        let c = slab.insert(());
        assert!(a < b && b < c);
        assert_eq!(a.generation(), 1);
        assert_eq!(b.generation(), 2);
        assert_eq!(c.generation(), 3);
    }

    #[test]
    fn deferred_removal_delays_slot_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        assert_eq!(slab.remove_deferred(a), Some("a"));
        let b = slab.insert("b");
        assert_ne!(b.index(), a.index(), "slot parked until reclaim");
        slab.reclaim_deferred();
        let c = slab.insert("c");
        assert_eq!(c.index(), a.index(), "slot recycled after reclaim");
        assert_eq!(slab.get(a), None);
    }

    #[test]
    fn side_table_tracks_foreign_keys() {
        let mut slab = Slab::new();
        let mut table = SideTable::new();
        let a = slab.insert(());
        let b = slab.insert(());
        table.insert(a, 10u32);
        table.insert(b, 20u32);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(a), Some(&10));
        *table.get_mut(b).expect("live") += 1;
        assert_eq!(table.remove(b), Some(21));
        assert_eq!(table.remove(b), None);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn side_table_ignores_stale_generations() {
        let mut slab = Slab::new();
        let mut table = SideTable::new();
        let old = slab.insert(());
        table.insert(old, 1u32);
        assert_eq!(table.remove(old), Some(1));
        slab.remove(old);
        let new = slab.insert(()); // same index, new generation
        table.insert(new, 2u32);
        assert_eq!(table.get(old), None, "stale key sees nothing");
        assert_eq!(table.get(new), Some(&2));
    }

    #[test]
    #[should_panic(expected = "side-table collision")]
    fn side_table_collision_panics() {
        let mut table = SideTable::new();
        let mut slab = Slab::new();
        let a = slab.insert(());
        slab.remove(a);
        let b = slab.insert(()); // same slot, different generation
        table.insert(a, 1u32);
        table.insert(b, 2u32);
    }
}
