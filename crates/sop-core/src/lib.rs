//! The Scale-Out Processor design methodology.
//!
//! This crate implements the thesis' primary contribution (chapters 2–3):
//!
//! * **Performance density** (`perf/mm²`, [`pd`]) as the metric that folds
//!   the conflicting demands of scale-out workloads — many cores, modest
//!   LLC, short core-to-cache distance — into one number (§2.3, §3.1).
//! * **Pods** ([`pod`]): the PD-optimal building block that tightly couples
//!   a handful of cores to a small LLC over a crossbar, derived by
//!   searching the (core count x LLC capacity x interconnect) space.
//! * **Chip composition** ([`chip`]): tiling several pods — each a
//!   stand-alone server with no inter-pod coherence — onto a die under
//!   area, power, and bandwidth budgets (§3.2.3).
//! * **Reference designs** ([`designs`]): the conventional, tiled,
//!   LLC-optimal tiled (with and without instruction replication), ideal,
//!   and Scale-Out chips of Tables 2.3, 2.4, and 3.2.
//!
//! # Example
//!
//! ```
//! use sop_core::designs::{DesignKind, reference_chip};
//! use sop_tech::{CoreKind, TechnologyNode};
//!
//! let conv = reference_chip(DesignKind::Conventional, TechnologyNode::N40);
//! let sop = reference_chip(
//!     DesignKind::ScaleOut(CoreKind::OutOfOrder),
//!     TechnologyNode::N40,
//! );
//! // The thesis' headline: Scale-Out Processors land about 3.5x the
//! // performance density of conventional chips at 40nm.
//! assert!(sop.performance_density > 3.0 * conv.performance_density);
//! ```

pub mod chip;
pub mod designs;
pub mod energy;
pub mod frontier;
pub mod pd;
pub mod pod;

pub use chip::{try_compose_pods, ChipSpec, Composition};
pub use designs::{reference_chip, DesignKind};
pub use energy::EnergyPerInstruction;
pub use frontier::{pareto_frontier, FrontierPoint};
pub use pd::{interconnect_area_mm2, interconnect_power_w, PodConfig, PodMetrics};
pub use pod::{optimal_pod, preferred_pod, PodSearchSpace};
