//! Chip composition under area, power, and bandwidth budgets (§3.2.3).
//!
//! A chip is either *monolithic* (one shared LLC domain — conventional,
//! tiled, and ideal designs) or a *multi-pod Scale-Out Processor* (several
//! stand-alone pods sharing only memory interfaces and SoC glue). In both
//! cases the composer populates the die with as many compute resources as
//! fit, with memory channels provisioned from the worst-case bandwidth
//! demand — and because adding channels costs die area and power, the
//! provisioning feedback itself can bound the core count, exactly as in
//! the thesis' 40nm LLC-optimal designs.

use crate::pd::{PodConfig, PodMetrics};
use sop_model::DesignPoint;
use sop_tech::budgets::BindingConstraint;
use sop_tech::{ChipBudget, MemoryInterface, SocParams, TechnologyNode};

/// How the compute area of a chip is organized.
#[derive(Debug, Clone, PartialEq)]
pub enum Composition {
    /// One shared LLC domain described by a model design point.
    Monolithic(DesignPoint),
    /// `count` identical, fully independent pods.
    Pods {
        /// The replicated pod.
        pod: PodConfig,
        /// Number of pods on the die.
        count: u32,
    },
}

/// A fully composed chip: the rows of Tables 2.3, 2.4, 3.2, and 5.1.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Human-readable design name.
    pub label: String,
    /// Organization of the compute area.
    pub composition: Composition,
    /// Total cores on the die.
    pub cores: u32,
    /// Total LLC capacity in MB.
    pub llc_mb: f64,
    /// Provisioned memory channels.
    pub memory_channels: u32,
    /// Total die area in mm² (compute + channels + SoC).
    pub die_mm2: f64,
    /// Peak power in watts.
    pub power_w: f64,
    /// Aggregate application IPC averaged across workloads.
    pub aggregate_ipc: f64,
    /// Worst-case off-chip demand in GB/s.
    pub bandwidth_gbps: f64,
    /// Which budget axis binds.
    pub binding: BindingConstraint,
    /// Aggregate IPC per mm² of die.
    pub performance_density: f64,
    /// Aggregate IPC per watt.
    pub perf_per_watt: f64,
}

/// A candidate chip produced by a sizing rule, before budget checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Organization of the compute area.
    pub composition: Composition,
    /// Total cores.
    pub cores: u32,
    /// Total LLC in MB.
    pub llc_mb: f64,
    /// Compute area (cores + caches + fabric) in mm².
    pub compute_area_mm2: f64,
    /// Compute power in watts.
    pub compute_power_w: f64,
    /// Aggregate application IPC.
    pub aggregate_ipc: f64,
    /// Worst-case off-chip demand in GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed channel count override (the conventional design's one channel
    /// per four cores rule); `None` provisions from demand.
    pub channel_override: Option<u32>,
}

impl Candidate {
    /// Finalizes the candidate into a chip at `node`, or `None` if it
    /// violates `budget`.
    pub fn finalize(
        self,
        label: &str,
        node: TechnologyNode,
        budget: &ChipBudget,
    ) -> Option<ChipSpec> {
        let mem = MemoryInterface::at(node);
        let soc = SocParams::at(node);
        let channels = self
            .channel_override
            .unwrap_or_else(|| mem.channels_for(self.bandwidth_gbps));
        if channels > budget.max_memory_channels {
            return None;
        }
        // Demand-provisioned chips must actually be feedable.
        if self.channel_override.is_none()
            && self.bandwidth_gbps > mem.useful_gbps() * f64::from(channels)
        {
            return None;
        }
        let die = self.compute_area_mm2 + f64::from(channels) * mem.area_mm2 + soc.area_mm2;
        let power = self.compute_power_w + f64::from(channels) * mem.power_w + soc.power_w;
        if !budget.admits(die, power, channels) {
            return None;
        }
        Some(ChipSpec {
            label: label.to_owned(),
            binding: budget.binding_constraint(die, power, channels),
            composition: self.composition,
            cores: self.cores,
            llc_mb: self.llc_mb,
            memory_channels: channels,
            die_mm2: die,
            power_w: power,
            aggregate_ipc: self.aggregate_ipc,
            bandwidth_gbps: self.bandwidth_gbps,
            performance_density: self.aggregate_ipc / die,
            perf_per_watt: self.aggregate_ipc / power,
        })
    }
}

/// Composes the largest admissible chip from a family of candidates:
/// `candidate(i)` for `i = 1, 2, ...` must describe progressively larger
/// chips (more tiles / more pods); the composer returns the feasible one
/// with the most aggregate performance.
///
/// # Panics
///
/// Panics if not even `candidate(1)` fits the budget.
pub fn compose_largest<F>(
    label: &str,
    node: TechnologyNode,
    budget: &ChipBudget,
    max_steps: u32,
    candidate: F,
) -> ChipSpec
where
    F: Fn(u32) -> Candidate,
{
    let mut best: Option<ChipSpec> = None;
    for i in 1..=max_steps {
        if let Some(spec) = candidate(i).finalize(label, node, budget) {
            let better = best
                .as_ref()
                .map(|b| spec.aggregate_ipc > b.aggregate_ipc)
                .unwrap_or(true);
            if better {
                best = Some(spec);
            }
        }
    }
    best.unwrap_or_else(|| panic!("no feasible configuration for {label}"))
}

/// Composes a multi-pod Scale-Out chip: as many pods as the budgets
/// allow, or `None` when not even one pod fits.
pub fn try_compose_pods(
    label: &str,
    pod: &PodMetrics,
    node: TechnologyNode,
    budget: &ChipBudget,
) -> Option<ChipSpec> {
    let mut best: Option<ChipSpec> = None;
    for count in 1..=64u32 {
        let cand = Candidate {
            composition: Composition::Pods {
                pod: pod.config,
                count,
            },
            cores: pod.config.cores * count,
            llc_mb: pod.config.llc_mb * f64::from(count),
            compute_area_mm2: pod.area_mm2 * f64::from(count),
            compute_power_w: pod.power_w * f64::from(count),
            aggregate_ipc: pod.aggregate_ipc * f64::from(count),
            bandwidth_gbps: pod.bandwidth_gbps * f64::from(count),
            channel_override: None,
        };
        if let Some(spec) = cand.finalize(label, node, budget) {
            let better = best
                .as_ref()
                .map(|b| spec.aggregate_ipc > b.aggregate_ipc)
                .unwrap_or(true);
            if better {
                best = Some(spec);
            }
        }
    }
    best
}

/// Composes a multi-pod Scale-Out chip: as many pods as the budgets allow.
///
/// # Panics
///
/// Panics if not even one pod fits; use [`try_compose_pods`] to handle
/// oversized pods gracefully.
pub fn compose_pods(
    label: &str,
    pod: &PodMetrics,
    node: TechnologyNode,
    budget: &ChipBudget,
) -> ChipSpec {
    compose_largest(label, node, budget, 64, |count| Candidate {
        composition: Composition::Pods {
            pod: pod.config,
            count,
        },
        cores: pod.config.cores * count,
        llc_mb: pod.config.llc_mb * f64::from(count),
        compute_area_mm2: pod.area_mm2 * f64::from(count),
        compute_power_w: pod.power_w * f64::from(count),
        aggregate_ipc: pod.aggregate_ipc * f64::from(count),
        bandwidth_gbps: pod.bandwidth_gbps * f64::from(count),
        channel_override: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sop_model::Interconnect;
    use sop_tech::CoreKind;

    fn ooo_pod() -> PodMetrics {
        PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar).metrics()
    }

    #[test]
    fn two_ooo_pods_fit_at_40nm() {
        // §3.4.2 chip-level assessment: two pods, 32 cores, ~263mm², ~62W.
        let chip = compose_pods(
            "Scale-Out (OoO)",
            &ooo_pod(),
            TechnologyNode::N40,
            &ChipBudget::server_2d(TechnologyNode::N40),
        );
        assert_eq!(chip.cores, 32);
        assert!((chip.die_mm2 - 263.0).abs() < 6.0, "die {}", chip.die_mm2);
        assert!((chip.power_w - 62.0).abs() < 5.0, "power {}", chip.power_w);
        assert_eq!(chip.memory_channels, 3);
    }

    #[test]
    fn seven_ooo_pods_fit_at_20nm() {
        // §3.4.4: seven pods, 112 cores at 20nm.
        let chip = compose_pods(
            "Scale-Out (OoO)",
            &PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar)
                .at_node(TechnologyNode::N20)
                .metrics(),
            TechnologyNode::N20,
            &ChipBudget::server_2d(TechnologyNode::N20),
        );
        assert!(
            (6..=7).contains(&(chip.cores / 16)),
            "got {} pods",
            chip.cores / 16
        );
    }

    #[test]
    fn channel_demand_is_respected() {
        let pod = ooo_pod();
        let chip = compose_pods(
            "sop",
            &pod,
            TechnologyNode::N40,
            &ChipBudget::server_2d(TechnologyNode::N40),
        );
        let mem = MemoryInterface::at(TechnologyNode::N40);
        assert!(chip.bandwidth_gbps <= mem.useful_gbps() * f64::from(chip.memory_channels));
    }

    #[test]
    fn pd_is_aggregate_over_die() {
        let chip = compose_pods(
            "sop",
            &ooo_pod(),
            TechnologyNode::N40,
            &ChipBudget::server_2d(TechnologyNode::N40),
        );
        assert!((chip.performance_density - chip.aggregate_ipc / chip.die_mm2).abs() < 1e-12);
    }

    #[test]
    fn infeasible_candidate_is_rejected() {
        let cand = Candidate {
            composition: Composition::Pods {
                pod: ooo_pod().config,
                count: 1,
            },
            cores: 16,
            llc_mb: 4.0,
            compute_area_mm2: 400.0, // over any die budget
            compute_power_w: 20.0,
            aggregate_ipc: 10.0,
            bandwidth_gbps: 9.0,
            channel_override: None,
        };
        assert!(cand
            .finalize(
                "x",
                TechnologyNode::N40,
                &ChipBudget::server_2d(TechnologyNode::N40)
            )
            .is_none());
    }

    #[test]
    fn over_bandwidth_candidate_is_rejected() {
        let cand = Candidate {
            composition: Composition::Pods {
                pod: ooo_pod().config,
                count: 1,
            },
            cores: 16,
            llc_mb: 4.0,
            compute_area_mm2: 90.0,
            compute_power_w: 20.0,
            aggregate_ipc: 10.0,
            bandwidth_gbps: 100.0, // would need >6 channels
            channel_override: None,
        };
        assert!(cand
            .finalize(
                "x",
                TechnologyNode::N40,
                &ChipBudget::server_2d(TechnologyNode::N40)
            )
            .is_none());
    }
}
