//! Energy-per-operation decomposition (§3.4.5).
//!
//! The thesis closes chapter 3 by noting that Scale-Out chips beat tiled
//! chips on performance per watt through *memory-hierarchy* energy: the
//! same cores, but smaller caches (less leakage) and shorter
//! communication distances. This module splits a composed chip's energy
//! per committed instruction into core, cache, interconnect, and
//! memory-interface components so that claim is checkable.

use crate::chip::{ChipSpec, Composition};
use crate::pd::interconnect_power_w;
use sop_model::Interconnect;
use sop_tech::{LlcParams, MemoryInterface, SocParams, TechnologyNode};

/// Energy per committed application instruction, in picojoules, split by
/// subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPerInstruction {
    /// Core pipelines and L1s.
    pub core_pj: f64,
    /// LLC arrays (dominated by leakage for scale-out workloads).
    pub llc_pj: f64,
    /// On-chip interconnect.
    pub noc_pj: f64,
    /// Memory interfaces and SoC glue.
    pub io_pj: f64,
}

impl EnergyPerInstruction {
    /// Total energy per instruction.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.llc_pj + self.noc_pj + self.io_pj
    }

    /// The memory-hierarchy share (LLC + NOC): the component §3.4.5 says
    /// Scale-Out organizations shrink.
    pub fn memory_hierarchy_pj(&self) -> f64 {
        self.llc_pj + self.noc_pj
    }

    /// Decomposes a composed chip's power by subsystem and divides by its
    /// committed-instruction rate at `node`'s clock.
    ///
    /// # Panics
    ///
    /// Panics if the chip has no throughput (a composition bug).
    pub fn of(chip: &ChipSpec, node: TechnologyNode) -> Self {
        assert!(chip.aggregate_ipc > 0.0, "chip must commit instructions");
        let (core_kind, cores, llc_mb, interconnect, units) = match &chip.composition {
            Composition::Monolithic(dp) => {
                (dp.core_kind, dp.cores, dp.llc_mb, dp.interconnect, 1u32)
            }
            Composition::Pods { pod, count } => (
                pod.core_kind,
                pod.cores,
                pod.llc_mb,
                Interconnect::Crossbar,
                *count,
            ),
        };
        let core_w = core_kind.power_w(node) * f64::from(cores) * f64::from(units);
        let llc_w = LlcParams::at(node).power_w(llc_mb) * f64::from(units);
        let banks = cores.div_ceil(4);
        let noc_w = interconnect_power_w(interconnect, cores, banks, node) * f64::from(units);
        let io_w = f64::from(chip.memory_channels) * MemoryInterface::at(node).power_w
            + SocParams::at(node).power_w;
        // Instructions per second = aggregate IPC x clock.
        let ips = chip.aggregate_ipc * node.frequency_ghz() * 1e9;
        let pj = |w: f64| w / ips * 1e12;
        EnergyPerInstruction {
            core_pj: pj(core_w),
            llc_pj: pj(llc_w),
            noc_pj: pj(noc_w),
            io_pj: pj(io_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{reference_chip, DesignKind};
    use sop_tech::CoreKind;

    fn energy(design: DesignKind) -> EnergyPerInstruction {
        let node = TechnologyNode::N40;
        EnergyPerInstruction::of(&reference_chip(design, node), node)
    }

    #[test]
    fn totals_match_perf_per_watt() {
        let node = TechnologyNode::N40;
        let chip = reference_chip(DesignKind::ScaleOut(CoreKind::OutOfOrder), node);
        let e = EnergyPerInstruction::of(&chip, node);
        // energy/op = power / (IPC x f); perf/W = (IPC x f)/power: inverses.
        let implied_ppw = 1.0 / (e.total_pj() * 1e-12) / (node.frequency_ghz() * 1e9);
        assert!(
            (implied_ppw - chip.perf_per_watt).abs() / chip.perf_per_watt < 0.01,
            "implied {implied_ppw} vs {}",
            chip.perf_per_watt
        );
    }

    #[test]
    fn scale_out_spends_less_on_the_memory_hierarchy_than_tiled() {
        // §3.4.5: same core type, but smaller caches and shorter distances.
        let sop = energy(DesignKind::ScaleOut(CoreKind::OutOfOrder));
        let tiled = energy(DesignKind::Tiled(CoreKind::OutOfOrder));
        assert!(
            sop.memory_hierarchy_pj() < tiled.memory_hierarchy_pj(),
            "sop {:.1}pJ vs tiled {:.1}pJ",
            sop.memory_hierarchy_pj(),
            tiled.memory_hierarchy_pj()
        );
    }

    #[test]
    fn conventional_chips_burn_the_most_per_instruction() {
        let conv = energy(DesignKind::Conventional);
        for d in [
            DesignKind::Tiled(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::InOrder),
        ] {
            assert!(energy(d).total_pj() < conv.total_pj(), "{d:?}");
        }
    }

    #[test]
    fn in_order_scale_out_is_the_most_frugal() {
        let io = energy(DesignKind::ScaleOut(CoreKind::InOrder));
        let ooo = energy(DesignKind::ScaleOut(CoreKind::OutOfOrder));
        assert!(io.total_pj() < ooo.total_pj());
    }

    #[test]
    fn components_are_positive() {
        let e = energy(DesignKind::ScaleOut(CoreKind::OutOfOrder));
        assert!(e.core_pj > 0.0 && e.llc_pj > 0.0 && e.noc_pj > 0.0 && e.io_pj > 0.0);
    }
}
