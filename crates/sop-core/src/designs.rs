//! The named reference designs of Tables 2.3, 2.4, 3.2, and 5.1.
//!
//! Each design is a sizing rule plus a fabric:
//!
//! * **Conventional** — aggressive cores, a big crossbar-shared LLC (2MB
//!   per core at 40nm, doubled at 20nm as vendors planned), one memory
//!   channel per four cores.
//! * **Tiled** — mesh of tiles, each a core plus a generous LLC slice
//!   (1MB for OoO tiles; the same core-to-cache area ratio for in-order).
//! * **LLC-optimal tiled** — same mesh, but the slice shrinks to what
//!   scale-out workloads actually use (256KB per OoO tile, 64KB per
//!   in-order tile, §2.5.1), freeing area for cores.
//! * **LLC-optimal tiled with IR** — adds R-NUCA-style instruction
//!   replication.
//! * **Ideal** — the LLC-optimal organization with a fixed 4-cycle fabric:
//!   the upper bound no realizable chip reaches.
//! * **OnePod** — a single PD-optimal pod with its own channels and SoC
//!   (the small-die design of chapter 5).
//! * **ScaleOut** — as many pods as the budgets admit.

use crate::chip::{compose_largest, compose_pods, Candidate, ChipSpec, Composition};
use crate::pd::{interconnect_area_mm2, interconnect_power_w, PodConfig};
use sop_model::{DesignPoint, Interconnect};
use sop_tech::{ChipBudget, CoreKind, LlcParams, TechnologyNode};

/// A reference server-chip design family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Xeon-class chip: few aggressive cores, large LLC.
    Conventional,
    /// Tile64-style mesh with generous LLC slices.
    Tiled(CoreKind),
    /// Mesh with right-sized LLC slices.
    LlcOptimalTiled(CoreKind),
    /// LLC-optimal mesh plus instruction replication.
    LlcOptimalTiledIr(CoreKind),
    /// LLC-optimal organization on an ideal 4-cycle fabric.
    Ideal(CoreKind),
    /// A single PD-optimal pod on its own die.
    OnePod(CoreKind),
    /// A multi-pod Scale-Out Processor.
    ScaleOut(CoreKind),
}

impl DesignKind {
    /// Every design of Table 3.2, in its row order.
    pub fn table_3_2() -> Vec<DesignKind> {
        let mut v = vec![DesignKind::Conventional];
        for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
            v.push(DesignKind::Tiled(kind));
            v.push(DesignKind::LlcOptimalTiled(kind));
            v.push(DesignKind::LlcOptimalTiledIr(kind));
            v.push(DesignKind::ScaleOut(kind));
        }
        v
    }

    /// Every design of Table 5.1 (chapter 5's TCO study), in row order.
    pub fn table_5_1() -> Vec<DesignKind> {
        let mut v = vec![DesignKind::Conventional];
        for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
            v.push(DesignKind::Tiled(kind));
            v.push(DesignKind::OnePod(kind));
            v.push(DesignKind::ScaleOut(kind));
        }
        v
    }

    /// The row label used in the thesis' tables.
    pub fn label(self) -> String {
        match self {
            DesignKind::Conventional => "Conventional".to_owned(),
            DesignKind::Tiled(k) => format!("Tiled ({k})"),
            DesignKind::LlcOptimalTiled(k) => format!("LLC-Optimal Tiled ({k})"),
            DesignKind::LlcOptimalTiledIr(k) => format!("LLC-Optimal Tiled with IR ({k})"),
            DesignKind::Ideal(k) => format!("Ideal ({k})"),
            DesignKind::OnePod(k) => format!("1Pod ({k})"),
            DesignKind::ScaleOut(k) => format!("Scale-Out ({k})"),
        }
    }

    /// The core microarchitecture this design uses.
    pub fn core_kind(self) -> CoreKind {
        match self {
            DesignKind::Conventional => CoreKind::Conventional,
            DesignKind::Tiled(k)
            | DesignKind::LlcOptimalTiled(k)
            | DesignKind::LlcOptimalTiledIr(k)
            | DesignKind::Ideal(k)
            | DesignKind::OnePod(k)
            | DesignKind::ScaleOut(k) => k,
        }
    }
}

/// LLC capacity per tile in MB for tiled designs.
fn tiled_slice_mb(kind: CoreKind, llc_optimal: bool) -> f64 {
    match (kind, llc_optimal) {
        // §2.5.1: 1MB per OoO tile; in-order tiles keep the same
        // core-to-cache area ratio (1.3/4.5 of a megabyte's area).
        (CoreKind::OutOfOrder, false) => 1.0,
        (CoreKind::InOrder, false) => 0.3125,
        // §2.5.1: 256KB per OoO tile, 64KB per in-order tile.
        (CoreKind::OutOfOrder, true) => 0.25,
        (CoreKind::InOrder, true) => 0.0625,
        (CoreKind::Conventional, _) => 2.0,
    }
}

/// The thesis' preferred pod for `kind` (§3.4.2/§3.4.3): 16 cores + 4MB
/// for out-of-order, 32 cores + 2MB for in-order.
pub fn thesis_pod(kind: CoreKind, node: TechnologyNode) -> PodConfig {
    let (cores, mb) = match kind {
        CoreKind::OutOfOrder | CoreKind::Conventional => (16, 4.0),
        CoreKind::InOrder => (32, 2.0),
    };
    PodConfig::new(kind, cores, mb, Interconnect::Crossbar).at_node(node)
}

fn monolithic_candidate(
    kind: CoreKind,
    cores: u32,
    llc_mb: f64,
    interconnect: Interconnect,
    ir: bool,
    node: TechnologyNode,
    channel_override: Option<u32>,
) -> Candidate {
    let mut dp = DesignPoint::new(kind, cores, llc_mb, interconnect).at_node(node);
    if ir {
        dp = dp.with_instruction_replication();
    }
    let llc = LlcParams::at(node);
    let area = kind.area_mm2(node) * f64::from(cores)
        + llc.area_mm2(llc_mb)
        + interconnect_area_mm2(interconnect, cores, dp.llc_banks, node);
    let power = kind.power_w(node) * f64::from(cores)
        + llc.power_w(llc_mb)
        + interconnect_power_w(interconnect, cores, dp.llc_banks, node);
    Candidate {
        cores,
        llc_mb,
        compute_area_mm2: area,
        compute_power_w: power,
        aggregate_ipc: dp.mean_aggregate_ipc(),
        bandwidth_gbps: dp.worst_case_bandwidth_gbps(),
        channel_override,
        composition: Composition::Monolithic(dp),
    }
}

/// Composes the reference chip for `design` at `node` under the standard
/// 2D server budget.
pub fn reference_chip(design: DesignKind, node: TechnologyNode) -> ChipSpec {
    reference_chip_with_budget(design, node, &ChipBudget::server_2d(node))
}

/// Composes the reference chip under an explicit budget.
pub fn reference_chip_with_budget(
    design: DesignKind,
    node: TechnologyNode,
    budget: &ChipBudget,
) -> ChipSpec {
    let label = design.label();
    match design {
        DesignKind::Conventional => {
            // 2MB of LLC per core at 40nm; vendors' roadmaps double that
            // at 20nm (§1.2). One channel per four cores.
            let llc_per_core = if node == TechnologyNode::N20 {
                4.0
            } else {
                2.0
            };
            compose_largest(&label, node, budget, 128, |i| {
                let cores = 2 * i;
                monolithic_candidate(
                    CoreKind::Conventional,
                    cores,
                    llc_per_core * f64::from(cores),
                    Interconnect::Crossbar,
                    false,
                    node,
                    Some(cores.div_ceil(4)),
                )
            })
        }
        DesignKind::Tiled(kind) => {
            let slice = tiled_slice_mb(kind, false);
            compose_largest(&label, node, budget, 128, |i| {
                let cores = 4 * i;
                monolithic_candidate(
                    kind,
                    cores,
                    slice * f64::from(cores),
                    Interconnect::Mesh,
                    false,
                    node,
                    None,
                )
            })
        }
        DesignKind::LlcOptimalTiled(kind) | DesignKind::LlcOptimalTiledIr(kind) => {
            let ir = matches!(design, DesignKind::LlcOptimalTiledIr(_));
            let slice = tiled_slice_mb(kind, true);
            compose_largest(&label, node, budget, 128, |i| {
                let cores = 4 * i;
                monolithic_candidate(
                    kind,
                    cores,
                    slice * f64::from(cores),
                    Interconnect::Mesh,
                    ir,
                    node,
                    None,
                )
            })
        }
        DesignKind::Ideal(kind) => {
            let slice = tiled_slice_mb(kind, true);
            compose_largest(&label, node, budget, 128, |i| {
                let cores = 4 * i;
                monolithic_candidate(
                    kind,
                    cores,
                    slice * f64::from(cores),
                    Interconnect::Ideal,
                    false,
                    node,
                    None,
                )
            })
        }
        DesignKind::OnePod(kind) => {
            let pod = thesis_pod(kind, node).metrics();
            compose_largest(&label, node, budget, 1, |_| Candidate {
                composition: Composition::Pods {
                    pod: pod.config,
                    count: 1,
                },
                cores: pod.config.cores,
                llc_mb: pod.config.llc_mb,
                compute_area_mm2: pod.area_mm2,
                compute_power_w: pod.power_w,
                aggregate_ipc: pod.aggregate_ipc,
                bandwidth_gbps: pod.bandwidth_gbps,
                channel_override: None,
            })
        }
        DesignKind::ScaleOut(kind) => {
            let pod = thesis_pod(kind, node).metrics();
            compose_pods(&label, &pod, node, budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_40nm_matches_table_2_3() {
        let chip = reference_chip(DesignKind::Conventional, TechnologyNode::N40);
        assert_eq!(chip.cores, 6, "got {} cores", chip.cores);
        assert_eq!(chip.llc_mb, 12.0);
        assert_eq!(chip.memory_channels, 2);
        assert!((chip.die_mm2 - 276.0).abs() < 6.0, "die {}", chip.die_mm2);
        assert!((chip.power_w - 94.0).abs() < 3.0, "power {}", chip.power_w);
    }

    #[test]
    fn tiled_ooo_40nm_matches_table_2_3() {
        let chip = reference_chip(DesignKind::Tiled(CoreKind::OutOfOrder), TechnologyNode::N40);
        assert_eq!(chip.cores, 20, "got {} cores", chip.cores);
        assert_eq!(chip.llc_mb, 20.0);
        // Our worst-case traffic model provisions a second memory channel
        // (the thesis' one-channel tiled chip sits within 8% of the same
        // die size).
        assert!((chip.die_mm2 - 245.0).abs() < 15.0, "die {}", chip.die_mm2);
    }

    #[test]
    fn llc_optimal_ooo_40nm_matches_table_2_3() {
        // The thesis reports 32 cores; our composer finds one more grid row
        // fits (36 tiles at 276mm²) under the same budgets. Both satisfy the
        // 256KB-per-tile sizing rule.
        let chip = reference_chip(
            DesignKind::LlcOptimalTiled(CoreKind::OutOfOrder),
            TechnologyNode::N40,
        );
        assert!((32..=36).contains(&chip.cores), "got {} cores", chip.cores);
        assert_eq!(chip.llc_mb / f64::from(chip.cores), 0.25);
    }

    #[test]
    fn scale_out_ooo_40nm_has_two_pods() {
        let chip = reference_chip(
            DesignKind::ScaleOut(CoreKind::OutOfOrder),
            TechnologyNode::N40,
        );
        assert_eq!(chip.cores, 32);
        match chip.composition {
            Composition::Pods { count, .. } => assert_eq!(count, 2),
            _ => panic!("scale-out chips are pod-composed"),
        }
    }

    #[test]
    fn scale_out_io_40nm_has_three_pods() {
        let chip = reference_chip(DesignKind::ScaleOut(CoreKind::InOrder), TechnologyNode::N40);
        assert_eq!(chip.cores, 96, "got {}", chip.cores);
        assert!((chip.die_mm2 - 270.0).abs() < 10.0, "die {}", chip.die_mm2);
    }

    #[test]
    fn one_pod_chips_match_table_5_1() {
        let ooo = reference_chip(
            DesignKind::OnePod(CoreKind::OutOfOrder),
            TechnologyNode::N40,
        );
        assert_eq!(ooo.cores, 16);
        assert!((ooo.die_mm2 - 158.0).abs() < 5.0, "die {}", ooo.die_mm2);
        assert!((ooo.power_w - 36.0).abs() < 3.0, "power {}", ooo.power_w);
        let io = reference_chip(DesignKind::OnePod(CoreKind::InOrder), TechnologyNode::N40);
        assert_eq!(io.cores, 32);
        assert!((io.die_mm2 - 118.0).abs() < 5.0, "die {}", io.die_mm2);
        assert!((io.power_w - 34.0).abs() < 3.0, "power {}", io.power_w);
    }

    #[test]
    fn pd_ordering_holds_at_40nm_for_ooo() {
        // Table 3.2 ordering: conventional < tiled < LLC-opt < +IR <=
        // Scale-Out < ideal.
        let node = TechnologyNode::N40;
        let k = CoreKind::OutOfOrder;
        let conv = reference_chip(DesignKind::Conventional, node).performance_density;
        let tiled = reference_chip(DesignKind::Tiled(k), node).performance_density;
        let opt = reference_chip(DesignKind::LlcOptimalTiled(k), node).performance_density;
        let ir = reference_chip(DesignKind::LlcOptimalTiledIr(k), node).performance_density;
        let sop = reference_chip(DesignKind::ScaleOut(k), node).performance_density;
        let ideal = reference_chip(DesignKind::Ideal(k), node).performance_density;
        assert!(conv < tiled, "conv {conv} vs tiled {tiled}");
        assert!(tiled < opt, "tiled {tiled} vs opt {opt}");
        assert!(opt < ir * 1.02, "opt {opt} vs ir {ir}");
        assert!(ir <= sop * 1.03, "ir {ir} vs sop {sop}");
        assert!(sop < ideal, "sop {sop} vs ideal {ideal}");
    }

    #[test]
    fn pd_ordering_holds_at_40nm_for_in_order() {
        let node = TechnologyNode::N40;
        let k = CoreKind::InOrder;
        let tiled = reference_chip(DesignKind::Tiled(k), node).performance_density;
        let opt = reference_chip(DesignKind::LlcOptimalTiled(k), node).performance_density;
        let sop = reference_chip(DesignKind::ScaleOut(k), node).performance_density;
        let ideal = reference_chip(DesignKind::Ideal(k), node).performance_density;
        assert!(tiled < opt && opt < sop * 1.05 && sop < ideal);
    }

    #[test]
    fn in_order_designs_out_density_ooo() {
        // Table 3.2: every in-order variant has higher PD than its OoO twin.
        let node = TechnologyNode::N40;
        for mk in [
            DesignKind::Tiled,
            DesignKind::LlcOptimalTiled,
            DesignKind::ScaleOut,
        ] {
            let ooo = reference_chip(mk(CoreKind::OutOfOrder), node).performance_density;
            let io = reference_chip(mk(CoreKind::InOrder), node).performance_density;
            assert!(io > ooo, "{:?}", mk(CoreKind::InOrder));
        }
    }

    #[test]
    fn scaling_to_20nm_multiplies_pd() {
        // §2.5.2/§3.4.4: 20nm improves PD by roughly 2.6x-3.7x.
        for design in [
            DesignKind::Conventional,
            DesignKind::Tiled(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::OutOfOrder),
        ] {
            let pd40 = reference_chip(design, TechnologyNode::N40).performance_density;
            let pd20 = reference_chip(design, TechnologyNode::N20).performance_density;
            let gain = pd20 / pd40;
            assert!((2.0..4.3).contains(&gain), "{design:?}: gain {gain}");
        }
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(
            DesignKind::ScaleOut(CoreKind::OutOfOrder).label(),
            "Scale-Out (OoO)"
        );
        assert_eq!(DesignKind::OnePod(CoreKind::InOrder).label(), "1Pod (IO)");
    }

    #[test]
    fn table_rosters_have_expected_sizes() {
        assert_eq!(DesignKind::table_3_2().len(), 9);
        assert_eq!(DesignKind::table_5_1().len(), 7);
    }
}
