//! Pareto analysis over the design space.
//!
//! Table 3.2 reports both performance density and performance per watt;
//! a design only matters if nothing else beats it on *both*. This module
//! extracts the PD/efficiency Pareto frontier from any set of evaluated
//! chips or pods — the lens through which the thesis' "Scale-Out chips
//! dominate" claim becomes a checkable statement.

use crate::chip::ChipSpec;

/// A point in the two-objective (performance density, perf/W) space.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Human-readable label.
    pub label: String,
    /// Performance density (aggregate IPC per mm²).
    pub performance_density: f64,
    /// Energy efficiency (aggregate IPC per watt).
    pub perf_per_watt: f64,
}

impl FrontierPoint {
    /// Whether `self` dominates `other`: at least as good on both axes
    /// and strictly better on one.
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        let ge = self.performance_density >= other.performance_density
            && self.perf_per_watt >= other.perf_per_watt;
        let gt = self.performance_density > other.performance_density
            || self.perf_per_watt > other.perf_per_watt;
        ge && gt
    }
}

impl From<&ChipSpec> for FrontierPoint {
    fn from(chip: &ChipSpec) -> Self {
        FrontierPoint {
            label: chip.label.clone(),
            performance_density: chip.performance_density,
            perf_per_watt: chip.perf_per_watt,
        }
    }
}

/// Returns the non-dominated subset of `points`, sorted by descending
/// performance density. Duplicate-valued points are all retained.
pub fn pareto_frontier(points: &[FrontierPoint]) -> Vec<FrontierPoint> {
    let mut frontier: Vec<FrontierPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| b.performance_density.total_cmp(&a.performance_density));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{reference_chip, DesignKind};
    use sop_tech::{CoreKind, TechnologyNode};

    fn pt(label: &str, pd: f64, ppw: f64) -> FrontierPoint {
        FrontierPoint {
            label: label.to_owned(),
            performance_density: pd,
            perf_per_watt: ppw,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let points = vec![
            pt("a", 1.0, 1.0),
            pt("b", 2.0, 2.0),
            pt("c", 1.5, 0.5),
            pt("d", 0.5, 3.0),
        ];
        let f = pareto_frontier(&points);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["b", "d"]);
    }

    #[test]
    fn domination_requires_strict_improvement() {
        let a = pt("a", 1.0, 1.0);
        let b = pt("b", 1.0, 1.0);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal points both survive.
        assert_eq!(pareto_frontier(&[a, b]).len(), 2);
    }

    #[test]
    fn scale_out_designs_sit_on_the_frontier() {
        // Table 3.2's implicit claim: at each core type, the Scale-Out
        // chip is not dominated by any realizable alternative.
        let node = TechnologyNode::N40;
        let designs = [
            DesignKind::Conventional,
            DesignKind::Tiled(CoreKind::OutOfOrder),
            DesignKind::LlcOptimalTiled(CoreKind::OutOfOrder),
            DesignKind::LlcOptimalTiledIr(CoreKind::OutOfOrder),
            DesignKind::ScaleOut(CoreKind::OutOfOrder),
            DesignKind::Tiled(CoreKind::InOrder),
            DesignKind::LlcOptimalTiled(CoreKind::InOrder),
            DesignKind::ScaleOut(CoreKind::InOrder),
        ];
        let points: Vec<FrontierPoint> = designs
            .iter()
            .map(|&d| FrontierPoint::from(&reference_chip(d, node)))
            .collect();
        let frontier = pareto_frontier(&points);
        assert!(
            frontier.iter().any(|p| p.label == "Scale-Out (IO)"),
            "frontier: {:?}",
            frontier
                .iter()
                .map(|p| p.label.as_str())
                .collect::<Vec<_>>()
        );
        // The conventional chip never makes the frontier.
        assert!(frontier.iter().all(|p| p.label != "Conventional"));
    }

    #[test]
    fn frontier_is_sorted_by_density() {
        let points = vec![pt("lo", 1.0, 3.0), pt("hi", 3.0, 1.0), pt("mid", 2.0, 2.0)];
        let f = pareto_frontier(&points);
        for pair in f.windows(2) {
            assert!(pair[0].performance_density >= pair[1].performance_density);
        }
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
