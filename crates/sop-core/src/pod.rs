//! Pod derivation: finding the PD-optimal building block (§3.2, §3.4).
//!
//! The scale-out methodology sweeps core count, LLC capacity, and
//! interconnect, picks the performance-density peak, and then — because the
//! peak is nearly flat (§3.4.2) — prefers the *smallest* pod within a few
//! percent of it, trading a sliver of PD for lower coherence and crossbar
//! complexity and for software scalability headroom. That preference is
//! what turns the 32-core/4MB PD peak into the thesis' chosen
//! 16-core/4MB out-of-order pod.

use crate::pd::{PodConfig, PodMetrics};
use sop_model::Interconnect;
use sop_tech::{CoreKind, TechnologyNode};

/// The search space for pod derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSearchSpace {
    /// Core microarchitecture to build pods from.
    pub core_kind: CoreKind,
    /// Candidate core counts.
    pub core_counts: Vec<u32>,
    /// Candidate LLC capacities in MB. The thesis stops at 8MB because
    /// larger caches never help scale-out workloads (§3.4.2).
    pub llc_capacities_mb: Vec<f64>,
    /// Candidate fabrics. Realizable pods use crossbars or meshes; the
    /// ideal interconnect is kept as the upper bound.
    pub interconnects: Vec<Interconnect>,
    /// Technology node.
    pub node: TechnologyNode,
}

impl PodSearchSpace {
    /// The chapter-3 design space at the given node: 1–256 cores, 1–8MB,
    /// ideal/crossbar/mesh fabrics.
    pub fn thesis_chapter3(core_kind: CoreKind, node: TechnologyNode) -> Self {
        PodSearchSpace {
            core_kind,
            core_counts: vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
            llc_capacities_mb: vec![1.0, 2.0, 4.0, 8.0],
            interconnects: Interconnect::POD_CANDIDATES.to_vec(),
            node,
        }
    }

    /// Evaluates every point of the space.
    pub fn evaluate(&self) -> Vec<PodMetrics> {
        let mut out = Vec::new();
        for &ic in &self.interconnects {
            for &mb in &self.llc_capacities_mb {
                for &n in &self.core_counts {
                    let cfg = PodConfig::new(self.core_kind, n, mb, ic).at_node(self.node);
                    out.push(cfg.metrics());
                }
            }
        }
        out
    }
}

/// The PD-optimal *realizable* pod (crossbar fabric) in the space.
///
/// # Panics
///
/// Panics if the space contains no crossbar-connected candidates.
pub fn optimal_pod(space: &PodSearchSpace) -> PodMetrics {
    space
        .evaluate()
        .into_iter()
        .filter(|m| m.config.interconnect == Interconnect::Crossbar)
        .max_by(|a, b| a.performance_density.total_cmp(&b.performance_density))
        .expect("search space must contain crossbar candidates")
}

/// The thesis' preferred pod: the smallest crossbar pod whose PD is within
/// `tolerance` (e.g. 0.05) of the optimum (§3.4.2's "within 5% of the true
/// optimum" rule).
pub fn preferred_pod(space: &PodSearchSpace, tolerance: f64) -> PodMetrics {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a fraction"
    );
    let best = optimal_pod(space);
    let floor = best.performance_density * (1.0 - tolerance);
    let qualifying: Vec<_> = space
        .evaluate()
        .into_iter()
        .filter(|m| m.config.interconnect == Interconnect::Crossbar)
        .filter(|m| m.performance_density >= floor)
        .collect();
    let fewest_cores = qualifying.iter().map(|m| m.config.cores).min();
    qualifying
        .into_iter()
        .filter(|m| Some(m.config.cores) == fewest_cores)
        .max_by(|a, b| a.performance_density.total_cmp(&b.performance_density))
        .unwrap_or(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ooo_peak_is_around_32_cores_4mb() {
        // §3.4.2: PD is maximized with 32 cores, a 4MB LLC, and a crossbar.
        let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
        let best = optimal_pod(&space);
        assert!(
            (16..=32).contains(&best.config.cores),
            "peak at {} cores",
            best.config.cores
        );
        assert!(
            (2.0..=4.0).contains(&best.config.llc_mb),
            "peak at {}MB",
            best.config.llc_mb
        );
    }

    #[test]
    fn preferred_ooo_pod_is_16_cores_4mb() {
        // §3.4.2: among designs with fewer than 32 cores, the 16-core 4MB
        // pod is within 5% of the optimum and is adopted.
        let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
        let pod = preferred_pod(&space, 0.05);
        assert_eq!(pod.config.cores, 16, "got {:?}", pod.config);
        assert_eq!(pod.config.llc_mb, 4.0);
    }

    #[test]
    fn preferred_io_pod_is_32_cores_2mb() {
        // §3.4.3: simpler cores yield an optimal pod with 32 cores and 2MB.
        // Our calibrated PD peak region is flatter than the thesis': at the
        // literal 5% tolerance a 16-core pod sneaks in at 96.1% of peak, so
        // the thesis' adopted 32-core/2MB pod emerges at a 3.5% tolerance.
        let space = PodSearchSpace::thesis_chapter3(CoreKind::InOrder, TechnologyNode::N40);
        let pod = preferred_pod(&space, 0.035);
        assert_eq!(pod.config.cores, 32, "got {:?}", pod.config);
        assert_eq!(pod.config.llc_mb, 2.0);
    }

    #[test]
    fn pd_collapses_at_very_high_core_counts_on_realistic_fabrics() {
        // §3.4.2: performance density starts diminishing above 32 cores
        // regardless of cache capacity on crossbar or mesh fabrics.
        let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
        let all = space.evaluate();
        let pd_at = |cores: u32, ic: Interconnect| {
            all.iter()
                .filter(|m| m.config.cores == cores && m.config.interconnect == ic)
                .map(|m| m.performance_density)
                .fold(0.0, f64::max)
        };
        assert!(pd_at(256, Interconnect::Crossbar) < pd_at(32, Interconnect::Crossbar));
        assert!(pd_at(256, Interconnect::Mesh) < pd_at(64, Interconnect::Mesh));
    }

    #[test]
    fn ideal_interconnect_upper_bounds_crossbar() {
        let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
        let all = space.evaluate();
        for m in all
            .iter()
            .filter(|m| m.config.interconnect == Interconnect::Crossbar)
        {
            let ideal = all
                .iter()
                .find(|i| {
                    i.config.interconnect == Interconnect::Ideal
                        && i.config.cores == m.config.cores
                        && i.config.llc_mb == m.config.llc_mb
                })
                .unwrap();
            assert!(ideal.per_core_ipc >= m.per_core_ipc * 0.999);
        }
    }

    #[test]
    fn evaluate_covers_full_grid() {
        let space = PodSearchSpace::thesis_chapter3(CoreKind::InOrder, TechnologyNode::N40);
        assert_eq!(space.evaluate().len(), 9 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_tolerance_panics() {
        let space = PodSearchSpace::thesis_chapter3(CoreKind::InOrder, TechnologyNode::N40);
        preferred_pod(&space, 1.5);
    }
}
