//! Performance density: throughput per unit of silicon (§2.3, §3.1).
//!
//! Given a core microarchitecture, PD compares designs that differ in core
//! count, LLC size, and interconnect by dividing aggregate application IPC
//! by the die area those resources occupy. [`PodConfig`] evaluates one
//! core/cache/fabric grouping; chip-level PD (which also charges memory
//! interfaces and SoC glue) lives in [`crate::chip`].

use sop_model::{DesignPoint, Interconnect};
use sop_tech::{CoreKind, LlcParams, TechnologyNode};

/// Die area of the interconnect for `cores` cores and `banks` LLC banks, in
/// mm² at `node`.
///
/// Table 2.1 bounds on-die interconnect area to 0.2–4.5mm² at 40nm for the
/// fabrics chapter 3 considers: crossbars are tiny at pod scale (a 16-core
/// pod's area is fully accounted for by cores and cache, §3.4.2), while a
/// 64-tile mesh's routers sum to a few mm² (Fig 4.7).
pub fn interconnect_area_mm2(
    interconnect: Interconnect,
    cores: u32,
    banks: u32,
    node: TechnologyNode,
) -> f64 {
    let scale = node.area_scale_from_40nm();
    let base = match interconnect {
        Interconnect::Ideal => 0.2,
        Interconnect::Crossbar => {
            // Quadratic in port count: negligible at pod scale (~0.4mm²
            // for 16+4 ports), but the wiring of a many-ported crossbar
            // grows without bound — the §2.2.1 scalability argument.
            let ports = f64::from(cores + banks);
            (0.0016 * ports * ports).max(0.2)
        }
        Interconnect::Mesh => {
            // Per-tile 5-port router with 3 VCs x 5 flits of buffering:
            // 64 tiles come to ~3.5mm² at 32nm (the Fig 4.7 mesh bar).
            0.085 * f64::from(cores)
        }
        Interconnect::FlattenedButterfly => {
            // 15-port routers with deep SRAM buffers and long repeated
            // links: ~7x the mesh (Fig 4.7's >23mm² at 32nm, 64 tiles).
            0.6 * f64::from(cores)
        }
        Interconnect::NocOut => {
            // Reduction + dispersion trees are 18% each of a 2.5mm² total
            // and the LLC-row butterfly is 64% (Fig 4.7); two banks share
            // each LLC-tile router.
            let llc_tiles = f64::from(banks.div_ceil(2));
            0.022 * f64::from(cores) + 0.3125 * llc_tiles
        }
    };
    base * scale
}

/// Power of the interconnect in watts (Table 2.1 bounds it below 5W;
/// §4.4.4 measures 1.3–1.8W for 64-core pods at 32nm).
pub fn interconnect_power_w(
    interconnect: Interconnect,
    cores: u32,
    _banks: u32,
    node: TechnologyNode,
) -> f64 {
    let scale = node.power_scale_from_40nm();
    let per_core = match interconnect {
        Interconnect::Ideal => 0.01,
        Interconnect::Crossbar => 0.02,
        Interconnect::Mesh => 0.035,
        Interconnect::FlattenedButterfly => 0.031,
        Interconnect::NocOut => 0.025,
    };
    (per_core * f64::from(cores)).min(5.0) * scale
}

/// One candidate pod (or monolithic compute cluster): cores + LLC + fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodConfig {
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// Cores in the pod.
    pub cores: u32,
    /// LLC capacity in MB.
    pub llc_mb: f64,
    /// Core-to-cache interconnect.
    pub interconnect: Interconnect,
    /// Technology node.
    pub node: TechnologyNode,
}

impl PodConfig {
    /// A pod at 40nm.
    pub fn new(core_kind: CoreKind, cores: u32, llc_mb: f64, interconnect: Interconnect) -> Self {
        PodConfig {
            core_kind,
            cores,
            llc_mb,
            interconnect,
            node: TechnologyNode::N40,
        }
    }

    /// Returns a copy at a different node.
    pub fn at_node(mut self, node: TechnologyNode) -> Self {
        self.node = node;
        self
    }

    /// The analytic-model design point for this pod.
    pub fn design_point(&self) -> DesignPoint {
        DesignPoint::new(self.core_kind, self.cores, self.llc_mb, self.interconnect)
            .at_node(self.node)
    }

    /// Evaluates area, power, performance, and PD.
    pub fn metrics(&self) -> PodMetrics {
        let dp = self.design_point();
        let llc = LlcParams::at(self.node);
        let core_area = self.core_kind.area_mm2(self.node) * f64::from(self.cores);
        let llc_area = llc.area_mm2(self.llc_mb);
        let noc_area =
            interconnect_area_mm2(self.interconnect, self.cores, dp.llc_banks, self.node);
        let area = core_area + llc_area + noc_area;
        let power = self.core_kind.power_w(self.node) * f64::from(self.cores)
            + llc.power_w(self.llc_mb)
            + interconnect_power_w(self.interconnect, self.cores, dp.llc_banks, self.node);
        let per_core_ipc = dp.mean_per_core_ipc();
        let aggregate_ipc = per_core_ipc * f64::from(self.cores);
        PodMetrics {
            config: *self,
            area_mm2: area,
            power_w: power,
            per_core_ipc,
            aggregate_ipc,
            performance_density: aggregate_ipc / area,
            bandwidth_gbps: dp.worst_case_bandwidth_gbps(),
        }
    }
}

/// Evaluated characteristics of a [`PodConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodMetrics {
    /// The configuration these metrics describe.
    pub config: PodConfig,
    /// Silicon area of cores + LLC + interconnect (no memory interfaces).
    pub area_mm2: f64,
    /// Peak power of the same resources.
    pub power_w: f64,
    /// Mean per-core application IPC across the workloads.
    pub per_core_ipc: f64,
    /// Aggregate application IPC of the pod.
    pub aggregate_ipc: f64,
    /// Aggregate IPC per mm² — the thesis' optimization metric.
    pub performance_density: f64,
    /// Worst-case off-chip bandwidth demand across workloads, GB/s.
    pub bandwidth_gbps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ooo_pod_area_matches_section_3_4_2() {
        // §3.4.2: the 16-core, 4MB OoO pod occupies 92mm² and draws ~20W.
        let m = PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar).metrics();
        assert!((m.area_mm2 - 92.0).abs() < 1.5, "area {}", m.area_mm2);
        assert!((m.power_w - 20.0).abs() < 1.5, "power {}", m.power_w);
    }

    #[test]
    fn io_pod_area_matches_section_3_4_3() {
        // §3.4.3: the 32-core, 2MB in-order pod occupies 52mm², draws 17W.
        let m = PodConfig::new(CoreKind::InOrder, 32, 2.0, Interconnect::Crossbar).metrics();
        assert!((m.area_mm2 - 52.0).abs() < 2.5, "area {}", m.area_mm2);
        assert!((m.power_w - 17.0).abs() < 1.5, "power {}", m.power_w);
    }

    #[test]
    fn crossbar_area_is_negligible_at_pod_scale() {
        let a = interconnect_area_mm2(Interconnect::Crossbar, 16, 4, TechnologyNode::N40);
        assert!(a < 1.0, "got {a}");
    }

    #[test]
    fn fbfly_costs_much_more_than_mesh() {
        // Fig 4.7: nearly 7x at 64 tiles.
        let mesh = interconnect_area_mm2(Interconnect::Mesh, 64, 64, TechnologyNode::N32);
        let fb = interconnect_area_mm2(
            Interconnect::FlattenedButterfly,
            64,
            64,
            TechnologyNode::N32,
        );
        let ratio = fb / mesh;
        assert!((5.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn nocout_area_is_the_smallest_fabric_at_64_cores() {
        let node = TechnologyNode::N32;
        let no = interconnect_area_mm2(Interconnect::NocOut, 64, 16, node);
        let mesh = interconnect_area_mm2(Interconnect::Mesh, 64, 64, node);
        let fb = interconnect_area_mm2(Interconnect::FlattenedButterfly, 64, 64, node);
        assert!(no < mesh && no < fb);
        // Fig 4.7: about 2.5mm² at 32nm.
        assert!((no - 2.5).abs() < 1.0, "got {no}");
    }

    #[test]
    fn noc_power_stays_under_5w() {
        for ic in [
            Interconnect::Mesh,
            Interconnect::FlattenedButterfly,
            Interconnect::NocOut,
            Interconnect::Crossbar,
        ] {
            let p = interconnect_power_w(ic, 256, 64, TechnologyNode::N40);
            assert!(p <= 5.0);
        }
    }

    #[test]
    fn pd_reflects_aggregate_over_area() {
        let m = PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar).metrics();
        assert!((m.performance_density - m.aggregate_ipc / m.area_mm2).abs() < 1e-12);
    }

    #[test]
    fn node_scaling_shrinks_pods() {
        let p40 = PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar);
        let p20 = p40.at_node(TechnologyNode::N20);
        assert!(p20.metrics().area_mm2 < 0.3 * p40.metrics().area_mm2);
    }
}
