//! Synthetic instruction-trace generation for the cycle-level simulator.
//!
//! Flexus replays full-system SPARC traces; we synthesize statistically
//! equivalent core event streams from a [`WorkloadProfile`]. Each stream
//! interleaves compute bursts with L1-I fetch misses, L1-D read/write
//! misses, and (beyond the software-scalability knee) synchronization
//! stalls. Addresses are drawn from three regions that mirror the thesis'
//! working-set decomposition (§2.1, §4.2.1):
//!
//! * a *shared* region (instructions + OS data) sized to the workload's
//!   capture capacity — hits in the LLC once warm, shared by every core;
//! * a *private* region per core — small, mostly LLC-resident;
//! * a *dataset* region — vastly larger than any LLC, so accesses to it
//!   miss and go to memory.
//!
//! A small fraction of data accesses touch lines recently written by
//! another core, which is what produces the (rare) snoop activity of
//! Fig 4.3.

use crate::profile::WorkloadProfile;
use crate::zipf::ZipfSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sop_tech::CoreKind;

/// A 64-byte cache-line address.
pub type LineAddr = u64;

/// The profiles carry *serialization-weighted* L1-I miss rates (what the
/// analytic model charges in full); the raw architectural rate that a
/// cycle simulator must replay is higher because front ends hide part of
/// the fetch latency. CloudSuite's measured L1-I MPKI runs well above the
/// effective rates, so traces scale instruction fetches up by this factor
/// while the simulated core hides the same share via its fetch overlap.
pub const TRACE_IFETCH_FACTOR: f64 = 1.6;

/// One event in a core's synthetic execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// Commit `instructions` instructions of pure compute (no L1 misses).
    Compute {
        /// Number of instructions in the burst.
        instructions: u32,
    },
    /// An L1-I miss: fetch `line` from the LLC. Stalls the front end.
    InstructionFetch {
        /// Line address within the shared instruction region.
        line: LineAddr,
    },
    /// An L1-D read miss for `line`.
    DataRead {
        /// Line address.
        line: LineAddr,
    },
    /// An L1-D write miss (or upgrade) for `line`; requires ownership and
    /// may trigger invalidation snoops.
    DataWrite {
        /// Line address.
        line: LineAddr,
    },
    /// A software synchronization stall of `cycles` (lock/barrier time that
    /// appears beyond the scalability knee).
    SyncStall {
        /// Stall length in cycles.
        cycles: u32,
    },
}

/// Configuration for generating one core's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Workload statistics to synthesize from.
    pub profile: WorkloadProfile,
    /// Core microarchitecture executing the trace.
    pub core_kind: CoreKind,
    /// This core's index within the machine.
    pub core_id: u32,
    /// Total cores running the workload (drives sharing and sync stalls).
    pub total_cores: u32,
    /// RNG seed; streams are deterministic given (seed, core_id).
    pub seed: u64,
}

/// Address-space layout constants. Regions are disjoint by construction.
const SHARED_BASE: LineAddr = 0x0000_0000_0000;
const PRIVATE_BASE: LineAddr = 0x0100_0000_0000;
const DATASET_BASE: LineAddr = 0x0200_0000_0000;
const LINES_PER_MB: u64 = (1 << 20) / 64;

/// An infinite, deterministic iterator of [`CoreEvent`]s.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    rng: SmallRng,
    /// Lines in the shared (instruction + OS) region.
    shared_lines: u64,
    /// Lines in this core's private region.
    private_lines: u64,
    /// Lines in the (effectively infinite) dataset region.
    dataset_lines: u64,
    /// Next sequential dataset cursor (scale-out dataset scans mix random
    /// and streaming access).
    dataset_cursor: u64,
    /// Per-event probabilities, derived once from the profile.
    p_ifetch: f64,
    p_dread: f64,
    p_dwrite: f64,
    /// Probability that a data access targets the dataset region.
    p_dataset: f64,
    /// Probability that a data access targets the shared region.
    p_shared_data: f64,
    /// Probability of a sync stall per event slot (0 below the knee).
    p_sync: f64,
    /// The event that follows the compute gap just emitted, if any.
    pending: Option<CoreEvent>,
    /// Popularity skew over the shared region: instruction streams have a
    /// hot head (dispatch loops, allocator, syscall paths).
    shared_popularity: ZipfSampler,
}

impl TraceGenerator {
    /// Creates a generator for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core_id >= total_cores` or `total_cores == 0`.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.total_cores > 0, "need at least one core");
        assert!(cfg.core_id < cfg.total_cores, "core_id out of range");
        let p = &cfg.profile;
        let (l1i, l1d) = p.l1_mpki_for(cfg.core_kind);
        let write_fraction = 0.3;
        // Region sizes: the shared set saturates around 3x its e-folding
        // capacity; privates likewise; the dataset dwarfs any LLC.
        let shared_lines = ((p.miss_curve.shared_capture_mb * 3.0) * LINES_PER_MB as f64) as u64;
        let private_lines = ((p.miss_curve.private_capture_mb * 3.0) * LINES_PER_MB as f64) as u64;
        let dataset_lines = 4096 * LINES_PER_MB; // 256GB: never cacheable
        let total_data = l1d / 1000.0;
        // Split data accesses so the steady-state LLC miss rate approaches
        // the profile's dataset floor.
        let p_dataset_given_data = (p.miss_curve.dataset_mpki / l1d.max(1e-9)).clamp(0.05, 0.95);
        let p_shared_given_data = (p.snoop_fraction * 2.0).clamp(0.01, 0.5);
        let eff = p.scalability.efficiency(cfg.total_cores);
        let p_sync = if eff < 1.0 { (1.0 - eff) * 0.06 } else { 0.0 };
        let mut hasher = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        hasher ^= u64::from(cfg.core_id).wrapping_mul(0xD1B5_4A32_D192_ED03);
        TraceGenerator {
            rng: SmallRng::seed_from_u64(hasher),
            shared_lines: shared_lines.max(64),
            private_lines: private_lines.max(16),
            dataset_lines,
            dataset_cursor: 0,
            p_ifetch: l1i * TRACE_IFETCH_FACTOR / 1000.0,
            p_dread: total_data * (1.0 - write_fraction),
            p_dwrite: total_data * write_fraction,
            p_dataset: p_dataset_given_data,
            p_shared_data: p_shared_given_data,
            p_sync,
            pending: None,
            shared_popularity: ZipfSampler::new(shared_lines.max(64), 0.35),
            cfg,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Expected L1 misses per kilo-instruction this stream will produce.
    pub fn expected_l1_mpki(&self) -> f64 {
        (self.p_ifetch + self.p_dread + self.p_dwrite) * 1000.0
    }

    fn shared_line(&mut self) -> LineAddr {
        // A 40/60 blend of hot-head (Zipf) and uniform reuse keeps the
        // shared footprint's effective size near its nominal size while
        // giving the fetch stream a realistic hot spot.
        if self.rng.gen_bool(0.4) {
            SHARED_BASE + self.shared_popularity.index(self.rng.gen())
        } else {
            SHARED_BASE + self.rng.gen_range(0..self.shared_lines)
        }
    }

    fn private_line(&mut self) -> LineAddr {
        let region = u64::from(self.cfg.core_id) << 28;
        PRIVATE_BASE + region + self.rng.gen_range(0..self.private_lines)
    }

    fn dataset_line(&mut self) -> LineAddr {
        // 60% streaming, 40% random — both defeat the LLC.
        if self.rng.gen_bool(0.6) {
            self.dataset_cursor = (self.dataset_cursor + 1) % self.dataset_lines;
            let stride_base = u64::from(self.cfg.core_id) * (self.dataset_lines / 64);
            DATASET_BASE + ((stride_base + self.dataset_cursor) % self.dataset_lines)
        } else {
            DATASET_BASE + self.rng.gen_range(0..self.dataset_lines)
        }
    }

    fn data_line(&mut self) -> LineAddr {
        let r: f64 = self.rng.gen();
        if r < self.p_dataset {
            self.dataset_line()
        } else if r < self.p_dataset + self.p_shared_data {
            self.shared_line()
        } else {
            self.private_line()
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = CoreEvent;

    fn next(&mut self) -> Option<CoreEvent> {
        if let Some(ev) = self.pending.take() {
            return Some(ev);
        }
        // Each instruction independently produces an event with total
        // probability `p_event`; we draw the geometric inter-event gap as a
        // compute burst and stash the event itself for the next call, so
        // the event rate per instruction matches the profile exactly.
        let p_event = self.p_ifetch + self.p_dread + self.p_dwrite + self.p_sync;
        debug_assert!(p_event < 1.0, "event probability must stay below 1");
        let r: f64 = self.rng.gen::<f64>() * p_event;
        let ev = if r < self.p_ifetch {
            let line = self.shared_line();
            CoreEvent::InstructionFetch { line }
        } else if r < self.p_ifetch + self.p_dread {
            let line = self.data_line();
            CoreEvent::DataRead { line }
        } else if r < self.p_ifetch + self.p_dread + self.p_dwrite {
            let line = self.data_line();
            CoreEvent::DataWrite { line }
        } else {
            let cycles = 20 + self.rng.gen_range(0..200);
            CoreEvent::SyncStall { cycles }
        };
        // Geometric gap with mean (1-p)/p, sampled via the exponential
        // approximation; the event instruction itself is counted by the
        // consumer when it processes the stashed event.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let gap = (-u.ln() * (1.0 - p_event) / p_event).round() as u32;
        if gap == 0 {
            Some(ev)
        } else {
            self.pending = Some(ev);
            Some(CoreEvent::Compute { instructions: gap })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Workload, WorkloadProfile};

    fn cfg(w: Workload, cores: u32, id: u32) -> TraceConfig {
        TraceConfig {
            profile: WorkloadProfile::of(w),
            core_kind: CoreKind::OutOfOrder,
            core_id: id,
            total_cores: cores,
            seed: 42,
        }
    }

    #[test]
    fn trace_is_deterministic_for_same_seed() {
        let a: Vec<_> = TraceGenerator::new(cfg(Workload::WebSearch, 16, 3))
            .take(1000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(cfg(Workload::WebSearch, 16, 3))
            .take(1000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cores_get_different_streams() {
        let a: Vec<_> = TraceGenerator::new(cfg(Workload::WebSearch, 16, 0))
            .take(100)
            .collect();
        let b: Vec<_> = TraceGenerator::new(cfg(Workload::WebSearch, 16, 1))
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn miss_rate_matches_profile() {
        let p = WorkloadProfile::of(Workload::DataServing);
        let mut gen = TraceGenerator::new(cfg(Workload::DataServing, 16, 0));
        let mut instrs = 0u64;
        let mut misses = 0u64;
        for ev in gen.by_ref().take(200_000) {
            match ev {
                CoreEvent::Compute { instructions } => instrs += u64::from(instructions),
                CoreEvent::InstructionFetch { .. }
                | CoreEvent::DataRead { .. }
                | CoreEvent::DataWrite { .. } => {
                    instrs += 1;
                    misses += 1;
                }
                CoreEvent::SyncStall { .. } => {}
            }
        }
        let mpki = misses as f64 / instrs as f64 * 1000.0;
        let (i, d) = p.l1_mpki_for(CoreKind::OutOfOrder);
        let expect = i * TRACE_IFETCH_FACTOR + d;
        assert!(
            (mpki - expect).abs() / expect < 0.15,
            "mpki {mpki} vs expected {expect}"
        );
    }

    #[test]
    fn address_regions_are_disjoint() {
        let mut gen = TraceGenerator::new(cfg(Workload::MapReduceW, 8, 2));
        for ev in gen.by_ref().take(50_000) {
            let line = match ev {
                CoreEvent::InstructionFetch { line } => line,
                CoreEvent::DataRead { line } | CoreEvent::DataWrite { line } => line,
                _ => continue,
            };
            // Each line lands in exactly one region.
            let regions = [
                line < PRIVATE_BASE,
                (PRIVATE_BASE..DATASET_BASE).contains(&line),
                line >= DATASET_BASE,
            ];
            assert_eq!(regions.iter().filter(|r| **r).count(), 1);
        }
    }

    #[test]
    fn instruction_fetches_come_from_shared_region() {
        let mut gen = TraceGenerator::new(cfg(Workload::WebFrontend, 4, 1));
        for ev in gen.by_ref().take(50_000) {
            if let CoreEvent::InstructionFetch { line } = ev {
                assert!(
                    line < PRIVATE_BASE,
                    "instruction fetch outside shared region"
                );
            }
        }
    }

    #[test]
    fn no_sync_stalls_below_knee() {
        let mut gen = TraceGenerator::new(cfg(Workload::MediaStreaming, 16, 0));
        assert!(gen
            .by_ref()
            .take(100_000)
            .all(|e| !matches!(e, CoreEvent::SyncStall { .. })));
    }

    #[test]
    fn sync_stalls_appear_beyond_knee() {
        // Media Streaming's knee is 16 cores; at 64 it stalls.
        let mut gen = TraceGenerator::new(cfg(Workload::MediaStreaming, 64, 0));
        assert!(gen
            .by_ref()
            .take(200_000)
            .any(|e| matches!(e, CoreEvent::SyncStall { .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_id_panics() {
        TraceGenerator::new(cfg(Workload::WebSearch, 4, 4));
    }
}
