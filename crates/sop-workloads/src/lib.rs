//! The scale-out workloads of CloudSuite 1.0, as statistical models.
//!
//! The thesis evaluates seven workloads (§2.4.2): Data Serving, two
//! MapReduce variants (text classification and word count), Media
//! Streaming, SAT Solver, Web Frontend (SPECweb2009 e-banking), and Web
//! Search. We cannot run the original full-system Flexus/Simics traces, so
//! each workload is represented by the statistics the thesis itself reports
//! and reasons from:
//!
//! * base ILP ([`WorkloadProfile::ipc_infinite`], Fig 2.1),
//! * L1-I / L1-D miss rates (the "large instruction footprint" trait),
//! * an LLC miss-rate-versus-capacity curve ([`profile::MissCurve`],
//!   Fig 2.2),
//! * memory-level parallelism bounds (the "low MLP" trait, §4.2.2),
//! * coherence (snoop) activity ([`WorkloadProfile::snoop_fraction`],
//!   Fig 4.3),
//! * off-chip traffic intensity ([`profile::TrafficCurve`], used to
//!   provision memory channels as §2.5 does), and
//! * software scalability limits ([`profile::Scalability`], §3.4.1/§4.3.3).
//!
//! The analytic model (`sop-model`) consumes these statistics directly;
//! the cycle-level simulator (`sop-sim`) consumes synthetic instruction
//! traces drawn from them ([`trace::TraceGenerator`]).
//!
//! # Example
//!
//! ```
//! use sop_workloads::{Workload, WorkloadProfile};
//!
//! let ds = WorkloadProfile::of(Workload::DataServing);
//! // Scale-out workloads rarely snoop: Fig 4.3 reports a 2.7% average.
//! assert!(ds.snoop_fraction < 0.06);
//! // The miss curve flattens once the instruction footprint is captured.
//! let m2 = ds.miss_curve.misses_per_kilo_instr(2.0, 4);
//! let m16 = ds.miss_curve.misses_per_kilo_instr(16.0, 4);
//! assert!(m16 < m2);
//! ```

pub mod cloudsuite;
pub mod profile;
pub mod trace;
pub mod zipf;

pub use cloudsuite::{info as workload_info, WorkloadInfo};
pub use profile::{MissCurve, QosClass, Scalability, TrafficCurve, Workload, WorkloadProfile};
pub use trace::{CoreEvent, TraceConfig, TraceGenerator};
pub use zipf::ZipfSampler;
