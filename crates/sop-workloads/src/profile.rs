//! Per-workload statistical profiles.
//!
//! Each profile packages the workload statistics the thesis measures with
//! Flexus and feeds into its analytic model (§2.4.3, §3.3): base ILP, L1
//! miss rates, the LLC miss-rate-versus-capacity curve, MLP, coherence
//! activity, off-chip traffic intensity, and software scalability. The
//! constants below are calibrated so that the reproduction matches the
//! per-workload behaviour the thesis reports in Figs 2.1, 2.2, 4.3 and the
//! design-level aggregates of Tables 2.3/2.4/3.2 (see EXPERIMENTS.md).

use sop_tech::CoreKind;

/// The seven CloudSuite 1.0 scale-out workloads (§2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Cassandra-style NoSQL data store serving YCSB requests.
    DataServing,
    /// Hadoop MapReduce: text classification (the thesis' MapReduce-C).
    MapReduceC,
    /// Hadoop MapReduce: word count (the thesis' MapReduce-W).
    MapReduceW,
    /// Darwin-style video streaming server.
    MediaStreaming,
    /// Cloud9 distributed SAT solver (batch).
    SatSolver,
    /// SPECweb2009 e-banking front end.
    WebFrontend,
    /// Nutch/Lucene index-serving node.
    WebSearch,
}

impl Workload {
    /// All seven workloads in the thesis' figure order.
    pub const ALL: [Workload; 7] = [
        Workload::DataServing,
        Workload::MapReduceC,
        Workload::MapReduceW,
        Workload::MediaStreaming,
        Workload::SatSolver,
        Workload::WebFrontend,
        Workload::WebSearch,
    ];

    /// The label used on the thesis' figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Workload::DataServing => "Data Serving",
            Workload::MapReduceC => "MapReduce-C",
            Workload::MapReduceW => "MapReduce-W",
            Workload::MediaStreaming => "Media Streaming",
            Workload::SatSolver => "SAT Solver",
            Workload::WebFrontend => "Web Frontend",
            Workload::WebSearch => "Web Search",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// LLC misses per kilo-instruction as a function of cache capacity and
/// sharer count.
///
/// The thesis decomposes LLC content into three parts (§2.1.3, §3.2.2):
/// a *dataset* part with essentially no reuse (misses regardless of
/// capacity), a *shared* part (instructions plus OS data, shared by all
/// cores, captured once capacity reaches a few MB), and a small
/// *per-thread private* part that divides the cache among sharers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissCurve {
    /// Capacity-independent dataset misses (per kilo-instruction).
    pub dataset_mpki: f64,
    /// Shared instruction/OS working-set misses at zero capacity.
    pub shared_mpki: f64,
    /// e-folding capacity (MB) for capturing the shared working set.
    pub shared_capture_mb: f64,
    /// Per-thread private working-set misses at zero capacity.
    pub private_mpki: f64,
    /// e-folding per-core capacity (MB) for the private working set.
    pub private_capture_mb: f64,
}

impl MissCurve {
    /// LLC misses per kilo-instruction with `capacity_mb` of cache shared
    /// by `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mb` is not positive or `cores` is zero.
    pub fn misses_per_kilo_instr(&self, capacity_mb: f64, cores: u32) -> f64 {
        assert!(capacity_mb > 0.0, "LLC capacity must be positive");
        assert!(cores > 0, "at least one core must share the LLC");
        let shared = self.shared_mpki * (-capacity_mb / self.shared_capture_mb).exp();
        let per_core_mb = capacity_mb / f64::from(cores);
        let private = self.private_mpki * (-per_core_mb / self.private_capture_mb).exp();
        self.dataset_mpki + shared + private
    }
}

/// Off-chip traffic intensity versus LLC capacity, in bytes per
/// (application) instruction. Includes write-back and fetch traffic, which
/// is why it exceeds the read-miss line volume. The thesis measures this
/// per configuration in simulation and provisions memory channels for the
/// worst case across workloads (§2.5); we model it with a saturating curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficCurve {
    /// Traffic that no amount of cache removes (dataset), bytes/instr.
    pub floor_bytes_per_instr: f64,
    /// Capacity-sensitive traffic at zero capacity, bytes/instr.
    pub capture_bytes_per_instr: f64,
    /// e-folding capacity (MB) for the capacity-sensitive traffic.
    pub capture_mb: f64,
}

impl TrafficCurve {
    /// Off-chip bytes per instruction at `capacity_mb` of LLC.
    pub fn bytes_per_instr(&self, capacity_mb: f64) -> f64 {
        assert!(capacity_mb > 0.0, "LLC capacity must be positive");
        self.floor_bytes_per_instr
            + self.capture_bytes_per_instr * (-capacity_mb / self.capture_mb).exp()
    }

    /// Off-chip bandwidth in GB/s for a group of `cores` cores each
    /// committing `per_core_ipc` application instructions per cycle at
    /// `ghz` GHz.
    pub fn bandwidth_gbps(&self, capacity_mb: f64, cores: u32, per_core_ipc: f64, ghz: f64) -> f64 {
        let instr_per_sec = per_core_ipc * ghz * 1e9 * f64::from(cores);
        self.bytes_per_instr(capacity_mb) * instr_per_sec / 1e9
    }
}

/// Service-level requirements of a workload (§4.3.3 separates the batch
/// workloads from the latency-sensitive ones; §5.3.1 argues out-of-order
/// cores for tight latency and in-order cores for throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Tuned to meet response-time objectives (most online services).
    LatencySensitive,
    /// Throughput-oriented with lax deadlines (analytics, solvers).
    Batch,
}

/// How far the workload's software stack scales before sub-linear effects
/// appear (§3.4.1: Data Serving, Web Search, and SAT Solver degrade at
/// 32–64 cores; §4.3.3: Media Streaming, Web Frontend, and Web Search only
/// scale to 16 cores in the 64-core pod study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scalability {
    /// Core count up to which the software scales essentially linearly.
    pub knee_cores: u32,
    /// Amdahl-style serial fraction that appears beyond the knee.
    pub serial_fraction: f64,
    /// Largest core count the chapter-4 pod study runs this workload at.
    pub pod_cores: u32,
}

impl Scalability {
    /// Software efficiency factor in `[0, 1]` at `cores` threads: the
    /// fraction of ideal linear speed-up the software stack retains.
    pub fn efficiency(&self, cores: u32) -> f64 {
        assert!(cores > 0, "at least one core");
        if cores <= self.knee_cores {
            return 1.0;
        }
        // Amdahl beyond the knee: the extra cores contend on the serial
        // fraction. Normalize so efficiency is continuous at the knee.
        let n = f64::from(cores) / f64::from(self.knee_cores);
        let s = self.serial_fraction;
        (1.0 / (s + (1.0 - s) / n)) / n
    }
}

/// The full statistical profile of one workload.
///
/// All rates are expressed for the out-of-order (Cortex-A15-like) core; use
/// the `*_for` accessors to obtain core-kind-adjusted values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Which workload this profiles.
    pub workload: Workload,
    /// Application IPC with a perfect (zero-latency, infinite) LLC.
    pub ipc_infinite: f64,
    /// L1-I misses per kilo-instruction (the large-instruction-footprint
    /// trait: these all go to the LLC and stall the front end).
    pub l1i_mpki: f64,
    /// L1-D misses per kilo-instruction that the LLC can serve.
    pub l1d_mpki: f64,
    /// Overlap factor for data accesses to the LLC (≥ 1).
    pub data_mlp: f64,
    /// Overlap factor for off-chip memory accesses (≥ 1). Scale-out
    /// workloads have notoriously low MLP (§4.2.2).
    pub mem_mlp: f64,
    /// LLC miss-rate-versus-capacity curve.
    pub miss_curve: MissCurve,
    /// Off-chip traffic intensity curve.
    pub traffic: TrafficCurve,
    /// Fraction of LLC accesses that trigger a snoop to a core (Fig 4.3).
    pub snoop_fraction: f64,
    /// Software scalability behaviour.
    pub scalability: Scalability,
    /// Service-level requirements.
    pub qos: QosClass,
}

impl WorkloadProfile {
    /// The calibrated profile of `workload`.
    pub fn of(workload: Workload) -> Self {
        match workload {
            Workload::DataServing => WorkloadProfile {
                workload,
                ipc_infinite: 2.35,
                l1i_mpki: 9.0,
                l1d_mpki: 6.5,
                data_mlp: 1.7,
                mem_mlp: 1.35,
                miss_curve: MissCurve {
                    dataset_mpki: 6.2,
                    shared_mpki: 13.8,
                    shared_capture_mb: 1.35,
                    private_mpki: 4.5,
                    private_capture_mb: 0.25,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.25,
                    capture_bytes_per_instr: 0.20,
                    capture_mb: 3.0,
                },
                snoop_fraction: 0.045,
                scalability: Scalability {
                    knee_cores: 32,
                    serial_fraction: 0.04,
                    pod_cores: 64,
                },
                qos: QosClass::LatencySensitive,
            },
            Workload::MapReduceC => WorkloadProfile {
                workload,
                ipc_infinite: 1.85,
                l1i_mpki: 5.5,
                l1d_mpki: 8.5,
                data_mlp: 1.5,
                mem_mlp: 1.30,
                miss_curve: MissCurve {
                    dataset_mpki: 7.2,
                    shared_mpki: 4.5,
                    shared_capture_mb: 5.5,
                    private_mpki: 3.0,
                    private_capture_mb: 0.6,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.21,
                    capture_bytes_per_instr: 0.21,
                    capture_mb: 6.0,
                },
                snoop_fraction: 0.010,
                scalability: Scalability {
                    knee_cores: 64,
                    serial_fraction: 0.02,
                    pod_cores: 64,
                },
                qos: QosClass::Batch,
            },
            Workload::MapReduceW => WorkloadProfile {
                workload,
                ipc_infinite: 3.00,
                l1i_mpki: 6.0,
                l1d_mpki: 7.0,
                data_mlp: 1.6,
                mem_mlp: 1.60,
                miss_curve: MissCurve {
                    dataset_mpki: 5.0,
                    shared_mpki: 11.4,
                    shared_capture_mb: 1.35,
                    private_mpki: 4.5,
                    private_capture_mb: 0.25,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.22,
                    capture_bytes_per_instr: 0.19,
                    capture_mb: 3.5,
                },
                snoop_fraction: 0.015,
                scalability: Scalability {
                    knee_cores: 64,
                    serial_fraction: 0.02,
                    pod_cores: 64,
                },
                qos: QosClass::Batch,
            },
            Workload::MediaStreaming => WorkloadProfile {
                workload,
                ipc_infinite: 1.65,
                l1i_mpki: 8.0,
                l1d_mpki: 5.5,
                data_mlp: 1.2,
                mem_mlp: 1.05,
                miss_curve: MissCurve {
                    dataset_mpki: 7.5,
                    shared_mpki: 9.6,
                    shared_capture_mb: 1.2,
                    private_mpki: 4.5,
                    private_capture_mb: 0.25,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.33,
                    capture_bytes_per_instr: 0.18,
                    capture_mb: 2.5,
                },
                snoop_fraction: 0.005,
                scalability: Scalability {
                    knee_cores: 16,
                    serial_fraction: 0.08,
                    pod_cores: 16,
                },
                qos: QosClass::LatencySensitive,
            },
            Workload::SatSolver => WorkloadProfile {
                workload,
                ipc_infinite: 3.60,
                l1i_mpki: 2.5,
                l1d_mpki: 8.5,
                data_mlp: 2.0,
                mem_mlp: 1.70,
                miss_curve: MissCurve {
                    dataset_mpki: 7.0,
                    shared_mpki: 3.5,
                    shared_capture_mb: 5.5,
                    private_mpki: 4.0,
                    private_capture_mb: 0.8,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.15,
                    capture_bytes_per_instr: 0.19,
                    capture_mb: 7.0,
                },
                snoop_fraction: 0.025,
                scalability: Scalability {
                    knee_cores: 32,
                    serial_fraction: 0.04,
                    pod_cores: 64,
                },
                qos: QosClass::Batch,
            },
            Workload::WebFrontend => WorkloadProfile {
                workload,
                ipc_infinite: 3.30,
                l1i_mpki: 10.0,
                l1d_mpki: 6.0,
                data_mlp: 1.6,
                mem_mlp: 1.45,
                miss_curve: MissCurve {
                    dataset_mpki: 3.6,
                    shared_mpki: 12.6,
                    shared_capture_mb: 1.45,
                    private_mpki: 4.5,
                    private_capture_mb: 0.25,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.17,
                    capture_bytes_per_instr: 0.22,
                    capture_mb: 3.0,
                },
                snoop_fraction: 0.055,
                scalability: Scalability {
                    knee_cores: 32,
                    serial_fraction: 0.05,
                    pod_cores: 16,
                },
                qos: QosClass::LatencySensitive,
            },
            Workload::WebSearch => WorkloadProfile {
                workload,
                ipc_infinite: 3.55,
                l1i_mpki: 8.5,
                l1d_mpki: 5.0,
                data_mlp: 1.7,
                mem_mlp: 1.50,
                miss_curve: MissCurve {
                    dataset_mpki: 3.2,
                    shared_mpki: 11.4,
                    shared_capture_mb: 1.35,
                    private_mpki: 4.5,
                    private_capture_mb: 0.25,
                },
                traffic: TrafficCurve {
                    floor_bytes_per_instr: 0.14,
                    capture_bytes_per_instr: 0.21,
                    capture_mb: 2.5,
                },
                snoop_fraction: 0.030,
                scalability: Scalability {
                    knee_cores: 32,
                    serial_fraction: 0.05,
                    pod_cores: 16,
                },
                qos: QosClass::LatencySensitive,
            },
        }
    }

    /// Profiles of all seven workloads, in figure order.
    pub fn all() -> Vec<WorkloadProfile> {
        Workload::ALL
            .iter()
            .copied()
            .map(WorkloadProfile::of)
            .collect()
    }

    /// Perfect-LLC IPC for `kind`. The conventional 4-wide core extracts
    /// only modestly more ILP than the 3-wide OoO (the thesis' central
    /// inefficiency argument, §2.2.1); the 2-wide in-order core extracts
    /// substantially less.
    pub fn ipc_infinite_for(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Conventional => (self.ipc_infinite * 1.25).min(3.6),
            CoreKind::OutOfOrder => self.ipc_infinite,
            CoreKind::InOrder => self.ipc_infinite * 0.60,
        }
    }

    /// (L1-I, L1-D) misses per kilo-instruction for `kind`. The
    /// conventional core's 64KB L1s filter more of the footprint than the
    /// 32KB L1s of the simpler cores (Table 2.2).
    pub fn l1_mpki_for(&self, kind: CoreKind) -> (f64, f64) {
        match kind {
            CoreKind::Conventional => (self.l1i_mpki * 0.65, self.l1d_mpki * 0.70),
            CoreKind::OutOfOrder => (self.l1i_mpki, self.l1d_mpki),
            CoreKind::InOrder => (self.l1i_mpki, self.l1d_mpki * 1.05),
        }
    }

    /// Memory-level parallelism for `kind`: the 128-entry-ROB conventional
    /// core overlaps more misses; the in-order core overlaps almost none.
    pub fn mem_mlp_for(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Conventional => self.mem_mlp * 1.45,
            CoreKind::OutOfOrder => self.mem_mlp,
            CoreKind::InOrder => (self.mem_mlp * 0.78).max(1.0),
        }
    }

    /// LLC-hit data-access overlap for `kind`.
    pub fn data_mlp_for(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Conventional => self.data_mlp * 1.25,
            CoreKind::OutOfOrder => self.data_mlp,
            CoreKind::InOrder => 1.0,
        }
    }

    /// Effective *serialized* LLC accesses per instruction for `kind`:
    /// instruction fetches stall the front end and count in full; data
    /// accesses are divided by the data MLP.
    pub fn serialized_llc_accesses_per_instr(&self, kind: CoreKind) -> f64 {
        let (i, d) = self.l1_mpki_for(kind);
        (i + d / self.data_mlp_for(kind)) / 1000.0
    }

    /// Total LLC accesses per instruction (for traffic/contention
    /// accounting), unweighted by MLP.
    pub fn llc_accesses_per_instr(&self, kind: CoreKind) -> f64 {
        let (i, d) = self.l1_mpki_for(kind);
        (i + d) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_workloads_have_profiles() {
        assert_eq!(WorkloadProfile::all().len(), 7);
    }

    #[test]
    fn snoop_rates_average_about_2_7_percent() {
        // Fig 4.3: an average of 2.7 LLC accesses in 100 trigger a snoop.
        let avg: f64 = WorkloadProfile::all()
            .iter()
            .map(|p| p.snoop_fraction)
            .sum::<f64>()
            / 7.0;
        assert!((avg - 0.027).abs() < 0.004, "got {avg}");
    }

    #[test]
    fn miss_curves_are_monotone_in_capacity() {
        for p in WorkloadProfile::all() {
            let mut prev = f64::INFINITY;
            for c in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
                let m = p.miss_curve.misses_per_kilo_instr(c, 4);
                assert!(m <= prev, "{}: miss rate rose at {c}MB", p.workload);
                assert!(m > 0.0);
                prev = m;
            }
        }
    }

    #[test]
    fn miss_curves_degrade_gently_with_sharers() {
        // Fig 2.3a: sharing a 4MB LLC among 256 cores costs only a modest
        // amount of hit rate because most useful content is shared. The
        // extra misses are bounded by the (small) per-thread private set;
        // the resulting perf effect is checked against Fig 2.3 in
        // sop-bench.
        for p in WorkloadProfile::all() {
            let m4 = p.miss_curve.misses_per_kilo_instr(4.0, 4);
            let m256 = p.miss_curve.misses_per_kilo_instr(4.0, 256);
            assert!(m256 >= m4);
            assert!(
                m256 - m4 <= p.miss_curve.private_mpki,
                "{}: sharing penalty exceeds the private set",
                p.workload
            );
        }
    }

    #[test]
    fn traffic_decreases_with_capacity() {
        for p in WorkloadProfile::all() {
            assert!(p.traffic.bytes_per_instr(1.0) > p.traffic.bytes_per_instr(16.0));
        }
    }

    #[test]
    fn media_streaming_has_the_most_floor_traffic() {
        let ms = WorkloadProfile::of(Workload::MediaStreaming);
        for p in WorkloadProfile::all() {
            assert!(ms.traffic.floor_bytes_per_instr >= p.traffic.floor_bytes_per_instr);
        }
    }

    #[test]
    fn in_order_cores_extract_less_ilp() {
        for p in WorkloadProfile::all() {
            assert!(
                p.ipc_infinite_for(CoreKind::InOrder) < p.ipc_infinite_for(CoreKind::OutOfOrder)
            );
            assert!(
                p.ipc_infinite_for(CoreKind::OutOfOrder)
                    <= p.ipc_infinite_for(CoreKind::Conventional)
            );
        }
    }

    #[test]
    fn conventional_l1s_filter_more() {
        for p in WorkloadProfile::all() {
            let (ci, cd) = p.l1_mpki_for(CoreKind::Conventional);
            let (oi, od) = p.l1_mpki_for(CoreKind::OutOfOrder);
            assert!(ci < oi && cd < od);
        }
    }

    #[test]
    fn efficiency_is_one_below_knee_and_decays_after() {
        let s = Scalability {
            knee_cores: 16,
            serial_fraction: 0.05,
            pod_cores: 16,
        };
        assert_eq!(s.efficiency(1), 1.0);
        assert_eq!(s.efficiency(16), 1.0);
        let e32 = s.efficiency(32);
        let e64 = s.efficiency(64);
        assert!(e32 < 1.0 && e64 < e32);
        assert!(e64 > 0.0);
    }

    #[test]
    fn bandwidth_scales_linearly_with_cores_and_ipc() {
        let p = WorkloadProfile::of(Workload::WebSearch);
        let b1 = p.traffic.bandwidth_gbps(4.0, 16, 0.75, 2.0);
        let b2 = p.traffic.bandwidth_gbps(4.0, 32, 0.75, 2.0);
        assert!((b2 - 2.0 * b1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_miss_curve_panics() {
        WorkloadProfile::of(Workload::WebSearch)
            .miss_curve
            .misses_per_kilo_instr(0.0, 4);
    }

    #[test]
    fn serialized_accesses_weight_instruction_misses_fully() {
        let p = WorkloadProfile::of(Workload::WebFrontend);
        let a = p.serialized_llc_accesses_per_instr(CoreKind::OutOfOrder);
        let (i, d) = p.l1_mpki_for(CoreKind::OutOfOrder);
        assert!(a * 1000.0 >= i);
        assert!(a * 1000.0 <= i + d);
    }

    #[test]
    fn workload_labels_match_figures() {
        assert_eq!(Workload::MapReduceC.to_string(), "MapReduce-C");
        assert_eq!(Workload::WebFrontend.to_string(), "Web Frontend");
    }
}
