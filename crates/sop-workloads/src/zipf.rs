//! A lightweight Zipf-like popularity sampler.
//!
//! Instruction fetch streams and OS data are not uniformly spread over
//! their footprint: a hot head (dispatch loops, allocator, syscall paths)
//! absorbs a disproportionate share of accesses. We model popularity with
//! the standard inverse-power transform: for skew `s` in `[0, 1)`,
//! drawing `u ~ U(0,1)` and mapping to `floor(N * u^(1/(1-s)))`
//! approximates a Zipf(s) rank distribution over `N` items — rank 0 the
//! hottest — without per-item state or harmonic-number tables.

/// Zipf-approximating index sampler over `[0, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    exponent: f64,
}

impl ZipfSampler {
    /// A sampler over `n` items with skew `s` (0 = uniform; values toward
    /// 1 concentrate mass on the lowest ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is outside `[0, 1)`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&s), "skew must be in [0, 1)");
        ZipfSampler {
            n,
            exponent: 1.0 / (1.0 - s),
        }
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maps a uniform draw `u` in `[0, 1)` to an item index.
    pub fn index(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        ((self.n as f64) * u.powf(self.exponent)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(sampler: &ZipfSampler, draws: u32, buckets: usize) -> Vec<u64> {
        // Deterministic low-discrepancy sequence stands in for RNG.
        let mut counts = vec![0u64; buckets];
        let golden = 0.618_033_988_749_895_f64;
        let mut u = 0.5;
        for _ in 0..draws {
            u = (u + golden) % 1.0;
            let idx = sampler.index(u);
            counts[(idx * buckets as u64 / sampler.len()) as usize] += 1;
        }
        counts
    }

    #[test]
    fn zero_skew_is_uniform() {
        let s = ZipfSampler::new(10_000, 0.0);
        let h = histogram(&s, 100_000, 10);
        for &c in &h {
            assert!((8_000..12_000).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn high_skew_concentrates_on_the_head() {
        let s = ZipfSampler::new(10_000, 0.8);
        let h = histogram(&s, 100_000, 10);
        assert!(h[0] > 50_000, "head bucket {}", h[0]);
        assert!(h[9] < 5_000, "tail bucket {}", h[9]);
    }

    #[test]
    fn indices_stay_in_range() {
        let s = ZipfSampler::new(7, 0.6);
        for i in 0..1000 {
            let u = f64::from(i) / 1000.0;
            assert!(s.index(u) < 7);
        }
        assert!(s.index(1.0) < 7, "u=1 must clamp into range");
    }

    #[test]
    fn more_skew_means_hotter_head() {
        let n = 100_000;
        let mild = ZipfSampler::new(n, 0.3);
        let hot = ZipfSampler::new(n, 0.9);
        // The same median draw lands much earlier under higher skew.
        assert!(hot.index(0.5) < mild.index(0.5));
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn skew_of_one_panics() {
        ZipfSampler::new(10, 1.0);
    }
}
