//! What the seven workloads actually are (§2.4.2, CloudSuite 1.0).
//!
//! The statistical profiles in [`crate::profile`] capture *how the
//! workloads behave*; this module records *what they are* — the software
//! stack, the dataset, and the request pattern each one models — so that
//! downstream users know what a result generalizes to.

use crate::profile::{QosClass, Workload};

/// Descriptive metadata for one CloudSuite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// The workload.
    pub workload: Workload,
    /// The server software CloudSuite 1.0 runs.
    pub software: &'static str,
    /// What the dataset is.
    pub dataset: &'static str,
    /// What one request does.
    pub request: &'static str,
    /// Service class (drives the chapter-5 pool assignment).
    pub qos: QosClass,
    /// Largest core count the thesis' full-system setup scaled it to in
    /// the chapter-4 pod study (§4.3.3).
    pub pod_scalability: u32,
}

/// Metadata for every workload, in figure order.
pub fn all() -> [WorkloadInfo; 7] {
    [
        WorkloadInfo {
            workload: Workload::DataServing,
            software: "Cassandra NoSQL store under a YCSB driver",
            dataset: "sharded key-value store held in DRAM",
            request: "single-key reads and writes with Zipfian popularity",
            qos: QosClass::LatencySensitive,
            pod_scalability: 64,
        },
        WorkloadInfo {
            workload: Workload::MapReduceC,
            software: "Hadoop MapReduce: text classification",
            dataset: "Wikipedia-scale text corpus in HDFS",
            request: "map/reduce tasks over input splits (batch)",
            qos: QosClass::Batch,
            pod_scalability: 64,
        },
        WorkloadInfo {
            workload: Workload::MapReduceW,
            software: "Hadoop MapReduce: word count",
            dataset: "text corpus in HDFS",
            request: "map/reduce tasks over input splits (batch)",
            qos: QosClass::Batch,
            pod_scalability: 64,
        },
        WorkloadInfo {
            workload: Workload::MediaStreaming,
            software: "Darwin streaming server",
            dataset: "video library streamed at fixed bitrates",
            request: "long-lived RTSP sessions pushing media segments",
            qos: QosClass::LatencySensitive,
            pod_scalability: 16,
        },
        WorkloadInfo {
            workload: Workload::SatSolver,
            software: "Cloud9 distributed SAT solver",
            dataset: "CNF problem instances",
            request: "symbolic-execution subtasks (batch)",
            qos: QosClass::Batch,
            pod_scalability: 64,
        },
        WorkloadInfo {
            workload: Workload::WebFrontend,
            software: "SPECweb2009 e-banking front end (PHP/Apache)",
            dataset: "session state plus backing database",
            request: "dynamic page generation per user action",
            qos: QosClass::LatencySensitive,
            pod_scalability: 16,
        },
        WorkloadInfo {
            workload: Workload::WebSearch,
            software: "Nutch/Lucene index-serving node",
            dataset: "inverted web index, memory resident",
            request: "index lookups scored and ranked per query",
            qos: QosClass::LatencySensitive,
            pod_scalability: 16,
        },
    ]
}

/// Metadata for one workload.
pub fn info(workload: Workload) -> WorkloadInfo {
    *all()
        .iter()
        .find(|i| i.workload == workload)
        .expect("every workload has metadata")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    #[test]
    fn every_workload_is_described() {
        for w in Workload::ALL {
            assert_eq!(info(w).workload, w);
        }
    }

    #[test]
    fn metadata_agrees_with_profiles() {
        for w in Workload::ALL {
            let meta = info(w);
            let profile = WorkloadProfile::of(w);
            assert_eq!(meta.qos, profile.qos, "{w}");
            assert_eq!(meta.pod_scalability, profile.scalability.pod_cores, "{w}");
        }
    }

    #[test]
    fn batch_set_matches_section_4_3_3() {
        // §4.3.3: "Two of the workloads — SAT Solver and MapReduce — are
        // batch, while the rest are latency-sensitive."
        let batch: Vec<Workload> = all()
            .iter()
            .filter(|i| i.qos == QosClass::Batch)
            .map(|i| i.workload)
            .collect();
        assert_eq!(
            batch,
            vec![
                Workload::MapReduceC,
                Workload::MapReduceW,
                Workload::SatSolver
            ]
        );
    }
}
