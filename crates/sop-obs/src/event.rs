//! Ring-buffer event log with Chrome-trace export.
//!
//! `sop_sim::Machine` can optionally record transaction lifecycle events
//! (issue → LLC → snoop → memory → retire) into this log. Capacity is
//! bounded: once full, the oldest events are overwritten and a drop
//! counter keeps the books honest. The log exports to the Chrome trace
//! event format (`chrome://tracing` / Perfetto "JSON Array Format"), with
//! simulated cycles mapped onto the `ts`/`dur` microsecond fields.

use crate::json::Json;

/// One recorded event. Names and categories are `&'static str` so
/// recording never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in simulated cycles.
    pub ts: u64,
    /// Duration in cycles for complete ("X") events; `None` renders as an
    /// instant ("i") event.
    pub dur: Option<u64>,
    /// Event name, e.g. `"llc_miss"`.
    pub name: &'static str,
    /// Category, e.g. `"coherence"` — Chrome's per-category filter.
    pub cat: &'static str,
    /// Track (rendered as the Chrome `tid`): core id, bank id, etc.
    pub track: u64,
    /// Small key/value payload rendered into Chrome's `args`.
    pub args: Vec<(&'static str, u64)>,
}

/// Fixed-capacity ring buffer of [`Event`]s.
#[derive(Debug, Clone)]
pub struct EventLog {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl EventLog {
    /// A log holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Convenience: record an instant event with no payload.
    pub fn instant(&mut self, ts: u64, name: &'static str, cat: &'static str, track: u64) {
        self.record(Event {
            ts,
            dur: None,
            name,
            cat,
            track,
            args: Vec::new(),
        });
    }

    /// Convenience: record a complete (duration) event with no payload.
    pub fn complete(
        &mut self,
        ts: u64,
        dur: u64,
        name: &'static str,
        cat: &'static str,
        track: u64,
    ) {
        self.record(Event {
            ts,
            dur: Some(dur),
            name,
            cat,
            track,
            args: Vec::new(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports as a Chrome trace document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ns", ...}`.
    /// One simulated cycle maps to one microsecond of trace time.
    pub fn to_chrome_trace(&self, process_name: &str) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(self.buf.len() + 1);
        // Process-name metadata record so the trace viewer labels the row.
        events.push(
            Json::object()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", 1u64)
                .with("tid", 0u64)
                .with("args", Json::object().with("name", process_name)),
        );
        for e in self.events() {
            let mut j = Json::object()
                .with("name", e.name)
                .with("cat", e.cat)
                .with("ph", if e.dur.is_some() { "X" } else { "i" })
                .with("ts", e.ts)
                .with("pid", 1u64)
                .with("tid", e.track);
            if let Some(dur) = e.dur {
                j.insert("dur", dur);
            } else {
                // Instant events need a scope; "t" = thread-scoped.
                j.insert("s", "t");
            }
            if !e.args.is_empty() {
                let mut args = Json::object();
                for (k, v) in &e.args {
                    args.insert(k, *v);
                }
                j.insert("args", args);
            }
            events.push(j);
        }
        Json::object()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ns")
            .with("dropped_events", self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for ts in 0..5u64 {
            log.instant(ts, "e", "test", 0);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let ts: Vec<u64> = log.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let mut log = EventLog::new(16);
        log.complete(10, 5, "llc_miss", "coherence", 3);
        log.record(Event {
            ts: 20,
            dur: None,
            name: "retire",
            cat: "core",
            track: 1,
            args: vec![("line", 0xdead)],
        });
        let trace = log.to_chrome_trace("pod64");
        let text = trace.to_compact_string();
        let parsed = crate::json::parse(&text).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        // Metadata + 2 events.
        assert_eq!(events.len(), 3);
        let complete = &events[1];
        assert_eq!(complete.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(complete.get("dur").and_then(Json::as_f64), Some(5.0));
        assert_eq!(complete.get("tid").and_then(Json::as_f64), Some(3.0));
        let instant = &events[2];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            instant
                .get("args")
                .and_then(|a| a.get("line"))
                .and_then(Json::as_f64),
            Some(0xdead as f64)
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = EventLog::new(0);
        log.instant(1, "e", "c", 0);
        assert_eq!(log.len(), 1);
    }
}
