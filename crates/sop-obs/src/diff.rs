//! Structural comparison of two `sop-report/v1` documents.
//!
//! `sop diff a.json b.json` answers "did anything move, and by how
//! much" for two run reports: it walks both JSON trees in lockstep,
//! compares numeric leaves under a relative tolerance (exact by
//! default), and reports every missing key, extra key, kind mismatch,
//! and out-of-tolerance value with its full dotted path. Per-path
//! tolerance overrides (`--tol-path sections.bench=5`) let a CI gate
//! hold timing-ish subtrees loosely while pinning deterministic
//! `metrics.sim.*` keys exactly — which is how the repro-determinism
//! job replaces a raw byte `cmp` without losing strictness.
//!
//! Wall-clock subtrees (`spans`, the `exec` section, `exec.*` metrics)
//! are ignored by default: they differ between any two runs and are
//! exactly what [`crate::report::stabilized`] strips.

use std::fmt;

use crate::json::Json;

/// Comparison policy: a default relative tolerance plus per-path
/// overrides and ignored subtrees.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffConfig {
    /// Default relative tolerance as a fraction (`0.0` = exact,
    /// `0.05` = ±5% of the larger magnitude).
    pub tol: f64,
    /// Path-prefix tolerance overrides; the longest matching prefix
    /// wins over `tol`.
    pub rules: Vec<(String, f64)>,
    /// Path prefixes skipped entirely (no comparison, no missing-key
    /// reports).
    pub ignore: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            tol: 0.0,
            // Fleet metrics count discrete requests/faults from seeded
            // processes and are deterministic by construction, so the
            // `fleet.*` namespace stays pinned exact even when the CI
            // gate loosens the global tolerance for timing-ish subtrees.
            // Being a prefix rule, a longer explicit `--tol-path` still
            // overrides it.
            rules: vec![("metrics.fleet.".to_owned(), 0.0)],
            ignore: vec![
                "spans".to_owned(),
                "sections.exec".to_owned(),
                "metrics.exec.".to_owned(),
            ],
        }
    }
}

impl DiffConfig {
    /// Exact comparison everywhere (minus the default ignores).
    pub fn exact() -> Self {
        DiffConfig::default()
    }

    /// Uniform relative tolerance as a fraction.
    pub fn with_tol(tol: f64) -> Self {
        DiffConfig {
            tol,
            ..DiffConfig::default()
        }
    }

    fn ignored(&self, path: &str) -> bool {
        self.ignore.iter().any(|p| path.starts_with(p.as_str()))
    }

    fn tol_for(&self, path: &str) -> f64 {
        self.rules
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(self.tol, |(_, t)| *t)
    }
}

/// One divergence between the two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the diverging value (`metrics.sim.cycles`,
    /// `sections.bench.points[3].cycles_per_sec`).
    pub path: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Outcome of a report comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffResult {
    /// Number of leaf values compared (ignored subtrees excluded).
    pub compared: usize,
    /// Every divergence found, in document order.
    pub violations: Vec<DiffEntry>,
}

impl DiffResult {
    /// Whether the reports match under the configured tolerances.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn violation(&mut self, path: &str, detail: String) {
        self.violations.push(DiffEntry {
            path: path.to_owned(),
            detail,
        });
    }
}

/// Compares two parsed report documents under `cfg`.
pub fn diff_reports(a: &Json, b: &Json, cfg: &DiffConfig) -> DiffResult {
    let mut result = DiffResult::default();
    walk(a, b, "", cfg, &mut result);
    result
}

fn kind(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::UInt(_) | Json::Int(_) | Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_owned()
    } else {
        format!("{path}.{key}")
    }
}

fn within(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

fn walk(a: &Json, b: &Json, path: &str, cfg: &DiffConfig, out: &mut DiffResult) {
    if cfg.ignored(path) {
        return;
    }
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            for (key, va) in ma {
                match b.get(key) {
                    Some(vb) => walk(va, vb, &join(path, key), cfg, out),
                    None => {
                        let p = join(path, key);
                        if !cfg.ignored(&p) {
                            out.violation(&p, "missing in second report".to_owned());
                        }
                    }
                }
            }
            for (key, _) in mb {
                if a.get(key).is_none() {
                    let p = join(path, key);
                    if !cfg.ignored(&p) {
                        out.violation(&p, "missing in first report".to_owned());
                    }
                }
            }
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            if xs.len() != ys.len() {
                out.violation(path, format!("array length {} vs {}", xs.len(), ys.len()));
            }
            for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                walk(x, y, &format!("{path}[{i}]"), cfg, out);
            }
        }
        _ => {
            if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                out.compared += 1;
                let tol = cfg.tol_for(path);
                if !within(x, y, tol) {
                    out.violation(
                        path,
                        format!("{x} vs {y} exceeds tolerance {:.3}%", tol * 100.0),
                    );
                }
            } else if kind(a) != kind(b) {
                out.compared += 1;
                out.violation(path, format!("{} vs {}", kind(a), kind(b)));
            } else {
                out.compared += 1;
                if a != b {
                    out.violation(
                        path,
                        format!("{} vs {}", a.to_compact_string(), b.to_compact_string()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, ipc: f64) -> Json {
        Json::object()
            .with("schema", "sop-report/v1")
            .with("tool", "repro")
            .with(
                "metrics",
                Json::object()
                    .with("sim.cycles", cycles)
                    .with("sim.ipc", ipc),
            )
            .with(
                "spans",
                Json::Arr(vec![Json::object().with("duration_us", 12345u64)]),
            )
    }

    #[test]
    fn identical_reports_match_exactly() {
        let a = report(1000, 1.5);
        let d = diff_reports(&a, &a.clone(), &DiffConfig::exact());
        assert!(d.ok(), "{:?}", d.violations);
        assert!(d.compared >= 4);
    }

    #[test]
    fn regression_beyond_tolerance_is_a_violation() {
        let a = report(1000, 1.5);
        let b = report(1100, 1.5); // +10%
        let d = diff_reports(&a, &b, &DiffConfig::with_tol(0.05));
        assert!(!d.ok());
        assert_eq!(d.violations.len(), 1);
        assert_eq!(d.violations[0].path, "metrics.sim.cycles");
        assert!(d.violations[0].to_string().contains("1000 vs 1100"));
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let a = report(1000, 1.5);
        let b = report(1030, 1.5); // +3%
        assert!(diff_reports(&a, &b, &DiffConfig::with_tol(0.05)).ok());
        // ...but fails an exact comparison.
        assert!(!diff_reports(&a, &b, &DiffConfig::exact()).ok());
    }

    #[test]
    fn missing_and_extra_keys_are_reported_in_both_directions() {
        let a = report(1000, 1.5);
        let mut b = report(1000, 1.5);
        // Remove sim.ipc from b and add an extra key.
        let Json::Obj(members) = &mut b else {
            panic!("object")
        };
        for (k, v) in members.iter_mut() {
            if k == "metrics" {
                let Json::Obj(metrics) = v else {
                    panic!("object")
                };
                metrics.retain(|(k, _)| k != "sim.ipc");
                metrics.push(("sim.extra".to_owned(), Json::UInt(1)));
            }
        }
        let d = diff_reports(&a, &b, &DiffConfig::exact());
        let paths: Vec<&str> = d.violations.iter().map(|v| v.path.as_str()).collect();
        assert!(paths.contains(&"metrics.sim.ipc"), "{paths:?}");
        assert!(paths.contains(&"metrics.sim.extra"), "{paths:?}");
        let details: Vec<&str> = d.violations.iter().map(|v| v.detail.as_str()).collect();
        assert!(details.contains(&"missing in second report"), "{details:?}");
        assert!(details.contains(&"missing in first report"), "{details:?}");
    }

    #[test]
    fn spans_and_exec_are_ignored_by_default() {
        let a = report(1000, 1.5);
        let mut b = report(1000, 1.5);
        let Json::Obj(members) = &mut b else {
            panic!("object")
        };
        for (k, v) in members.iter_mut() {
            if k == "spans" {
                *v = Json::Arr(vec![]);
            }
        }
        assert!(diff_reports(&a, &b, &DiffConfig::exact()).ok());
    }

    #[test]
    fn per_path_rules_override_the_default_and_longest_prefix_wins() {
        let a = report(1000, 1.5);
        let b = report(1100, 1.5);
        let mut cfg = DiffConfig::exact();
        cfg.rules.push(("metrics".to_owned(), 0.01));
        cfg.rules.push(("metrics.sim.cycles".to_owned(), 0.25));
        assert!(diff_reports(&a, &b, &cfg).ok(), "longest prefix is loose");
        cfg.rules.pop();
        assert!(!diff_reports(&a, &b, &cfg).ok(), "1% rule rejects +10%");
    }

    #[test]
    fn kind_mismatch_and_string_drift_are_violations() {
        let a = Json::object().with("tool", "repro").with("n", 1u64);
        let b = Json::object().with("tool", "bench").with("n", "one");
        let d = diff_reports(&a, &b, &DiffConfig::exact());
        assert_eq!(d.violations.len(), 2);
        assert!(d.violations[0].detail.contains("\"repro\" vs \"bench\""));
        assert!(d.violations[1].detail.contains("number vs string"));
    }

    #[test]
    fn array_length_mismatch_is_reported() {
        let a = Json::object().with("xs", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let b = Json::object().with("xs", Json::Arr(vec![Json::UInt(1)]));
        let d = diff_reports(&a, &b, &DiffConfig::exact());
        assert_eq!(d.violations.len(), 1);
        assert!(d.violations[0].detail.contains("array length 2 vs 1"));
    }

    #[test]
    fn fleet_metrics_stay_exact_under_a_loose_global_tolerance() {
        let make = |served: u64| {
            Json::object()
                .with(
                    "metrics",
                    Json::object()
                        .with("fleet.requests.served", served)
                        .with("sim.cycles", served),
                )
                .with("tool", "fleet")
        };
        let a = make(1000);
        let b = make(1030); // +3% on both keys
        let d = diff_reports(&a, &b, &DiffConfig::with_tol(0.05));
        // sim.cycles passes under the 5% tolerance; the fleet namespace
        // rule pins fleet.* exact regardless.
        assert_eq!(d.violations.len(), 1, "{:?}", d.violations);
        assert_eq!(d.violations[0].path, "metrics.fleet.requests.served");
        // A longer explicit rule still overrides the namespace default.
        let mut cfg = DiffConfig::with_tol(0.05);
        cfg.rules.push(("metrics.fleet.requests.".to_owned(), 0.10));
        assert!(diff_reports(&a, &b, &cfg).ok());
    }

    #[test]
    fn zero_tolerance_on_zero_values_matches() {
        let a = Json::object().with("z", 0u64);
        let b = Json::object().with("z", 0.0f64);
        assert!(diff_reports(&a, &b, &DiffConfig::exact()).ok());
    }
}
