//! Schema-versioned machine-readable run reports.
//!
//! Every binary that accepts `--json <path>` writes one of these. The
//! document layout is pinned by `SCHEMA_VERSION` and the golden test in
//! `sop-bench`; bump the version whenever a field is renamed, removed, or
//! changes meaning (adding fields is backward-compatible and does not
//! require a bump).

use crate::json::Json;
use crate::registry::Registry;
use crate::span::SpanLog;

/// Identifies the report document layout. History:
/// * `sop-report/v1` — initial: `schema`, `tool`, `title`, `spans`,
///   `metrics`, `sections`.
pub const SCHEMA_VERSION: &str = "sop-report/v1";

/// A run report: tool identity, free-form sections, plus the standard
/// `spans` and `metrics` blocks.
#[derive(Debug)]
pub struct Report {
    tool: String,
    title: String,
    sections: Vec<(String, Json)>,
}

impl Report {
    /// A report for tool `tool` (e.g. `"repro"`) describing `title`.
    pub fn new(tool: &str, title: &str) -> Self {
        Report {
            tool: tool.to_owned(),
            title: title.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Adds (or replaces) a named section.
    pub fn set(&mut self, name: &str, value: Json) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.sections.push((name.to_owned(), value));
        }
    }

    /// Assembles the full document: schema header, spans, metrics, then
    /// the free-form sections in insertion order.
    pub fn to_json(&self, spans: &SpanLog, metrics: &Registry) -> Json {
        let mut doc = Json::object()
            .with("schema", SCHEMA_VERSION)
            .with("tool", self.tool.as_str())
            .with("title", self.title.as_str())
            .with("spans", spans.to_json())
            .with("metrics", metrics.to_json());
        let mut sections = Json::object();
        for (name, value) in &self.sections {
            sections.insert(name, value.clone());
        }
        doc.insert("sections", sections);
        doc
    }

    /// Writes the pretty-printed document (plus trailing newline) to
    /// `path` atomically (temp file + rename, see
    /// [`write_atomic`](crate::json::write_atomic)).
    pub fn write_to(&self, path: &str, spans: &SpanLog, metrics: &Registry) -> std::io::Result<()> {
        let doc = self.to_json(spans, metrics).to_pretty_string() + "\n";
        crate::json::write_atomic(path, &doc)
    }
}

/// A copy of a report document with everything wall-clock- or
/// schedule-dependent stripped, so two runs of the same campaign compare
/// byte-for-byte regardless of worker count or cache warmth:
///
/// * every span's `start_us`/`duration_us` is zeroed (names, order and
///   depth — the deterministic structure — survive);
/// * metrics in the `exec.` namespace (worker/steal/cache counters) are
///   dropped;
/// * the `exec` section (the campaign summary, which records per-job
///   timings and computed-vs-cached provenance) is dropped.
///
/// Everything else — the science — is left untouched.
pub fn stabilized(doc: &Json) -> Json {
    let Json::Obj(members) = doc else {
        return doc.clone();
    };
    let mut out = Json::object();
    for (key, value) in members {
        match key.as_str() {
            "spans" => {
                let zeroed = value
                    .as_arr()
                    .map(|spans| {
                        Json::Arr(
                            spans
                                .iter()
                                .map(|span| match span {
                                    Json::Obj(fields) => Json::Obj(
                                        fields
                                            .iter()
                                            .map(|(k, v)| match k.as_str() {
                                                "start_us" | "duration_us" => {
                                                    (k.clone(), Json::UInt(0))
                                                }
                                                _ => (k.clone(), v.clone()),
                                            })
                                            .collect(),
                                    ),
                                    other => other.clone(),
                                })
                                .collect(),
                        )
                    })
                    .unwrap_or_else(|| value.clone());
                out.insert(key, zeroed);
            }
            "metrics" => {
                let mut kept = Json::object();
                if let Json::Obj(metrics) = value {
                    for (name, metric) in metrics {
                        if !name.starts_with("exec.") {
                            kept.insert(name, metric.clone());
                        }
                    }
                }
                out.insert(key, kept);
            }
            "sections" => {
                let mut kept = Json::object();
                if let Json::Obj(sections) = value {
                    for (name, section) in sections {
                        if name != "exec" {
                            kept.insert(name, section.clone());
                        }
                    }
                }
                out.insert(key, kept);
            }
            _ => out.insert(key, value.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_carries_schema_spans_metrics_and_sections() {
        let mut spans = SpanLog::new();
        spans.time("phase", |_| ());
        let mut metrics = Registry::new();
        metrics.counter_add("sim.llc.misses", 9);
        let mut report = Report::new("repro", "all figures");
        report.set("figures", Json::Arr(vec![Json::Str("fig2.1".into())]));
        report.set("figures", Json::Arr(vec![Json::Str("fig4.7".into())])); // replaces
        let doc = report.to_json(&spans, &metrics);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("repro"));
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("sim.llc.misses"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
        let figs = doc
            .get("sections")
            .and_then(|s| s.get("figures"))
            .and_then(Json::as_arr)
            .expect("figures");
        assert_eq!(figs, &[Json::Str("fig4.7".into())]);
        crate::json::parse(&doc.to_pretty_string()).expect("valid JSON");
    }

    #[test]
    fn stabilized_strips_timing_and_exec_state() {
        let mut spans = SpanLog::new();
        spans.time("ch4", |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let mut metrics = Registry::new();
        metrics.counter_add("sim.llc.misses", 9);
        metrics.counter_add("exec.cache.hits", 3);
        let mut report = Report::new("repro", "all");
        report.set("figures", Json::Arr(vec![]));
        report.set("exec", Json::object().with("computed", 5u64));
        let doc = report.to_json(&spans, &metrics);
        let stable = stabilized(&doc);
        let span0 = &stable.get("spans").and_then(Json::as_arr).expect("spans")[0];
        assert_eq!(span0.get("duration_us"), Some(&Json::UInt(0)));
        assert_eq!(span0.get("start_us"), Some(&Json::UInt(0)));
        assert_eq!(span0.get("name").and_then(Json::as_str), Some("ch4"));
        let metrics = stable.get("metrics").expect("metrics");
        assert!(metrics.get("exec.cache.hits").is_none());
        assert!(metrics.get("sim.llc.misses").is_some());
        let sections = stable.get("sections").expect("sections");
        assert!(sections.get("exec").is_none());
        assert!(sections.get("figures").is_some());
        // Stabilizing twice is a fixed point.
        assert_eq!(stabilized(&stable), stable);
    }
}
