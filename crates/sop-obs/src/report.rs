//! Schema-versioned machine-readable run reports.
//!
//! Every binary that accepts `--json <path>` writes one of these. The
//! document layout is pinned by `SCHEMA_VERSION` and the golden test in
//! `sop-bench`; bump the version whenever a field is renamed, removed, or
//! changes meaning (adding fields is backward-compatible and does not
//! require a bump).

use std::io::Write as _;

use crate::json::Json;
use crate::registry::Registry;
use crate::span::SpanLog;

/// Identifies the report document layout. History:
/// * `sop-report/v1` — initial: `schema`, `tool`, `title`, `spans`,
///   `metrics`, `sections`.
pub const SCHEMA_VERSION: &str = "sop-report/v1";

/// A run report: tool identity, free-form sections, plus the standard
/// `spans` and `metrics` blocks.
#[derive(Debug)]
pub struct Report {
    tool: String,
    title: String,
    sections: Vec<(String, Json)>,
}

impl Report {
    /// A report for tool `tool` (e.g. `"repro"`) describing `title`.
    pub fn new(tool: &str, title: &str) -> Self {
        Report {
            tool: tool.to_owned(),
            title: title.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Adds (or replaces) a named section.
    pub fn set(&mut self, name: &str, value: Json) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.sections.push((name.to_owned(), value));
        }
    }

    /// Assembles the full document: schema header, spans, metrics, then
    /// the free-form sections in insertion order.
    pub fn to_json(&self, spans: &SpanLog, metrics: &Registry) -> Json {
        let mut doc = Json::object()
            .with("schema", SCHEMA_VERSION)
            .with("tool", self.tool.as_str())
            .with("title", self.title.as_str())
            .with("spans", spans.to_json())
            .with("metrics", metrics.to_json());
        let mut sections = Json::object();
        for (name, value) in &self.sections {
            sections.insert(name, value.clone());
        }
        doc.insert("sections", sections);
        doc
    }

    /// Writes the pretty-printed document (plus trailing newline) to
    /// `path`.
    pub fn write_to(&self, path: &str, spans: &SpanLog, metrics: &Registry) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json(spans, metrics).to_pretty_string().as_bytes())?;
        file.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_carries_schema_spans_metrics_and_sections() {
        let mut spans = SpanLog::new();
        spans.time("phase", |_| ());
        let mut metrics = Registry::new();
        metrics.counter_add("sim.llc.misses", 9);
        let mut report = Report::new("repro", "all figures");
        report.set("figures", Json::Arr(vec![Json::Str("fig2.1".into())]));
        report.set("figures", Json::Arr(vec![Json::Str("fig4.7".into())])); // replaces
        let doc = report.to_json(&spans, &metrics);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("repro"));
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("sim.llc.misses"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
        let figs = doc
            .get("sections")
            .and_then(|s| s.get("figures"))
            .and_then(Json::as_arr)
            .expect("figures");
        assert_eq!(figs, &[Json::Str("fig4.7".into())]);
        crate::json::parse(&doc.to_pretty_string()).expect("valid JSON");
    }
}
