//! A hand-rolled, dependency-free JSON value tree, writer, and parser.
//!
//! The repo's hermetic build cannot pull serde, so run reports and Chrome
//! traces are emitted through this module instead. Design points:
//!
//! * object members keep insertion order, so emitted documents are stable
//!   and diffable across runs;
//! * integers are carried exactly (`u64`/`i64` variants) — counters never
//!   round-trip through `f64`;
//! * non-finite floats serialize as `null` (JSON has no NaN/Infinity);
//! * the parser exists chiefly so tests can validate that everything the
//!   writer (and the Chrome-trace exporter) produces is well-formed.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer.
    UInt(u64),
    /// An exact signed integer (negative values).
    Int(i64),
    /// A double; non-finite values are written as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.insert(key, value);
        self
    }

    /// Appends a member to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(members) => members.push((key.to_owned(), value.into())),
            other => panic!("Json::insert on a non-object: {other:?}"),
        }
    }

    /// Looks up a member of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation and a stable member order —
    /// the format of the `--json` run reports.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, depth| {
                        items[i].write(out, indent, depth);
                    },
                );
            }
            Json::Obj(members) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    members.len(),
                    |out, i, depth| {
                        let (k, v) = &members[i];
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth);
                    },
                );
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` prints the shortest representation that round-trips; it never
    // emits an exponent for the magnitudes we log, but an integral value
    // would print without a decimal point and re-parse as an integer, so
    // pin the type with `.0`.
    let s = format!("{n}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_json {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                #[allow(clippy::redundant_closure_call)]
                ($variant)(v)
            }
        }
    )*};
}

impl_from_json!(
    bool => Json::Bool,
    u64 => Json::UInt,
    u32 => |v: u32| Json::UInt(u64::from(v)),
    usize => |v: usize| Json::UInt(v as u64),
    i64 => |v: i64| if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) },
    f64 => Json::Num,
    String => Json::Str,
    &str => |v: &str| Json::Str(v.to_owned()),
);

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// `.tmp.<pid>` sibling (same directory, so the rename cannot cross a
/// filesystem boundary) and are renamed over the target. A killed or
/// faulted run therefore never leaves a truncated report under the final
/// name — readers see either the previous complete file or the new one.
pub fn write_atomic(path: impl AsRef<std::path::Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.error("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::Str("a\"b\\c\nd\te\r\u{1}".to_owned());
        assert_eq!(j.to_compact_string(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
        // And it round-trips.
        assert_eq!(parse(&j.to_compact_string()).expect("parses"), j);
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        let j = Json::Str("héllo → 世界".to_owned());
        let s = j.to_compact_string();
        assert_eq!(s, "\"héllo → 世界\"");
        assert_eq!(parse(&s).expect("parses"), j);
    }

    #[test]
    fn integers_are_exact() {
        let j = Json::UInt(u64::MAX);
        assert_eq!(j.to_compact_string(), u64::MAX.to_string());
        assert_eq!(parse(&j.to_compact_string()).expect("parses"), j);
        let j = Json::Int(-42);
        assert_eq!(parse("-42").expect("parses"), j);
    }

    #[test]
    fn f64_formatting_round_trips_and_marks_integral_values() {
        assert_eq!(Json::Num(1.5).to_compact_string(), "1.5");
        assert_eq!(Json::Num(3.0).to_compact_string(), "3.0");
        assert_eq!(Json::Num(0.1).to_compact_string(), "0.1");
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact_string(), "null");
        match parse("3.0").expect("parses") {
            Json::Num(n) => assert_eq!(n, 3.0),
            other => panic!("3.0 must stay a float, got {other:?}"),
        }
    }

    #[test]
    fn nested_objects_preserve_member_order() {
        let j = Json::object()
            .with("z", 1u64)
            .with("a", Json::object().with("inner", "x").with("n", 2.5))
            .with("list", Json::Arr(vec![Json::Null, Json::Bool(true)]));
        let compact = j.to_compact_string();
        assert_eq!(
            compact,
            r#"{"z":1,"a":{"inner":"x","n":2.5},"list":[null,true]}"#
        );
        assert_eq!(parse(&compact).expect("parses"), j);
    }

    #[test]
    fn pretty_printing_is_valid_json() {
        let j = Json::object()
            .with("spans", Json::Arr(vec![Json::object().with("name", "ch2")]))
            .with("empty_obj", Json::object())
            .with("empty_arr", Json::Arr(vec![]));
        let pretty = j.to_pretty_string();
        assert!(pretty.contains("\n  \"spans\""));
        assert_eq!(parse(&pretty).expect("parses"), j);
    }

    #[test]
    fn get_walks_objects() {
        let j = Json::object().with("a", Json::object().with("b", 7u64));
        assert_eq!(j.get("a").and_then(|a| a.get("b")), Some(&Json::UInt(7)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nulx",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let doc = " { \"k\" : [ 1 , -2.5e1 , \"\\u0041\\n\" ] } ";
        let v = parse(doc).expect("parses");
        assert_eq!(
            v,
            Json::object().with(
                "k",
                Json::Arr(vec![
                    Json::UInt(1),
                    Json::Num(-25.0),
                    Json::Str("A\n".into())
                ])
            )
        );
    }
}
