//! Wall-clock phase timing.
//!
//! The repro/ablation/calibrate binaries wrap each chapter or figure in
//! a span so the run report records where the time went. Spans nest
//! (LIFO), and the completed records carry their depth so the report can
//! reconstruct the tree.

use std::time::Instant;

use crate::json::Json;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"ch4"` or `"fig4.7"`.
    pub name: String,
    /// Microseconds from the log's origin to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Nesting depth at the time the span ran (0 = top level).
    pub depth: usize,
}

/// Collects nested wall-clock spans relative to a single origin.
#[derive(Debug)]
pub struct SpanLog {
    origin: Instant,
    open: Vec<(String, Instant)>,
    closed: Vec<SpanRecord>,
}

impl SpanLog {
    /// A log whose origin is "now".
    pub fn new() -> Self {
        SpanLog {
            origin: Instant::now(),
            open: Vec::new(),
            closed: Vec::new(),
        }
    }

    /// Opens a span; close it with [`end`](Self::end).
    pub fn start(&mut self, name: &str) {
        self.open.push((name.to_owned(), Instant::now()));
    }

    /// Closes the most recently opened span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn end(&mut self) {
        let (name, started) = self.open.pop().expect("SpanLog::end with no open span");
        self.closed.push(SpanRecord {
            name,
            start_us: started.duration_since(self.origin).as_micros() as u64,
            duration_us: started.elapsed().as_micros() as u64,
            depth: self.open.len(),
        });
    }

    /// Runs `f` inside a span named `name` and returns its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce(&mut SpanLog) -> T) -> T {
        self.start(name);
        let out = f(self);
        self.end();
        out
    }

    /// Completed spans in completion order (children before parents).
    pub fn records(&self) -> &[SpanRecord] {
        &self.closed
    }

    /// Number of spans still open.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Completed spans as a JSON array sorted by start time, each
    /// `{name, start_us, duration_us, depth}`.
    pub fn to_json(&self) -> Json {
        let mut sorted: Vec<&SpanRecord> = self.closed.iter().collect();
        sorted.sort_by_key(|r| (r.start_us, r.depth));
        Json::Arr(
            sorted
                .into_iter()
                .map(|r| {
                    Json::object()
                        .with("name", r.name.as_str())
                        .with("start_us", r.start_us)
                        .with("duration_us", r.duration_us)
                        .with("depth", r.depth)
                })
                .collect(),
        )
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_depth_and_order() {
        let mut log = SpanLog::new();
        log.time("outer", |log| {
            log.time("inner", |_| {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        });
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        // Children complete first.
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].depth, 0);
        // The parent covers the child.
        assert!(recs[1].duration_us >= recs[0].duration_us);
        assert!(recs[0].start_us >= recs[1].start_us);
        assert_eq!(log.open_depth(), 0);
    }

    #[test]
    fn time_passes_through_the_result() {
        let mut log = SpanLog::new();
        let v = log.time("compute", |_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn end_without_start_panics() {
        SpanLog::new().end();
    }

    #[test]
    fn json_sorts_by_start_and_is_wellformed() {
        let mut log = SpanLog::new();
        log.time("a", |_| ());
        log.time("b", |log| log.time("b.child", |_| ()));
        let j = log.to_json();
        let arr = j.as_arr().expect("array");
        assert_eq!(arr[0].get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(arr[1].get("name").and_then(Json::as_str), Some("b"));
        crate::json::parse(&j.to_compact_string()).expect("valid JSON");
    }
}
