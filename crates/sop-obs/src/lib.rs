//! Structured telemetry for the Scale-Out Processors reproduction.
//!
//! Dependency-free observability primitives shared by every crate in
//! the workspace:
//!
//! * [`Registry`] — named [`Counter`](Metric::Counter) /
//!   [`Gauge`](Metric::Gauge) / [`Histogram`](Metric::Histogram) metrics
//!   under hierarchical dotted keys (`sim.llc.bank3.misses`), cheap
//!   enough to stay always-on and mergeable across windows and machines;
//! * [`SpanLog`] — nested wall-clock phase timing for the repro /
//!   ablation / calibrate binaries;
//! * [`json`] — a hand-rolled JSON value tree, writer, and parser (the
//!   hermetic build has no serde), used by the `--json` run reports;
//! * [`Report`] — the schema-versioned ([`SCHEMA_VERSION`]) run-report
//!   document those binaries emit;
//! * [`EventLog`] — a bounded ring buffer of simulator lifecycle events
//!   exportable in Chrome trace format (`chrome://tracing` / Perfetto).
//!
//! Key naming scheme: `<subsystem>.<component>[.<instance>].<what>`,
//! all lowercase, dot-separated, with plural event names for counters
//! (`misses`, `snoops`) — e.g. `sim.llc.bank3.misses`, `noc.class.
//! response.packets`, `mem.chan0.lines`.

//! * [`txn`] — the transaction-tracing model: the causal hop-stage
//!   taxonomy ([`Stage`](txn::Stage)) and the per-stage histogram bundle
//!   ([`TxnStats`](txn::TxnStats)) the simulator exports as `sim.txn.*`;
//! * [`analyze`] — per-stage percentile latency-breakdown tables over a
//!   traced run's registry (`sop trace --analyze`);
//! * [`diff`] — structural comparison of two `sop-report/v1` documents
//!   with per-metric tolerances (`sop diff`);
//! * [`prof`] — host-side self-profiling of the engine hot path: scoped
//!   [`RegionTimer`](prof::RegionTimer)s accumulate per-component wall
//!   time into `prof.*` counters, and [`ProfBreakdown`] renders the
//!   host self-time table (`sop prof --analyze`);
//! * [`prom`] — Prometheus text exposition of a registry or a report's
//!   metrics object (`sop metrics --text`).

pub mod analyze;
pub mod diff;
pub mod event;
pub mod hist;
pub mod json;
pub mod prof;
pub mod prom;
pub mod registry;
pub mod report;
pub mod span;
pub mod txn;

pub use analyze::TxnBreakdown;
pub use diff::{diff_reports, DiffConfig, DiffEntry, DiffResult};
pub use event::{Event, EventLog};
pub use hist::Histogram;
pub use json::{write_atomic, Json};
pub use prof::{PhaseMark, Prof, ProfBreakdown, RegionTimer};
pub use registry::{Metric, MetricKindError, Registry, RenameError};
pub use report::{stabilized, Report, SCHEMA_VERSION};
pub use span::{SpanLog, SpanRecord};
pub use txn::{Stage, TxnStats};
