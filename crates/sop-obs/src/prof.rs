//! Host-side self-profiling for the simulation hot path.
//!
//! The simulated machine already attributes *simulated* cycles (see
//! [`crate::txn`]); this module attributes *host* wall-clock instead:
//! where does the process spend its nanoseconds while `Machine::advance`
//! runs? A [`Prof`] accumulates per-[`Component`] self-time from scoped
//! [`RegionTimer`]s placed around the disjoint phases of the engine's
//! tick loop, and exports flat `prof.*` counters into the metrics
//! registry. [`ProfBreakdown`] then renders the "where did the host time
//! go" table and the host-ns-per-simulated-cycle figure that decides
//! where intra-run parallelism boundaries should be cut.
//!
//! Like the transaction tracer, profiling is compiled into every build
//! but armed explicitly: the disarmed cost is one `Option` null-check
//! per region, the timers never fire, and no `prof.*` keys appear in
//! reports — guarded by `tests/prof_zero_cost.rs`.

use std::time::{Duration, Instant};

use crate::json::Json;
use crate::registry::Registry;

/// Engine components whose host self-time is attributed separately.
/// The regions are disjoint by construction (each wraps a distinct
/// phase of the tick loop), so their self-times are summable and the
/// sum is bounded above by the total `Machine::advance` wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// NOC switch allocation: route, eject, and credit bookkeeping
    /// inside `Network::step`. Injection enqueue cost is charged to the
    /// component that injects (directory, core, memory).
    Noc,
    /// Delivered-packet handling: directory/protocol dispatch, bank
    /// scheduling, snoop fan-out on arrival.
    Directory,
    /// LLC bank service completions (`finish_bank_access`).
    LlcBank,
    /// Memory channel returns.
    Mem,
    /// Core issue loop: poll, issue, inject.
    Core,
    /// Next-event computation in the event-driven scheduler.
    NextEvent,
}

impl Component {
    /// Every component, in presentation order.
    pub const ALL: [Component; 6] = [
        Component::Noc,
        Component::Directory,
        Component::LlcBank,
        Component::Mem,
        Component::Core,
        Component::NextEvent,
    ];

    /// Registry key prefix (`<key>.ns` and `<key>.calls` counters).
    pub fn key(self) -> &'static str {
        match self {
            Component::Noc => "prof.noc",
            Component::Directory => "prof.directory",
            Component::LlcBank => "prof.llc.bank",
            Component::Mem => "prof.mem.chan",
            Component::Core => "prof.core",
            Component::NextEvent => "prof.next_event",
        }
    }

    /// Human-readable table label.
    pub fn label(self) -> &'static str {
        match self {
            Component::Noc => "noc route/eject",
            Component::Directory => "directory/protocol",
            Component::LlcBank => "llc bank service",
            Component::Mem => "memory channels",
            Component::Core => "core step",
            Component::NextEvent => "next-event calc",
        }
    }
}

/// Key under which total `Machine::advance` wall time is exported.
pub const ADVANCE_KEY: &str = "prof.advance";

/// Accumulated host self-time per component, plus the enclosing
/// `advance` wall time and the simulated work it covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Prof {
    ns: [u64; Component::ALL.len()],
    calls: [u64; Component::ALL.len()],
    /// Total wall time spent inside `Machine::advance` while armed.
    pub advance_ns: u64,
    /// Number of `advance` calls measured.
    pub advance_calls: u64,
    /// Simulated cycles advanced while armed.
    pub cycles: u64,
    /// Engine ticks executed while armed.
    pub ticks: u64,
}

impl Prof {
    /// A fresh, empty profile.
    pub fn new() -> Prof {
        Prof::default()
    }

    /// Charges an elapsed region to a component.
    #[inline]
    pub fn record(&mut self, c: Component, elapsed: Duration) {
        self.ns[c as usize] += elapsed.as_nanos() as u64;
        self.calls[c as usize] += 1;
    }

    /// Charges one whole `advance(cycles)` call.
    #[inline]
    pub fn record_advance(&mut self, elapsed: Duration, cycles: u64) {
        self.advance_ns += elapsed.as_nanos() as u64;
        self.advance_calls += 1;
        self.cycles += cycles;
    }

    /// Counts one engine tick.
    #[inline]
    pub fn tick(&mut self) {
        self.ticks += 1;
    }

    /// Nanoseconds charged to one component so far.
    pub fn component_ns(&self, c: Component) -> u64 {
        self.ns[c as usize]
    }

    /// Clears all accumulators (used at measurement-window boundaries).
    pub fn reset(&mut self) {
        *self = Prof::default();
    }

    /// Exports the profile as flat `prof.*` counters. Counters merge by
    /// addition, so multi-window runs accumulate naturally.
    pub fn export(&self, reg: &mut Registry) {
        for c in Component::ALL {
            reg.counter_add(&format!("{}.ns", c.key()), self.ns[c as usize]);
            reg.counter_add(&format!("{}.calls", c.key()), self.calls[c as usize]);
        }
        reg.counter_add(&format!("{ADVANCE_KEY}.ns"), self.advance_ns);
        reg.counter_add(&format!("{ADVANCE_KEY}.calls"), self.advance_calls);
        reg.counter_add("prof.cycles", self.cycles);
        reg.counter_add("prof.ticks", self.ticks);
    }
}

/// A scoped region timer that only reads the clock when armed. The
/// disarmed path is a single branch on a `None`, mirroring the
/// zero-cost contract of the transaction tracer.
#[derive(Debug)]
#[must_use = "a started region must be stopped to be charged"]
pub struct RegionTimer(Option<Instant>);

impl RegionTimer {
    /// Starts a timer; reads the clock only when `armed`.
    #[inline]
    pub fn start(armed: bool) -> RegionTimer {
        RegionTimer(if armed { Some(Instant::now()) } else { None })
    }

    /// Stops the timer and charges the elapsed time to `c`. A timer
    /// started disarmed charges nothing even if a profiler appeared in
    /// between (it never read a start point).
    #[inline]
    pub fn stop(self, prof: &mut Option<Box<Prof>>, c: Component) {
        if let (Some(t0), Some(p)) = (self.0, prof.as_deref_mut()) {
            p.record(c, t0.elapsed());
        }
    }
}

/// A chained phase stamp for sequential regions: each [`lap`] charges
/// the time since the previous boundary and becomes the next one, so N
/// back-to-back phases cost N+1 clock reads (versus 2N for paired
/// [`RegionTimer`]s) and tile the enclosing span with no unattributed
/// gaps between phases. Disarmed, construction and every lap are a
/// single branch on a `None`.
///
/// [`lap`]: PhaseMark::lap
#[derive(Debug)]
pub struct PhaseMark(Option<Instant>);

impl PhaseMark {
    /// Opens the chain; reads the clock only when `armed`.
    #[inline]
    pub fn start(armed: bool) -> PhaseMark {
        PhaseMark(if armed { Some(Instant::now()) } else { None })
    }

    /// Charges the time since the previous boundary to `c` and makes
    /// now the next boundary. A chain opened disarmed charges nothing
    /// even if a profiler appeared in between.
    #[inline]
    pub fn lap(&mut self, prof: &mut Option<Box<Prof>>, c: Component) {
        if let (Some(prev), Some(p)) = (self.0, prof.as_deref_mut()) {
            let now = Instant::now();
            p.record(c, now - prev);
            self.0 = Some(now);
        }
    }
}

/// One row of the component self-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfRow {
    /// Table label (`"noc route/eject"`, …).
    pub label: &'static str,
    /// Registry key prefix the row was read from.
    pub key: &'static str,
    /// Accumulated host self-time in nanoseconds.
    pub ns: u64,
    /// Number of region invocations.
    pub calls: u64,
}

/// Component self-time breakdown extracted from a profiled run's
/// metrics — the host-side analogue of [`crate::analyze::TxnBreakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfBreakdown {
    /// One row per [`Component`], in presentation order.
    pub rows: Vec<ProfRow>,
    /// Total wall nanoseconds inside `Machine::advance`.
    pub advance_ns: u64,
    /// Number of `advance` calls measured.
    pub advance_calls: u64,
    /// Simulated cycles covered by the profile.
    pub cycles: u64,
    /// Engine ticks covered by the profile.
    pub ticks: u64,
}

impl ProfBreakdown {
    /// Extracts the breakdown from a registry, or `None` when the run
    /// was not profiled (no `prof.advance.calls` counter present).
    pub fn from_registry(reg: &Registry) -> Option<ProfBreakdown> {
        if reg.counter(&format!("{ADVANCE_KEY}.calls")) == 0 {
            return None;
        }
        let rows = Component::ALL
            .iter()
            .map(|&c| ProfRow {
                label: c.label(),
                key: c.key(),
                ns: reg.counter(&format!("{}.ns", c.key())),
                calls: reg.counter(&format!("{}.calls", c.key())),
            })
            .collect();
        Some(ProfBreakdown {
            rows,
            advance_ns: reg.counter(&format!("{ADVANCE_KEY}.ns")),
            advance_calls: reg.counter(&format!("{ADVANCE_KEY}.calls")),
            cycles: reg.counter("prof.cycles"),
            ticks: reg.counter("prof.ticks"),
        })
    }

    /// Extracts the breakdown from a report's flat `metrics` object
    /// (for `sop prof --analyze <file>`), or `None` when the report
    /// carries no profile.
    pub fn from_metrics_json(metrics: &Json) -> Option<ProfBreakdown> {
        let num = |k: &str| -> u64 { metrics.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64 };
        if num(&format!("{ADVANCE_KEY}.calls")) == 0 {
            return None;
        }
        let rows = Component::ALL
            .iter()
            .map(|&c| ProfRow {
                label: c.label(),
                key: c.key(),
                ns: num(&format!("{}.ns", c.key())),
                calls: num(&format!("{}.calls", c.key())),
            })
            .collect();
        Some(ProfBreakdown {
            rows,
            advance_ns: num(&format!("{ADVANCE_KEY}.ns")),
            advance_calls: num(&format!("{ADVANCE_KEY}.calls")),
            cycles: num("prof.cycles"),
            ticks: num("prof.ticks"),
        })
    }

    /// Sum of every component's self-time in nanoseconds.
    pub fn component_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.ns).sum()
    }

    /// Whether the disjoint-region invariant holds: component
    /// self-times can never exceed the enclosing `advance` wall time.
    /// `false` means the instrumentation is broken.
    pub fn consistent(&self) -> bool {
        self.component_ns() <= self.advance_ns
    }

    /// Fraction of `advance` wall time attributed to a component
    /// (the remainder is loop scaffolding and timer overhead).
    pub fn coverage(&self) -> f64 {
        if self.advance_ns == 0 {
            0.0
        } else {
            self.component_ns() as f64 / self.advance_ns as f64
        }
    }

    /// Host nanoseconds per simulated cycle over the whole profile.
    pub fn host_ns_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.advance_ns as f64 / self.cycles as f64
        }
    }

    /// Renders the self-time table: per-component share of `advance`
    /// wall time plus the host-time-per-simulated-cycle breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>12} {:>7} {:>10}\n",
            "component", "calls", "self ms", "share", "ns/cycle"
        ));
        let cyc = self.cycles.max(1) as f64;
        for r in &self.rows {
            let share = if self.advance_ns == 0 {
                0.0
            } else {
                100.0 * r.ns as f64 / self.advance_ns as f64
            };
            out.push_str(&format!(
                "{:<20} {:>12} {:>12.3} {:>6.1}% {:>10.2}\n",
                r.label,
                r.calls,
                r.ns as f64 / 1e6,
                share,
                r.ns as f64 / cyc
            ));
        }
        out.push_str(&format!(
            "{:<20} {:>12} {:>12.3} {:>6.1}% {:>10.2}\n",
            "advance (total)",
            self.advance_calls,
            self.advance_ns as f64 / 1e6,
            100.0,
            self.host_ns_per_cycle()
        ));
        let verdict = if self.consistent() {
            "consistent"
        } else {
            "INCONSISTENT"
        };
        out.push_str(&format!(
            "attributed {:.1}% of {:.3} ms advance wall over {} cycles / {} ticks ({verdict})\n",
            100.0 * self.coverage(),
            self.advance_ns as f64 / 1e6,
            self.cycles,
            self.ticks
        ));
        out
    }

    /// JSON form — the `prof` section of reports:
    /// `{components: [row...], advance: {...}, cycles, ticks,
    /// host_ns_per_cycle, coverage, consistent}`.
    pub fn to_json(&self) -> Json {
        let adv = self.advance_ns.max(1) as f64;
        Json::object()
            .with(
                "components",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object()
                                .with("component", r.label)
                                .with("key", r.key)
                                .with("ns", r.ns)
                                .with("calls", r.calls)
                                .with("share", r.ns as f64 / adv)
                        })
                        .collect(),
                ),
            )
            .with(
                "advance",
                Json::object()
                    .with("ns", self.advance_ns)
                    .with("calls", self.advance_calls),
            )
            .with("cycles", self.cycles)
            .with("ticks", self.ticks)
            .with("host_ns_per_cycle", self.host_ns_per_cycle())
            .with("coverage", self.coverage())
            .with("consistent", self.consistent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiled() -> Prof {
        let mut p = Prof::new();
        p.record(Component::Noc, Duration::from_nanos(400));
        p.record(Component::Directory, Duration::from_nanos(300));
        p.record(Component::Core, Duration::from_nanos(200));
        p.record_advance(Duration::from_nanos(1000), 50);
        p.tick();
        p
    }

    #[test]
    fn export_and_breakdown_round_trip() {
        let mut reg = Registry::new();
        profiled().export(&mut reg);
        let b = ProfBreakdown::from_registry(&reg).expect("profiled");
        assert_eq!(b.component_ns(), 900);
        assert_eq!(b.advance_ns, 1000);
        assert_eq!(b.cycles, 50);
        assert_eq!(b.ticks, 1);
        assert!(b.consistent());
        assert!((b.coverage() - 0.9).abs() < 1e-9);
        assert!((b.host_ns_per_cycle() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn phase_marks_chain_and_disarmed_marks_charge_nothing() {
        let mut prof = Some(Box::new(Prof::new()));
        let mut mark = PhaseMark::start(true);
        mark.lap(&mut prof, Component::Noc);
        mark.lap(&mut prof, Component::Core);
        let p = prof.as_deref().expect("armed");
        assert_eq!(p.calls[Component::Noc as usize], 1);
        assert_eq!(p.calls[Component::Core as usize], 1);

        // A chain opened disarmed never charges, even once armed.
        let mut late = Some(Box::new(Prof::new()));
        let mut cold = PhaseMark::start(false);
        cold.lap(&mut late, Component::Noc);
        assert_eq!(late.as_deref().expect("armed").calls, [0; 6]);
    }

    #[test]
    fn unprofiled_registry_yields_none() {
        assert!(ProfBreakdown::from_registry(&Registry::new()).is_none());
        assert!(ProfBreakdown::from_metrics_json(&Json::object()).is_none());
    }

    #[test]
    fn metrics_json_matches_registry_extraction() {
        let mut reg = Registry::new();
        profiled().export(&mut reg);
        let from_reg = ProfBreakdown::from_registry(&reg).expect("profiled");
        let from_json = ProfBreakdown::from_metrics_json(&reg.to_json()).expect("profiled");
        assert_eq!(from_reg, from_json);
    }

    #[test]
    fn overspent_components_are_flagged() {
        let mut p = profiled();
        p.record(Component::Mem, Duration::from_nanos(500));
        let mut reg = Registry::new();
        p.export(&mut reg);
        let b = ProfBreakdown::from_registry(&reg).expect("profiled");
        assert!(!b.consistent());
        assert!(b.render().contains("INCONSISTENT"));
    }

    #[test]
    fn render_lists_every_component() {
        let mut reg = Registry::new();
        profiled().export(&mut reg);
        let b = ProfBreakdown::from_registry(&reg).expect("profiled");
        let table = b.render();
        for c in Component::ALL {
            assert!(table.contains(c.label()), "{table}");
        }
        assert!(table.contains("advance (total)"), "{table}");
        assert!(table.contains("(consistent)"), "{table}");
    }

    #[test]
    fn disarmed_region_timer_charges_nothing() {
        let t = RegionTimer::start(false);
        let mut prof = Some(Box::new(Prof::new()));
        t.stop(&mut prof, Component::Noc);
        assert_eq!(prof.expect("armed").calls[Component::Noc as usize], 0);
    }

    #[test]
    fn section_json_is_wellformed() {
        let mut reg = Registry::new();
        profiled().export(&mut reg);
        let b = ProfBreakdown::from_registry(&reg).expect("profiled");
        let j = b.to_json();
        assert_eq!(j.get("consistent"), Some(&Json::Bool(true)));
        crate::json::parse(&j.to_compact_string()).expect("valid JSON");
    }
}
