//! Transaction-tracing model: the causal hop-stage taxonomy and the
//! per-stage histogram bundle a traced simulation exports.
//!
//! A *transaction* is one L1 miss's round trip through the machine:
//! request injection into the NOC, routing, ejection at the LLC tile,
//! bank queueing and service, optional directory indirection (snoop
//! fan-out and ack collection), optional memory-channel queueing and
//! service, and the response's trip back through the NOC. The tracer
//! timestamps each causal hand-off and records the *span since the
//! previous hand-off* into that stage's histogram, so by construction
//! the per-stage spans of one transaction sum exactly to its end-to-end
//! latency — the invariant `sop trace --analyze` checks when it prints
//! a breakdown table against `sim.txn.total`.
//!
//! Stage keys live under `sim.txn.` in the [`Registry`], split into
//! `queue`/`service` pairs where the stage has both phases (bank,
//! memory) and named hops where it does not (NOC inject/route/eject,
//! directory).

use crate::hist::Histogram;
use crate::json::Json;
use crate::registry::Registry;

/// One causal hop stage in a transaction's life. The discriminant is
/// the stage's index into [`TxnStats`]'s histogram array and fixes the
/// presentation order of breakdown tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Request or response flits waiting at the source for link access.
    NocInject = 0,
    /// Head-flit departure until the tail flit reaches the destination.
    NocRoute = 1,
    /// Tail arrival at the destination until the packet is delivered.
    NocEject = 2,
    /// Request delivered at the LLC tile, waiting for a free bank port.
    BankQueue = 3,
    /// Bank tag/data array access.
    BankService = 4,
    /// Directory indirection: snoop fan-out until the last ack returns.
    Directory = 5,
    /// LLC miss waiting for its memory channel to go idle.
    MemQueue = 6,
    /// Memory-channel line transfer plus DRAM latency.
    MemService = 7,
}

/// Number of distinct stages.
pub const STAGES: usize = 8;

/// The registry key for the end-to-end latency histogram.
pub const TOTAL_KEY: &str = "sim.txn.total";

impl Stage {
    /// Every stage, in presentation order.
    pub const ALL: [Stage; STAGES] = [
        Stage::NocInject,
        Stage::NocRoute,
        Stage::NocEject,
        Stage::BankQueue,
        Stage::BankService,
        Stage::Directory,
        Stage::MemQueue,
        Stage::MemService,
    ];

    /// The registry key this stage's histogram is published under.
    pub fn key(self) -> &'static str {
        match self {
            Stage::NocInject => "sim.txn.noc.inject",
            Stage::NocRoute => "sim.txn.noc.route",
            Stage::NocEject => "sim.txn.noc.eject",
            Stage::BankQueue => "sim.txn.bank.queue",
            Stage::BankService => "sim.txn.bank.service",
            Stage::Directory => "sim.txn.directory",
            Stage::MemQueue => "sim.txn.mem.queue",
            Stage::MemService => "sim.txn.mem.service",
        }
    }

    /// Short human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NocInject => "noc inject",
            Stage::NocRoute => "noc route",
            Stage::NocEject => "noc eject",
            Stage::BankQueue => "bank queue",
            Stage::BankService => "bank service",
            Stage::Directory => "directory",
            Stage::MemQueue => "mem queue",
            Stage::MemService => "mem service",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-stage span histograms plus the end-to-end total, recorded by the
/// simulator while transaction tracing is armed and exported into the
/// window registry as `sim.txn.*`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnStats {
    stages: [Histogram; STAGES],
    total: Histogram,
}

impl TxnStats {
    /// An empty bundle.
    pub fn new() -> Self {
        TxnStats::default()
    }

    /// Records one hop span for `stage`.
    pub fn record(&mut self, stage: Stage, span: u64) {
        self.stages[stage.index()].record(span);
    }

    /// Records one completed transaction's end-to-end latency.
    pub fn record_total(&mut self, latency: u64) {
        self.total.record(latency);
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// The end-to-end latency histogram.
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// Number of sampled transactions that completed.
    pub fn completed(&self) -> u64 {
        self.total.count()
    }

    /// Sum of all per-stage span sums. Because every span is the time
    /// since the previous causal hand-off, this equals
    /// `self.total().sum()` exactly for any set of *completed*
    /// transactions — the consistency invariant the analyzer verifies.
    pub fn stage_sum(&self) -> u64 {
        self.stages.iter().map(Histogram::sum).sum()
    }

    /// Publishes every stage histogram plus the total under `sim.txn.*`.
    pub fn export(&self, registry: &mut Registry) {
        for stage in Stage::ALL {
            let merged = registry.histogram_merge(stage.key(), &self.stages[stage.index()]);
            debug_assert!(merged.is_ok(), "{merged:?}");
        }
        let merged = registry.histogram_merge(TOTAL_KEY, &self.total);
        debug_assert!(merged.is_ok(), "{merged:?}");
    }

    /// Clears all histograms (used at the measurement-window boundary).
    pub fn reset(&mut self) {
        *self = TxnStats::new();
    }

    /// Summary as a JSON object keyed by stage.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        for stage in Stage::ALL {
            j.insert(stage.key(), self.stages[stage.index()].to_json());
        }
        j.insert(TOTAL_KEY, self.total.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_keys_are_distinct_and_under_sim_txn() {
        let keys: Vec<&str> = Stage::ALL.iter().map(|s| s.key()).collect();
        for (i, k) in keys.iter().enumerate() {
            assert!(k.starts_with("sim.txn."), "{k}");
            assert!(!keys[i + 1..].contains(k), "duplicate key {k}");
        }
        assert!(!keys.contains(&TOTAL_KEY));
    }

    #[test]
    fn contiguous_spans_sum_to_the_total() {
        let mut stats = TxnStats::new();
        // One transaction: hand-offs at 3, 7, 10, 14 from issue at 0.
        stats.record(Stage::NocInject, 3);
        stats.record(Stage::NocRoute, 4);
        stats.record(Stage::NocEject, 3);
        stats.record(Stage::BankService, 4);
        stats.record_total(14);
        assert_eq!(stats.stage_sum(), stats.total().sum());
        assert_eq!(stats.completed(), 1);
    }

    #[test]
    fn export_publishes_every_stage_and_the_total() {
        let mut stats = TxnStats::new();
        stats.record(Stage::MemQueue, 9);
        stats.record_total(9);
        let mut reg = Registry::new();
        stats.export(&mut reg);
        for stage in Stage::ALL {
            assert!(reg.histogram(stage.key()).is_some(), "{}", stage.key());
        }
        assert_eq!(reg.histogram(TOTAL_KEY).map(Histogram::count), Some(1));
        assert_eq!(
            reg.histogram(Stage::MemQueue.key()).map(Histogram::sum),
            Some(9)
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut stats = TxnStats::new();
        stats.record(Stage::BankQueue, 5);
        stats.record_total(5);
        stats.reset();
        assert_eq!(stats.completed(), 0);
        assert_eq!(stats.stage_sum(), 0);
    }

    #[test]
    fn json_form_is_wellformed() {
        let mut stats = TxnStats::new();
        stats.record(Stage::Directory, 2);
        stats.record_total(2);
        crate::json::parse(&stats.to_json().to_compact_string()).expect("valid JSON");
    }
}
