//! Named-metric registry.
//!
//! Every component of the stack publishes its counters under a
//! hierarchical dotted key (`sim.llc.bank3.misses`, `noc.class.response.
//! packets`), so a whole run collapses into one flat, mergeable map that
//! the run report serializes verbatim. Keys sort lexicographically in
//! the `BTreeMap`, which groups subsystems together for free.

use std::collections::BTreeMap;
use std::fmt;

use crate::hist::Histogram;
use crate::json::Json;

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count; merges by addition.
    Counter(u64),
    /// Point-in-time measurement; merges last-writer-wins.
    Gauge(f64),
    /// Sample distribution; merges bucket-wise. Boxed so the common
    /// counter/gauge entries don't pay for the histogram's bucket array.
    Histogram(Box<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Metric::Counter(v) => Json::UInt(*v),
            Metric::Gauge(v) => Json::Num(*v),
            Metric::Histogram(h) => h.to_json(),
        }
    }
}

/// A rename attempt that would clobber an existing key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameError {
    /// The key that could not be created.
    pub to: String,
}

impl fmt::Display for RenameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rename target {:?} already exists", self.to)
    }
}

impl std::error::Error for RenameError {}

/// A metric operation that found the key bound to a different kind —
/// e.g. recording a histogram sample into a key that already holds a
/// counter. Returned instead of panicking so one bad key cannot abort a
/// long campaign; callers decide whether to skip, log, or escalate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricKindError {
    /// The colliding key.
    pub key: String,
    /// The kind the operation required (e.g. `"histogram"`).
    pub expected: &'static str,
    /// The kind the key actually holds.
    pub found: &'static str,
}

impl fmt::Display for MetricKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metric {:?} is a {}, not a {}",
            self.key, self.found, self.expected
        )
    }
}

impl std::error::Error for MetricKindError {}

/// A flat map of hierarchical metric names to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter at `key`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a non-counter metric.
    pub fn counter_add(&mut self, key: &str, delta: u64) {
        match self
            .metrics
            .entry(key.to_owned())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {key:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge at `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a non-gauge metric.
    pub fn gauge_set(&mut self, key: &str, value: f64) {
        match self
            .metrics
            .entry(key.to_owned())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric {key:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one sample into the histogram at `key`, creating it if
    /// absent. A key already bound to a non-histogram metric yields a
    /// [`MetricKindError`] and leaves the registry untouched, so a bad
    /// key cannot abort a long campaign.
    pub fn histogram_record(&mut self, key: &str, sample: u64) -> Result<(), MetricKindError> {
        match self
            .metrics
            .entry(key.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => {
                h.record(sample);
                Ok(())
            }
            other => Err(MetricKindError {
                key: key.to_owned(),
                expected: "histogram",
                found: other.kind(),
            }),
        }
    }

    /// Merges a whole histogram into the one at `key` (creating it).
    /// Kind collisions error instead of panicking, like
    /// [`histogram_record`](Self::histogram_record).
    pub fn histogram_merge(&mut self, key: &str, hist: &Histogram) -> Result<(), MetricKindError> {
        match self
            .metrics
            .entry(key.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => {
                h.merge(hist);
                Ok(())
            }
            other => Err(MetricKindError {
                key: key.to_owned(),
                expected: "histogram",
                found: other.kind(),
            }),
        }
    }

    /// Reads a counter; absent keys read 0.
    pub fn counter(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a gauge; absent keys read `None`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a histogram by reference, if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.metrics.get(key) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Raw metric lookup.
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.get(key)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums all counters whose key starts with `prefix` — e.g.
    /// `sum_counters("sim.llc.")` totals per-bank misses and accesses.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.metrics
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Sums counters whose key starts with `prefix` AND ends with
    /// `suffix` — e.g. `sum_counters_matching("sim.llc.", ".misses")`
    /// totals misses across all banks.
    pub fn sum_counters_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.metrics
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(k, _)| k.ends_with(suffix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Merges `other` into `self`: counters add, gauges take the other's
    /// value, histograms merge bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if a shared key holds different metric kinds in the two
    /// registries — that is a naming-scheme bug, not a runtime condition.
    pub fn merge(&mut self, other: &Registry) {
        for (key, metric) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), metric.clone());
                }
                Some(existing) => match (existing, metric) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a = *b,
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (existing, incoming) => panic!(
                        "merge type collision on {key:?}: {} vs {}",
                        existing.kind(),
                        incoming.kind()
                    ),
                },
            }
        }
    }

    /// A copy of this registry with every key prefixed by `prefix`
    /// (callers supply the trailing dot, e.g. `"sim."`).
    #[must_use]
    pub fn prefixed(&self, prefix: &str) -> Registry {
        Registry {
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| (format!("{prefix}{k}"), v.clone()))
                .collect(),
        }
    }

    /// Moves the metric at `from` to `to`. Renaming an absent key is a
    /// no-op; renaming onto an existing key is an error (the metric stays
    /// at `from`).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), RenameError> {
        if from == to || !self.metrics.contains_key(from) {
            return Ok(());
        }
        if self.metrics.contains_key(to) {
            return Err(RenameError { to: to.to_owned() });
        }
        let metric = self.metrics.remove(from).expect("checked above");
        self.metrics.insert(to.to_owned(), metric);
        Ok(())
    }

    /// All metrics as one flat JSON object, keys in sorted order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_zero_when_absent() {
        let mut r = Registry::new();
        r.counter_add("sim.llc.misses", 3);
        r.counter_add("sim.llc.misses", 2);
        assert_eq!(r.counter("sim.llc.misses"), 5);
        assert_eq!(r.counter("nope"), 0);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_merges_histograms() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.histogram_record("h", 10).expect("fresh key");
        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        b.histogram_record("h", 20).expect("fresh key");
        b.counter_add("only_b", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").map(Histogram::count), Some(2));
        assert_eq!(a.counter("only_b"), 7);
    }

    #[test]
    #[should_panic(expected = "type collision")]
    fn merge_panics_on_kind_collision() {
        let mut a = Registry::new();
        a.counter_add("k", 1);
        let mut b = Registry::new();
        b.gauge_set("k", 1.0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn counter_add_panics_on_kind_mismatch() {
        let mut r = Registry::new();
        r.gauge_set("k", 1.0);
        r.counter_add("k", 1);
    }

    #[test]
    fn histogram_ops_error_on_kind_collision_without_mutating() {
        let mut r = Registry::new();
        r.counter_add("k", 5);
        let err = r.histogram_record("k", 1).expect_err("counter under key");
        assert_eq!(err.key, "k");
        assert_eq!(err.expected, "histogram");
        assert_eq!(err.found, "counter");
        assert!(err.to_string().contains("not a histogram"), "{err}");
        let mut h = Histogram::new();
        h.record(3);
        r.gauge_set("g", 1.0);
        let err = r.histogram_merge("g", &h).expect_err("gauge under key");
        assert_eq!(err.found, "gauge");
        // The collisions left both original metrics untouched.
        assert_eq!(r.counter("k"), 5);
        assert_eq!(r.gauge("g"), Some(1.0));
        // And the happy path still records.
        r.histogram_merge("h", &h).expect("fresh key");
        assert_eq!(r.histogram("h").map(Histogram::count), Some(1));
    }

    #[test]
    fn prefixed_prepends_every_key() {
        let mut r = Registry::new();
        r.counter_add("llc.misses", 4);
        let p = r.prefixed("sim.");
        assert_eq!(p.counter("sim.llc.misses"), 4);
        assert_eq!(p.counter("llc.misses"), 0);
    }

    #[test]
    fn rename_moves_and_rejects_collisions() {
        let mut r = Registry::new();
        r.counter_add("old", 4);
        r.counter_add("taken", 1);
        assert!(r.rename("old", "new").is_ok());
        assert_eq!(r.counter("new"), 4);
        assert_eq!(r.counter("old"), 0);
        // Absent source: no-op.
        assert!(r.rename("missing", "anywhere").is_ok());
        // Occupied target: error, metric stays put.
        r.counter_add("src", 2);
        let err = r.rename("src", "taken").expect_err("collision");
        assert_eq!(err.to, "taken");
        assert_eq!(r.counter("src"), 2);
        assert_eq!(r.counter("taken"), 1);
    }

    #[test]
    fn sum_counters_totals_a_subtree() {
        let mut r = Registry::new();
        r.counter_add("sim.llc.bank0.misses", 2);
        r.counter_add("sim.llc.bank1.misses", 3);
        r.counter_add("sim.l1.fills", 100);
        r.gauge_set("sim.llc.util", 0.5); // gauges are excluded
        assert_eq!(r.sum_counters("sim.llc."), 5);
        assert_eq!(r.sum_counters("sim."), 105);
        assert_eq!(r.sum_counters("noc."), 0);
        assert_eq!(r.sum_counters_matching("sim.llc.", ".misses"), 5);
        assert_eq!(r.sum_counters_matching("sim.", ".fills"), 100);
        assert_eq!(r.sum_counters_matching("sim.llc.", ".fills"), 0);
    }

    #[test]
    fn json_form_sorts_keys_and_is_wellformed() {
        let mut r = Registry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.gauge_set("m.mid", 0.25);
        let j = r.to_json();
        let text = j.to_compact_string();
        let keys: Vec<&str> = match &j {
            Json::Obj(m) => m.iter().map(|(k, _)| k.as_str()).collect(),
            _ => panic!("object"),
        };
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
        crate::json::parse(&text).expect("valid JSON");
    }
}
