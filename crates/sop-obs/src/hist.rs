//! Power-of-two-bucketed latency histogram.
//!
//! Mean latencies hide the tail; the SimFlex methodology the thesis
//! follows reports distributions over sampled measurements. This
//! histogram is cheap enough to keep always-on in the simulated machine
//! and is the canonical `Histogram` for the whole workspace (`sop-sim`
//! re-exports it as `sop_sim::stats::Histogram`).

use std::fmt;

use crate::json::Json;

/// A histogram over `u64` samples with power-of-two buckets:
/// bucket `i` holds samples in `[2^i, 2^(i+1))` (bucket 0 holds 0 and 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 32],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. The running sum saturates rather than wrapping
    /// so a long run can never corrupt `mean()` via overflow.
    pub fn record(&mut self, sample: u64) {
        self.record_n(sample, 1);
    }

    /// Records `n` occurrences of the same sample in O(1). The fleet
    /// simulator admits whole batches of requests whose latencies share
    /// a bucket; recording them one by one would dominate its hot path.
    pub fn record_n(&mut self, sample: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = (64 - sample.max(1).leading_zeros())
            .saturating_sub(1)
            .min(31) as usize;
        self.buckets[bucket] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(sample.saturating_mul(n));
        self.max = self.max.max(sample);
    }

    /// Inclusive upper bound of the bucket that `sample` lands in
    /// (`u64::MAX` for the open-ended top bucket). Lets batch callers
    /// find the run of consecutive samples sharing one bucket.
    pub fn bucket_upper(sample: u64) -> u64 {
        let bucket = (64 - sample.max(1).leading_zeros())
            .saturating_sub(1)
            .min(31);
        if bucket >= 31 {
            u64::MAX
        } else {
            (1u64 << (bucket + 1)) - 1
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples (saturating, see [`record`](Self::record)).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`), i.e. an upper estimate of the quantile.
    /// Returns `None` if `q` is out of range or the histogram is empty.
    pub fn try_quantile_upper(&self, q: f64) -> Option<u64> {
        if !(q > 0.0 && q <= 1.0) || self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // The top bucket is open-ended; report the true maximum.
                return Some(if i == 31 {
                    self.max
                } else {
                    (1u64 << (i + 1)) - 1
                });
            }
        }
        Some(self.max)
    }

    /// Panicking variant of [`try_quantile_upper`](Self::try_quantile_upper),
    /// kept for call sites where an empty histogram is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or the histogram is empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        assert!(self.count > 0, "empty histogram has no quantiles");
        self.try_quantile_upper(q).expect("checked above")
    }

    /// Median upper estimate (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.try_quantile_upper(0.50)
    }

    /// 95th-percentile upper estimate (`None` when empty).
    pub fn p95(&self) -> Option<u64> {
        self.try_quantile_upper(0.95)
    }

    /// 99th-percentile upper estimate (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.try_quantile_upper(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
    }

    /// Summary + buckets as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("count", self.count)
            .with("mean", self.mean())
            .with("max", self.max);
        for (q, name) in [
            (self.p50(), "p50"),
            (self.p95(), "p95"),
            (self.p99(), "p99"),
        ] {
            j.insert(name, q.map_or(Json::Null, Json::UInt));
        }
        j.insert(
            "buckets",
            Json::Arr(
                self.buckets()
                    .map(|(lo, n)| Json::Arr(vec![Json::UInt(lo), Json::UInt(n)]))
                    .collect(),
            ),
        );
        j
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.1} p50<={} p95<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.p50().expect("non-empty"),
            self.p95().expect("non-empty"),
            self.p99().expect("non-empty"),
            self.max
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_count_are_exact() {
        let mut h = Histogram::new();
        for s in [1u64, 2, 3, 4] {
            h.record(s);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.max(), 4);
        assert_eq!(h.sum(), 10);
    }

    #[test]
    fn quantile_upper_bounds_the_true_quantile() {
        let mut h = Histogram::new();
        for s in 0..1000u64 {
            h.record(s);
        }
        // True p50 is ~500; the bucketed upper estimate must cover it
        // without being wildly above (next power of two).
        let p50 = h.p50().expect("non-empty");
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.p99().expect("non-empty");
        assert!(p99 >= 990, "p99 {p99}");
        assert_eq!(h.quantile_upper(0.5), p50);
    }

    #[test]
    fn try_quantile_handles_bad_inputs_without_panicking() {
        let empty = Histogram::new();
        assert_eq!(empty.try_quantile_upper(0.5), None);
        assert_eq!(empty.p50(), None);
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.try_quantile_upper(0.0), None);
        assert_eq!(h.try_quantile_upper(1.5), None);
        assert_eq!(h.try_quantile_upper(f64::NAN), None);
        assert_eq!(h.try_quantile_upper(1.0), Some(7));
    }

    #[test]
    fn zero_samples_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper(1.0), 1);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // A wrapping sum would make the mean tiny; saturation keeps it
        // pinned at the representable maximum.
        assert!(h.mean() > 1e18);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.mean(), 505.0);
    }

    #[test]
    fn buckets_iterate_in_order() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(100);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert!(buckets[0].0 < buckets[1].0);
    }

    #[test]
    fn huge_samples_saturate_the_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_upper(1.0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn quantile_of_empty_panics() {
        Histogram::new().quantile_upper(0.5);
    }

    #[test]
    fn display_summarizes() {
        let mut h = Histogram::new();
        assert_eq!(h.to_string(), "n=0");
        for s in [1u64, 2, 4, 8] {
            h.record(s);
        }
        let s = h.to_string();
        assert!(s.starts_with("n=4 mean=3.8"), "{s}");
        assert!(s.contains("max=8"), "{s}");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut batched = Histogram::new();
        let mut looped = Histogram::new();
        for (s, n) in [(0u64, 3u64), (7, 5), (1000, 2), (u64::MAX, 2)] {
            batched.record_n(s, n);
            for _ in 0..n {
                looped.record(s);
            }
        }
        batched.record_n(42, 0); // no-op
        assert_eq!(batched, looped);
    }

    #[test]
    fn bucket_upper_bounds_its_own_bucket() {
        for s in [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 30, u64::MAX] {
            let hi = Histogram::bucket_upper(s);
            assert!(hi >= s, "upper {hi} below sample {s}");
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            a.record(s);
            b.record(hi);
            // Same bucket: identical bucket vectors.
            assert_eq!(
                a.buckets().map(|(lo, _)| lo).collect::<Vec<_>>(),
                b.buckets().map(|(lo, _)| lo).collect::<Vec<_>>()
            );
        }
        assert_eq!(Histogram::bucket_upper(0), 1);
        assert_eq!(Histogram::bucket_upper(u64::MAX), u64::MAX);
    }

    #[test]
    fn json_form_is_wellformed() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(300);
        let j = h.to_json();
        assert_eq!(j.get("count"), Some(&Json::UInt(2)));
        crate::json::parse(&j.to_compact_string()).expect("valid JSON");
    }
}
