//! Latency-attribution analysis over a traced run's registry.
//!
//! [`TxnBreakdown`] reads the `sim.txn.*` histograms a traced simulation
//! exported (see [`crate::txn`]) and renders the Fig-4.x-style
//! "where did the cycles go" table: per-stage sample counts, p50/p95/p99
//! upper estimates, means, and each stage's share of total transaction
//! cycles. It also re-checks the tracer's structural invariant — stage
//! span sums must equal the end-to-end `sim.txn.total` sum — so a
//! broken attribution can never print a silently-wrong table.

use crate::hist::Histogram;
use crate::json::Json;
use crate::registry::Registry;
use crate::txn::{Stage, TOTAL_KEY};

/// Summary statistics for one stage (or for the end-to-end total).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Table label (`"noc inject"`, …, `"total"`).
    pub label: &'static str,
    /// Registry key the row was read from.
    pub key: &'static str,
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all spans in cycles.
    pub sum: u64,
    /// Mean span in cycles.
    pub mean: f64,
    /// p50/p95/p99 bucket upper estimates (0 when the row is empty).
    pub p50: u64,
    /// 95th percentile upper estimate.
    pub p95: u64,
    /// 99th percentile upper estimate.
    pub p99: u64,
    /// Largest recorded span.
    pub max: u64,
}

impl StageRow {
    fn from_hist(label: &'static str, key: &'static str, h: &Histogram) -> StageRow {
        StageRow {
            label,
            key,
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            p50: h.p50().unwrap_or(0),
            p95: h.p95().unwrap_or(0),
            p99: h.p99().unwrap_or(0),
            max: h.max(),
        }
    }

    fn empty(label: &'static str, key: &'static str) -> StageRow {
        StageRow::from_hist(label, key, &Histogram::new())
    }

    fn to_json(&self) -> Json {
        Json::object()
            .with("stage", self.label)
            .with("key", self.key)
            .with("count", self.count)
            .with("sum", self.sum)
            .with("mean", self.mean)
            .with("p50", self.p50)
            .with("p95", self.p95)
            .with("p99", self.p99)
            .with("max", self.max)
    }
}

/// A per-stage latency breakdown extracted from a traced run's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnBreakdown {
    /// One row per [`Stage`], in presentation order (empty stages kept,
    /// so crossbar runs still show a `directory` row at zero).
    pub rows: Vec<StageRow>,
    /// The end-to-end `sim.txn.total` row.
    pub total: StageRow,
}

impl TxnBreakdown {
    /// Extracts the breakdown from a registry, or `None` when the run
    /// was not traced (no `sim.txn.total` histogram present).
    pub fn from_registry(registry: &Registry) -> Option<TxnBreakdown> {
        let total = registry.histogram(TOTAL_KEY)?;
        let rows = Stage::ALL
            .iter()
            .map(|&s| match registry.histogram(s.key()) {
                Some(h) => StageRow::from_hist(s.label(), s.key(), h),
                None => StageRow::empty(s.label(), s.key()),
            })
            .collect();
        Some(TxnBreakdown {
            rows,
            total: StageRow::from_hist("total", TOTAL_KEY, total),
        })
    }

    /// Sum of every stage row's span sum, in cycles.
    pub fn stage_sum(&self) -> u64 {
        self.rows.iter().map(|r| r.sum).sum()
    }

    /// Whether per-stage attribution accounts for every cycle of the
    /// end-to-end total. The tracer guarantees this by construction for
    /// completed transactions; `false` means the trace is corrupt.
    pub fn consistent(&self) -> bool {
        self.stage_sum() == self.total.sum
    }

    /// Renders the breakdown as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>9} {:>7} {:>7} {:>7} {:>9} {:>12} {:>7}\n",
            "stage", "count", "p50", "p95", "p99", "mean", "cycles", "share"
        ));
        let total_sum = self.total.sum;
        for row in self.rows.iter().chain(std::iter::once(&self.total)) {
            let share = if total_sum == 0 {
                0.0
            } else {
                100.0 * row.sum as f64 / total_sum as f64
            };
            out.push_str(&format!(
                "{:<14} {:>9} {:>7} {:>7} {:>7} {:>9.1} {:>12} {:>6.1}%\n",
                row.label, row.count, row.p50, row.p95, row.p99, row.mean, row.sum, share
            ));
        }
        let verdict = if self.consistent() {
            "consistent"
        } else {
            "INCONSISTENT"
        };
        out.push_str(&format!(
            "stage sums vs sim.txn.total: {} vs {} cycles ({verdict})\n",
            self.stage_sum(),
            total_sum
        ));
        out
    }

    /// JSON form: `{stages: [row...], total: row, consistent: bool}` —
    /// the `txn` section of bench reports.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with(
                "stages",
                Json::Arr(self.rows.iter().map(StageRow::to_json).collect()),
            )
            .with("total", self.total.to_json())
            .with("consistent", self.consistent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnStats;

    fn traced_registry() -> Registry {
        let mut stats = TxnStats::new();
        // Two transactions with contiguous spans.
        stats.record(Stage::NocInject, 1);
        stats.record(Stage::NocRoute, 5);
        stats.record(Stage::NocEject, 2);
        stats.record(Stage::BankQueue, 3);
        stats.record(Stage::BankService, 4);
        stats.record_total(15);
        stats.record(Stage::NocInject, 2);
        stats.record(Stage::NocRoute, 6);
        stats.record(Stage::NocEject, 2);
        stats.record(Stage::BankService, 4);
        stats.record(Stage::MemQueue, 10);
        stats.record(Stage::MemService, 30);
        stats.record_total(54);
        let mut reg = Registry::new();
        stats.export(&mut reg);
        reg
    }

    #[test]
    fn breakdown_requires_a_traced_run() {
        assert!(TxnBreakdown::from_registry(&Registry::new()).is_none());
        assert!(TxnBreakdown::from_registry(&traced_registry()).is_some());
    }

    #[test]
    fn stage_sums_match_the_total_histogram() {
        let b = TxnBreakdown::from_registry(&traced_registry()).expect("traced");
        assert_eq!(b.total.count, 2);
        assert_eq!(b.total.sum, 69);
        assert_eq!(b.stage_sum(), 69);
        assert!(b.consistent());
    }

    #[test]
    fn render_lists_every_stage_and_the_verdict() {
        let b = TxnBreakdown::from_registry(&traced_registry()).expect("traced");
        let table = b.render();
        for stage in Stage::ALL {
            assert!(table.contains(stage.label()), "{table}");
        }
        assert!(table.contains("total"), "{table}");
        assert!(table.contains("(consistent)"), "{table}");
    }

    #[test]
    fn inconsistency_is_flagged() {
        let mut reg = traced_registry();
        // Tamper: extra span that no completed transaction accounts for.
        reg.histogram_record(Stage::Directory.key(), 100)
            .expect("histogram key");
        let b = TxnBreakdown::from_registry(&reg).expect("traced");
        assert!(!b.consistent());
        assert!(b.render().contains("INCONSISTENT"));
    }

    #[test]
    fn json_form_is_wellformed() {
        let b = TxnBreakdown::from_registry(&traced_registry()).expect("traced");
        let j = b.to_json();
        assert_eq!(j.get("consistent"), Some(&Json::Bool(true)));
        crate::json::parse(&j.to_compact_string()).expect("valid JSON");
    }
}
