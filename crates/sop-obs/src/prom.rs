//! Prometheus text exposition for the metrics registry.
//!
//! Renders a [`Registry`] (or the flat `metrics` object of a serialized
//! `sop-report/v1` document) in the Prometheus text exposition format
//! version 0.0.4 — the `sop metrics --text` output, and the format a
//! future `sop serve` daemon will ship verbatim. Dotted registry keys
//! become underscore-separated metric names under a `sop_` namespace
//! (`exec.job.us` → `sop_exec_job_us`); histograms expose cumulative
//! `_bucket{le="..."}` series derived from the registry's power-of-two
//! buckets, plus `_sum` and `_count`.

use crate::hist::Histogram;
use crate::json::Json;
use crate::registry::{Metric, Registry};

/// Maps a dotted registry key onto a legal Prometheus metric name:
/// `sop_` namespace, `[a-zA-Z0-9_:]` alphabet, everything else `_`.
pub fn metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 4);
    out.push_str("sop_");
    for ch in key.chars() {
        if ch.is_ascii_alphanumeric() || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_histogram(out: &mut String, name: &str, buckets: &[(u64, u64)], sum: u64, count: u64) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for &(lo, n) in buckets {
        cumulative += n;
        // Power-of-two bucket with lower bound `lo` covers values up to
        // and including `2*lo - 1` (bucket zero holds only the value 0).
        let le = if lo == 0 { 0 } else { 2 * lo - 1 };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
    out.push_str(&format!("{name}_sum {sum}\n"));
    out.push_str(&format!("{name}_count {count}\n"));
}

fn hist_lines(out: &mut String, name: &str, h: &Histogram) {
    let buckets: Vec<(u64, u64)> = h.buckets().collect();
    push_histogram(out, name, &buckets, h.sum(), h.count());
}

/// Renders a live registry as Prometheus exposition text. Counters and
/// gauges are one sample each; histograms expand into bucket series.
pub fn exposition(reg: &Registry) -> String {
    let mut out = String::new();
    for (key, metric) in reg.iter() {
        let name = metric_name(key);
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            Metric::Histogram(h) => hist_lines(&mut out, &name, h),
        }
    }
    out
}

/// Renders the flat `metrics` object of a serialized report. Numbers
/// come out as untyped samples (the JSON form does not distinguish
/// counters from gauges); histogram objects are re-expanded into
/// `_bucket`/`_sum`/`_count` series (`_sum` is reconstructed from
/// `mean * count`, which round-trips exactly for the integer sums the
/// registry records).
pub fn exposition_from_json(metrics: &Json) -> String {
    let mut out = String::new();
    let Json::Obj(members) = metrics else {
        return out;
    };
    for (key, value) in members {
        let name = metric_name(key);
        match value {
            Json::UInt(_) | Json::Int(_) | Json::Num(_) | Json::Bool(_) => {
                out.push_str(&format!("# TYPE {name} untyped\n"));
                out.push_str(&format!("{name} {}\n", value.to_compact_string()));
            }
            Json::Obj(_) => {
                let count = value.get("count").and_then(Json::as_f64).unwrap_or(0.0);
                let mean = value.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
                let buckets: Vec<(u64, u64)> = value
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|pair| {
                                let pair = pair.as_arr()?;
                                let lo = pair.first()?.as_f64()? as u64;
                                let n = pair.get(1)?.as_f64()? as u64;
                                Some((lo, n))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let sum = (mean * count).round() as u64;
                push_histogram(&mut out, &name, &buckets, sum, count as u64);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_into_the_sop_namespace() {
        assert_eq!(metric_name("exec.job.us"), "sop_exec_job_us");
        assert_eq!(metric_name("sim.llc.bank0.hits"), "sop_sim_llc_bank0_hits");
    }

    #[test]
    fn counters_gauges_and_histograms_expose() {
        let mut reg = Registry::new();
        reg.counter_add("exec.jobs.completed", 7);
        reg.gauge_set("sim.fault.links_down", 2.0);
        for v in [1, 3, 900] {
            reg.histogram_record("exec.job.us", v).expect("fresh key");
        }
        let text = exposition(&reg);
        assert!(text.contains("# TYPE sop_exec_jobs_completed counter"));
        assert!(text.contains("sop_exec_jobs_completed 7"));
        assert!(text.contains("# TYPE sop_sim_fault_links_down gauge"));
        assert!(text.contains("# TYPE sop_exec_job_us histogram"));
        assert!(text.contains("sop_exec_job_us_count 3"));
        assert!(text.contains("sop_exec_job_us_sum 904"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn bucket_counts_are_cumulative() {
        let mut reg = Registry::new();
        for v in [1, 2, 1000] {
            reg.histogram_record("h", v).expect("fresh key");
        }
        let text = exposition(&reg);
        let counts: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("sop_h_bucket"))
            .collect();
        let last_finite = counts[counts.len() - 2];
        assert!(last_finite.ends_with(" 3"), "{text}");
    }

    #[test]
    fn json_form_round_trips_scalars_and_histograms() {
        let mut reg = Registry::new();
        reg.counter_add("exec.cache.hits", 5);
        for v in [10, 20] {
            reg.histogram_record("exec.job.us", v).expect("fresh key");
        }
        let text = exposition_from_json(&reg.to_json());
        assert!(text.contains("sop_exec_cache_hits 5"));
        assert!(text.contains("sop_exec_job_us_count 2"));
        assert!(text.contains("sop_exec_job_us_sum 30"));
    }

    #[test]
    fn non_object_input_renders_empty() {
        assert_eq!(exposition_from_json(&Json::Null), "");
    }
}
