//! Off-chip memory interface model.
//!
//! The thesis models single-channel DDR3-1667 interfaces at 40/32nm and the
//! (then-emerging) DDR4 interface at 20nm, which doubles per-channel
//! bandwidth (§2.4.1). Each interface costs (2 + 10)mm² for PHY plus
//! controller and burns 5.7W (Table 2.1). Crucially, the analog PHY
//! circuitry prevents the interface from scaling with the process, which is
//! why memory interfaces eat a growing share of the die at 20nm.

use crate::node::TechnologyNode;

/// DRAM interface generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryGen {
    /// DDR3-1667: 12.8GB/s per channel peak.
    Ddr3,
    /// DDR4: double the DDR3 per-channel bandwidth.
    Ddr4,
}

impl MemoryGen {
    /// Peak channel bandwidth in GB/s.
    pub fn peak_gbps(self) -> f64 {
        match self {
            MemoryGen::Ddr3 => 12.8,
            MemoryGen::Ddr4 => 25.6,
        }
    }
}

impl std::fmt::Display for MemoryGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryGen::Ddr3 => f.write_str("DDR3-1667"),
            MemoryGen::Ddr4 => f.write_str("DDR4"),
        }
    }
}

/// A single-channel memory interface (PHY + controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryInterface {
    /// Interface generation.
    pub gen: MemoryGen,
    /// Die area in mm² (PHY + controller; does not scale with process).
    pub area_mm2: f64,
    /// Power in watts per channel.
    pub power_w: f64,
    /// Fraction of the peak bandwidth that is usable (70%, §2.4.1 citing
    /// dramsim-style effective-utilization studies).
    pub utilization: f64,
}

impl MemoryInterface {
    /// The memory interface paired with a technology node.
    pub fn at(node: TechnologyNode) -> Self {
        MemoryInterface {
            gen: node.memory_gen(),
            // Table 2.1: PHY 2mm² + controller 10mm²; analog circuitry keeps
            // this constant across nodes (§2.4.1, §3.4.4).
            area_mm2: 12.0,
            power_w: 5.7,
            utilization: 0.70,
        }
    }

    /// A DDR3 interface regardless of node (used for the 20nm DDR3
    /// sensitivity discussion in §3.4.4).
    pub fn ddr3() -> Self {
        MemoryInterface {
            gen: MemoryGen::Ddr3,
            area_mm2: 12.0,
            power_w: 5.7,
            utilization: 0.70,
        }
    }

    /// Useful (sustainable) bandwidth per channel in GB/s. A DDR3-1667
    /// channel provides 12.8 x 0.70 ≈ 9GB/s (§2.4.1).
    pub fn useful_gbps(&self) -> f64 {
        self.gen.peak_gbps() * self.utilization
    }

    /// Number of channels needed to sustain `demand_gbps` of off-chip
    /// traffic. Zero demand still requires one channel: every server chip
    /// must reach memory.
    pub fn channels_for(&self, demand_gbps: f64) -> u32 {
        assert!(demand_gbps >= 0.0, "bandwidth demand must be non-negative");
        ((demand_gbps / self.useful_gbps()).ceil() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_useful_bandwidth_is_about_9gbps() {
        let m = MemoryInterface::at(TechnologyNode::N40);
        assert!((m.useful_gbps() - 8.96).abs() < 1e-9);
    }

    #[test]
    fn ddr4_doubles_ddr3() {
        assert_eq!(
            MemoryGen::Ddr4.peak_gbps(),
            2.0 * MemoryGen::Ddr3.peak_gbps()
        );
    }

    #[test]
    fn channel_provisioning_rounds_up() {
        let m = MemoryInterface::at(TechnologyNode::N40);
        assert_eq!(m.channels_for(0.0), 1);
        assert_eq!(m.channels_for(8.9), 1);
        assert_eq!(m.channels_for(9.0), 2);
        assert_eq!(m.channels_for(18.8), 3); // two SOP OoO pods at 9.4GB/s each
    }

    #[test]
    fn interface_area_constant_across_nodes() {
        for node in TechnologyNode::ALL {
            assert_eq!(MemoryInterface::at(node).area_mm2, 12.0);
            assert_eq!(MemoryInterface::at(node).power_w, 5.7);
        }
    }

    #[test]
    fn node_20nm_gets_ddr4() {
        assert_eq!(
            MemoryInterface::at(TechnologyNode::N20).gen,
            MemoryGen::Ddr4
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        MemoryInterface::at(TechnologyNode::N40).channels_for(-1.0);
    }
}
