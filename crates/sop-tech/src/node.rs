//! Process technology nodes.
//!
//! The thesis evaluates three nodes: 40nm (the chapter 2/3/5 baseline), 32nm
//! (the chapter 4 NOC-Out pod study), and 20nm (the scaling projection).
//! Cores and caches are assumed to scale perfectly with feature size
//! (§2.4.1), while memory-interface PHYs do not scale at all because of
//! their analog circuitry.

use std::fmt;

/// A manufacturing process node used in the thesis' evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TechnologyNode {
    /// 40nm: baseline for chapters 2, 3, 5, and 6 (0.9V, 2GHz, DDR3).
    N40,
    /// 32nm: the chapter-4 pod microarchitecture study (0.9V, 2GHz).
    N32,
    /// 20nm: the scaling projection (0.8V, 2GHz, DDR4).
    N20,
}

impl TechnologyNode {
    /// All nodes, coarsest first.
    pub const ALL: [TechnologyNode; 3] = [
        TechnologyNode::N40,
        TechnologyNode::N32,
        TechnologyNode::N20,
    ];

    /// Feature size in nanometres.
    pub fn feature_nm(self) -> f64 {
        match self {
            TechnologyNode::N40 => 40.0,
            TechnologyNode::N32 => 32.0,
            TechnologyNode::N20 => 20.0,
        }
    }

    /// On-chip supply voltage in volts (§2.4.1: 0.9V at 40nm, 0.8V at 20nm
    /// per ITRS; 32nm runs at 0.9V per §4.3.2).
    pub fn supply_v(self) -> f64 {
        match self {
            TechnologyNode::N40 | TechnologyNode::N32 => 0.9,
            TechnologyNode::N20 => 0.8,
        }
    }

    /// Core clock frequency in GHz. The thesis holds frequency at 2GHz in
    /// every node to bound power (§2.4.1).
    pub fn frequency_ghz(self) -> f64 {
        2.0
    }

    /// Logic/SRAM area scaling factor relative to the 40nm baseline.
    ///
    /// The thesis assumes *perfect area scaling of cores and caches* over
    /// technology generations (§2.4.1), i.e. area scales with the square of
    /// the feature-size ratio.
    pub fn area_scale_from_40nm(self) -> f64 {
        let f = self.feature_nm() / 40.0;
        f * f
    }

    /// Dynamic power scaling factor for logic relative to 40nm.
    ///
    /// Power scales with capacitance (~linear in feature size) and the
    /// square of the supply voltage; frequency is constant. This matches the
    /// thesis' observed chip budgets: the 20nm conventional chip doubles its
    /// core count within roughly the same 95W envelope.
    pub fn power_scale_from_40nm(self) -> f64 {
        let cap = self.feature_nm() / 40.0;
        let v = self.supply_v() / TechnologyNode::N40.supply_v();
        cap * v * v
    }

    /// The DRAM interface generation commercially paired with this node in
    /// the thesis (DDR3 at 40/32nm; DDR4 at 20nm, §2.4.1).
    pub fn memory_gen(self) -> crate::memory::MemoryGen {
        match self {
            TechnologyNode::N40 | TechnologyNode::N32 => crate::memory::MemoryGen::Ddr3,
            TechnologyNode::N20 => crate::memory::MemoryGen::Ddr4,
        }
    }

    /// Main-memory access latency in core cycles: 45ns (Tables 2.2/3.1) at
    /// the 2GHz clock used in every node.
    pub fn memory_latency_cycles(self) -> u32 {
        (45.0 * self.frequency_ghz()).round() as u32
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_sizes() {
        assert_eq!(TechnologyNode::N40.feature_nm(), 40.0);
        assert_eq!(TechnologyNode::N32.feature_nm(), 32.0);
        assert_eq!(TechnologyNode::N20.feature_nm(), 20.0);
    }

    #[test]
    fn area_scaling_is_quadratic() {
        assert!((TechnologyNode::N20.area_scale_from_40nm() - 0.25).abs() < 1e-12);
        assert!((TechnologyNode::N32.area_scale_from_40nm() - 0.64).abs() < 1e-12);
        assert_eq!(TechnologyNode::N40.area_scale_from_40nm(), 1.0);
    }

    #[test]
    fn memory_latency_is_90_cycles_at_2ghz() {
        for node in TechnologyNode::ALL {
            assert_eq!(node.memory_latency_cycles(), 90);
        }
    }

    #[test]
    fn ddr_generation_follows_node() {
        use crate::memory::MemoryGen;
        assert_eq!(TechnologyNode::N40.memory_gen(), MemoryGen::Ddr3);
        assert_eq!(TechnologyNode::N20.memory_gen(), MemoryGen::Ddr4);
    }

    #[test]
    fn power_scale_drops_with_node() {
        let p40 = TechnologyNode::N40.power_scale_from_40nm();
        let p32 = TechnologyNode::N32.power_scale_from_40nm();
        let p20 = TechnologyNode::N20.power_scale_from_40nm();
        assert_eq!(p40, 1.0);
        assert!(p32 < p40);
        assert!(p20 < p32);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(TechnologyNode::N40.to_string(), "40nm");
    }
}
