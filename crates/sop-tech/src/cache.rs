//! CACTI-like SRAM latency geometry.
//!
//! The thesis derives cache access latencies from CACTI 6.5 (§2.4.1,
//! §4.3.2). CACTI's headline behaviour is that access time grows roughly
//! logarithmically with bank capacity (wordline/bitline/H-tree depth all
//! grow with the square root of capacity, and latency is dominated by the
//! deepest stage). We encode that as a small log-linear model whose two
//! constants are the only free parameters, anchored so that a 1MB NUCA bank
//! costs single-digit cycles at 2GHz and a monolithic 32MB array lands in
//! the mid-20s — consistent with the Fig 2.2 observation that caches beyond
//! 16MB lose more latency than they gain in hit rate.

/// Log-linear SRAM bank access-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheGeometry {
    /// Access latency of a 1MB bank, in cycles.
    pub base_cycles_at_1mb: f64,
    /// Additional cycles per doubling of bank capacity.
    pub cycles_per_doubling: f64,
}

impl CacheGeometry {
    /// The default geometry used throughout the reproduction.
    pub fn new() -> Self {
        CacheGeometry {
            base_cycles_at_1mb: 9.0,
            cycles_per_doubling: 2.0,
        }
    }

    /// Access latency in cycles of a single bank of `bank_mb` megabytes.
    ///
    /// # Panics
    ///
    /// Panics if `bank_mb` is not positive.
    pub fn bank_latency_cycles(&self, bank_mb: f64) -> u32 {
        assert!(bank_mb > 0.0, "bank capacity must be positive");
        // The floor covers tag match, data array, and queueing for even the
        // smallest banks — without it, heavily banked NUCA caches would get
        // unphysically cheap as bank count grows.
        let lat = self.base_cycles_at_1mb + self.cycles_per_doubling * bank_mb.log2();
        lat.max(6.0).round() as u32
    }

    /// Access latency of a NUCA cache of `total_mb` split into `banks`
    /// equal banks. NUCA pays the (smaller) per-bank latency; the routing
    /// distance to the bank is charged by the interconnect model, not here.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `total_mb` is not positive.
    pub fn nuca_bank_latency_cycles(&self, total_mb: f64, banks: u32) -> u32 {
        assert!(banks > 0, "a NUCA cache needs at least one bank");
        self.bank_latency_cycles(total_mb / f64::from(banks))
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_capacity() {
        let g = CacheGeometry::new();
        let mut prev = 0;
        for mb in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let lat = g.bank_latency_cycles(mb);
            assert!(lat >= prev, "latency must be monotone in capacity");
            prev = lat;
        }
    }

    #[test]
    fn one_mb_bank_is_single_digit() {
        assert_eq!(CacheGeometry::new().bank_latency_cycles(1.0), 9);
    }

    #[test]
    fn monolithic_32mb_lands_mid_20s() {
        let lat = CacheGeometry::new().bank_latency_cycles(32.0);
        assert!((15..=30).contains(&lat), "got {lat}");
    }

    #[test]
    fn banking_reduces_latency() {
        let g = CacheGeometry::new();
        assert!(g.nuca_bank_latency_cycles(8.0, 8) < g.bank_latency_cycles(8.0));
    }

    #[test]
    fn tiny_banks_floor_at_two_cycles() {
        let g = CacheGeometry::new();
        assert!(g.bank_latency_cycles(0.01) >= 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        CacheGeometry::new().bank_latency_cycles(0.0);
    }
}
