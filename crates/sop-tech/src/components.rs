//! Component area and power tables (thesis Tables 2.1, 2.2, 4.1, 6.1).
//!
//! Three core types appear throughout the thesis:
//!
//! * **Conventional** — the aggressive Xeon-class core of existing server
//!   processors: 4-wide, 128-entry ROB, 32-entry LSQ, 64KB L1s. 25mm² and
//!   11W at 40nm.
//! * **Out-of-order** — an ARM Cortex-A15-like core: 3-wide, 60-entry ROB,
//!   16-entry LSQ, 32KB L1s. 4.5mm² and 1W at 40nm (2.9mm² at 32nm,
//!   Table 4.1).
//! * **In-order** — an ARM Cortex-A8-like core: 2-wide dual-issue. 1.3mm²
//!   and 0.48W at 40nm.

use crate::node::TechnologyNode;

/// The three core microarchitectures evaluated in the thesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Aggressive 4-wide server core (Xeon-class).
    Conventional,
    /// 3-wide out-of-order core (Cortex-A15-like).
    OutOfOrder,
    /// 2-wide in-order core (Cortex-A8-like).
    InOrder,
}

impl CoreKind {
    /// All core kinds, most aggressive first.
    pub const ALL: [CoreKind; 3] = [
        CoreKind::Conventional,
        CoreKind::OutOfOrder,
        CoreKind::InOrder,
    ];

    /// Die area of one core, including its L1 caches, in mm² (Table 2.1 at
    /// 40nm; perfect area scaling to other nodes per §2.4.1).
    pub fn area_mm2(self, node: TechnologyNode) -> f64 {
        let base = match self {
            CoreKind::Conventional => 25.0,
            CoreKind::OutOfOrder => 4.5,
            CoreKind::InOrder => 1.3,
        };
        base * node.area_scale_from_40nm()
    }

    /// Peak power of one core in watts (Table 2.1 at 40nm).
    pub fn power_w(self, node: TechnologyNode) -> f64 {
        let base = match self {
            CoreKind::Conventional => 11.0,
            CoreKind::OutOfOrder => 1.0,
            CoreKind::InOrder => 0.48,
        };
        base * node.power_scale_from_40nm()
    }

    /// Pipeline and memory-system parameters of the core (Table 2.2).
    pub fn microarch(self) -> CoreMicroarch {
        match self {
            CoreKind::Conventional => CoreMicroarch {
                kind: self,
                dispatch_width: 4,
                rob_entries: 128,
                lsq_entries: 32,
                l1i_kb: 64,
                l1d_kb: 64,
                l1_load_to_use_cycles: 3,
                l1_mshrs: 32,
                out_of_order: true,
            },
            CoreKind::OutOfOrder => CoreMicroarch {
                kind: self,
                dispatch_width: 3,
                rob_entries: 60,
                lsq_entries: 16,
                l1i_kb: 32,
                l1d_kb: 32,
                l1_load_to_use_cycles: 2,
                l1_mshrs: 32,
                out_of_order: true,
            },
            CoreKind::InOrder => CoreMicroarch {
                kind: self,
                dispatch_width: 2,
                rob_entries: 0,
                lsq_entries: 0,
                l1i_kb: 32,
                l1d_kb: 32,
                l1_load_to_use_cycles: 2,
                l1_mshrs: 32,
                out_of_order: false,
            },
        }
    }

    /// Short label used in the thesis' tables.
    pub fn label(self) -> &'static str {
        match self {
            CoreKind::Conventional => "Conv",
            CoreKind::OutOfOrder => "OoO",
            CoreKind::InOrder => "IO",
        }
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Pipeline and L1 parameters for a core (Table 2.2 / Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMicroarch {
    /// Which core this describes.
    pub kind: CoreKind,
    /// Dispatch/retirement width in instructions per cycle.
    pub dispatch_width: u32,
    /// Reorder-buffer entries (0 for in-order cores).
    pub rob_entries: u32,
    /// Load/store-queue entries (0 for in-order cores).
    pub lsq_entries: u32,
    /// L1 instruction cache capacity in KB.
    pub l1i_kb: u32,
    /// L1 data cache capacity in KB.
    pub l1d_kb: u32,
    /// L1 load-to-use latency in cycles.
    pub l1_load_to_use_cycles: u32,
    /// L1 miss-status-holding registers.
    pub l1_mshrs: u32,
    /// Whether the core issues out of program order.
    pub out_of_order: bool,
}

/// Shared last-level-cache cost parameters (Table 2.1: 16-way
/// set-associative, 5mm² and 1W per MB at 40nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcParams {
    /// Area per megabyte in mm².
    pub area_mm2_per_mb: f64,
    /// Power per megabyte in watts.
    pub power_w_per_mb: f64,
    /// Set associativity (ways).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Miss-status-holding registers per bank.
    pub mshrs: u32,
    /// Victim-cache entries.
    pub victim_entries: u32,
}

impl LlcParams {
    /// LLC parameters at the given node. The 40nm values are Table 2.1;
    /// Table 4.1's 3.2mm²/MB at 32nm is consistent with perfect area
    /// scaling (5 x 0.64 = 3.2).
    pub fn at(node: TechnologyNode) -> Self {
        LlcParams {
            area_mm2_per_mb: 5.0 * node.area_scale_from_40nm(),
            power_w_per_mb: 1.0 * node.power_scale_from_40nm(),
            associativity: 16,
            line_bytes: 64,
            mshrs: 64,
            victim_entries: 16,
        }
    }

    /// Die area of a cache of `capacity_mb` megabytes.
    pub fn area_mm2(&self, capacity_mb: f64) -> f64 {
        self.area_mm2_per_mb * capacity_mb
    }

    /// Peak power of a cache of `capacity_mb` megabytes.
    pub fn power_w(&self, capacity_mb: f64) -> f64 {
        self.power_w_per_mb * capacity_mb
    }
}

/// Miscellaneous system-on-chip components: I/O, peripherals, and glue logic
/// (Table 2.1: 42mm² and 5W at 40nm, estimated from an UltraSPARC T2 McPAT
/// configuration). Like the memory PHYs, this area is dominated by pads and
/// analog circuitry and does not scale with the process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocParams {
    /// Die area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

impl SocParams {
    /// SoC overhead at any node (non-scaling).
    pub fn at(_node: TechnologyNode) -> Self {
        SocParams {
            area_mm2: 42.0,
            power_w: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_1_core_areas_at_40nm() {
        assert_eq!(CoreKind::Conventional.area_mm2(TechnologyNode::N40), 25.0);
        assert_eq!(CoreKind::OutOfOrder.area_mm2(TechnologyNode::N40), 4.5);
        assert_eq!(CoreKind::InOrder.area_mm2(TechnologyNode::N40), 1.3);
    }

    #[test]
    fn table_2_1_core_power_at_40nm() {
        assert_eq!(CoreKind::Conventional.power_w(TechnologyNode::N40), 11.0);
        assert_eq!(CoreKind::OutOfOrder.power_w(TechnologyNode::N40), 1.0);
        assert_eq!(CoreKind::InOrder.power_w(TechnologyNode::N40), 0.48);
    }

    #[test]
    fn table_4_1_a15_core_area_at_32nm() {
        // Table 4.1 quotes 2.9mm² for the A15-like core at 32nm; perfect
        // scaling of the 4.5mm² 40nm core gives 2.88mm².
        let a = CoreKind::OutOfOrder.area_mm2(TechnologyNode::N32);
        assert!((a - 2.9).abs() < 0.05, "got {a}");
    }

    #[test]
    fn table_4_1_llc_area_at_32nm() {
        let llc = LlcParams::at(TechnologyNode::N32);
        assert!((llc.area_mm2_per_mb - 3.2).abs() < 1e-9);
    }

    #[test]
    fn microarch_matches_table_2_2() {
        let conv = CoreKind::Conventional.microarch();
        assert_eq!(conv.dispatch_width, 4);
        assert_eq!(conv.rob_entries, 128);
        assert_eq!(conv.l1i_kb, 64);
        let ooo = CoreKind::OutOfOrder.microarch();
        assert_eq!(ooo.dispatch_width, 3);
        assert_eq!(ooo.rob_entries, 60);
        assert_eq!(ooo.lsq_entries, 16);
        let io = CoreKind::InOrder.microarch();
        assert_eq!(io.dispatch_width, 2);
        assert!(!io.out_of_order);
    }

    #[test]
    fn llc_area_scales_linearly_in_capacity() {
        let llc = LlcParams::at(TechnologyNode::N40);
        assert_eq!(llc.area_mm2(4.0), 20.0);
        assert_eq!(llc.power_w(4.0), 4.0);
    }

    #[test]
    fn soc_overhead_does_not_scale() {
        for node in TechnologyNode::ALL {
            let soc = SocParams::at(node);
            assert_eq!(soc.area_mm2, 42.0);
            assert_eq!(soc.power_w, 5.0);
        }
    }

    #[test]
    fn core_labels() {
        assert_eq!(CoreKind::OutOfOrder.to_string(), "OoO");
        assert_eq!(CoreKind::InOrder.to_string(), "IO");
    }
}
