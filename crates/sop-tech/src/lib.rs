//! Technology substrate for the Scale-Out Processors reproduction.
//!
//! This crate encodes the process-technology and circuit-level constants that
//! the thesis derives from CACTI 6.5, McPAT, ORION 2.0, and custom wire
//! models (Tables 2.1, 2.2, 4.1, and 6.1, plus the wire parameters of
//! §4.3.2). Everything downstream — the analytic model, the cycle-level
//! simulator, the pod optimizer, the TCO model — pulls its area, power,
//! latency, and bandwidth numbers from here, so the reproduction has a single
//! source of physical truth.
//!
//! # Example
//!
//! ```
//! use sop_tech::{CoreKind, TechnologyNode};
//!
//! let node = TechnologyNode::N40;
//! let core = CoreKind::OutOfOrder;
//! assert_eq!(core.area_mm2(node), 4.5);
//! assert_eq!(core.power_w(node), 1.0);
//! // Four technology-perfect shrinks from 40nm to 20nm: a quarter the area.
//! assert_eq!(core.area_mm2(TechnologyNode::N20), 4.5 / 4.0);
//! ```

pub mod budgets;
pub mod cache;
pub mod components;
pub mod memory;
pub mod node;
pub mod wires;

pub use budgets::ChipBudget;
pub use cache::CacheGeometry;
pub use components::{CoreKind, CoreMicroarch, LlcParams, SocParams};
pub use memory::{MemoryGen, MemoryInterface};
pub use node::TechnologyNode;
pub use wires::WireModel;
