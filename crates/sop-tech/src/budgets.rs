//! Chip-level physical budgets.
//!
//! A server die is constrained on three axes (§2.4.1, §6.5.1): die area
//! (250–280mm² per logic die), thermal design power (95W for 2D chips; 250W
//! for liquid-cooled 3D stacks), and pin bandwidth (at most six
//! single-channel memory interfaces).

use crate::node::TechnologyNode;

/// Area, power, and bandwidth constraints for composing a chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipBudget {
    /// Maximum die area in mm² (per logic die for 3D stacks).
    pub max_die_mm2: f64,
    /// Minimum die area the designer is willing to ship, in mm². Used only
    /// for reporting; a chip may come in under this if another budget binds.
    pub min_die_mm2: f64,
    /// Thermal design power ceiling in watts.
    pub max_power_w: f64,
    /// Maximum number of memory channels (pin limited).
    pub max_memory_channels: u32,
}

impl ChipBudget {
    /// The 2D server-chip budget of §2.4.1: 250–280mm², 95W, six channels.
    pub fn server_2d(_node: TechnologyNode) -> Self {
        ChipBudget {
            max_die_mm2: 280.0,
            min_die_mm2: 250.0,
            max_power_w: 95.0,
            max_memory_channels: 6,
        }
    }

    /// The 3D stacked budget of §6.5.1: 250–280mm² per die, 250W (liquid
    /// cooling), six DDR4 channels.
    pub fn stacked_3d() -> Self {
        ChipBudget {
            max_die_mm2: 280.0,
            min_die_mm2: 250.0,
            max_power_w: 250.0,
            max_memory_channels: 6,
        }
    }

    /// Whether a design with the given totals fits every budget axis.
    pub fn admits(&self, die_mm2: f64, power_w: f64, channels: u32) -> bool {
        die_mm2 <= self.max_die_mm2
            && power_w <= self.max_power_w
            && channels <= self.max_memory_channels
    }

    /// Which constraint binds first for a design at the budget edge,
    /// reported the way the thesis annotates its tables ("area-limited",
    /// "power-limited", "bandwidth-limited").
    pub fn binding_constraint(
        &self,
        die_mm2: f64,
        power_w: f64,
        channels: u32,
    ) -> BindingConstraint {
        let area_head = (self.max_die_mm2 - die_mm2) / self.max_die_mm2;
        let power_head = (self.max_power_w - power_w) / self.max_power_w;
        let bw_head = (f64::from(self.max_memory_channels) - f64::from(channels))
            / f64::from(self.max_memory_channels);
        if area_head <= power_head && area_head <= bw_head {
            BindingConstraint::Area
        } else if power_head <= bw_head {
            BindingConstraint::Power
        } else {
            BindingConstraint::Bandwidth
        }
    }
}

/// The budget axis with the least headroom in a composed chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// Die area binds (most 40nm designs).
    Area,
    /// TDP binds (the 20nm conventional and tiled in-order chips).
    Power,
    /// Memory channels bind (the 20nm in-order designs).
    Bandwidth,
}

impl std::fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindingConstraint::Area => f.write_str("area-limited"),
            BindingConstraint::Power => f.write_str("power-limited"),
            BindingConstraint::Bandwidth => f.write_str("bandwidth-limited"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_budget_matches_section_2_4_1() {
        let b = ChipBudget::server_2d(TechnologyNode::N40);
        assert_eq!(b.max_die_mm2, 280.0);
        assert_eq!(b.max_power_w, 95.0);
        assert_eq!(b.max_memory_channels, 6);
    }

    #[test]
    fn stacked_budget_lifts_power_only() {
        let b2 = ChipBudget::server_2d(TechnologyNode::N40);
        let b3 = ChipBudget::stacked_3d();
        assert_eq!(b2.max_die_mm2, b3.max_die_mm2);
        assert!(b3.max_power_w > b2.max_power_w);
    }

    #[test]
    fn admits_checks_all_axes() {
        let b = ChipBudget::server_2d(TechnologyNode::N40);
        assert!(b.admits(260.0, 90.0, 5));
        assert!(!b.admits(281.0, 90.0, 5));
        assert!(!b.admits(260.0, 96.0, 5));
        assert!(!b.admits(260.0, 90.0, 7));
    }

    #[test]
    fn binding_constraint_identifies_tightest_axis() {
        let b = ChipBudget::server_2d(TechnologyNode::N40);
        assert_eq!(
            b.binding_constraint(279.0, 60.0, 2),
            BindingConstraint::Area
        );
        assert_eq!(
            b.binding_constraint(200.0, 94.0, 2),
            BindingConstraint::Power
        );
        assert_eq!(
            b.binding_constraint(200.0, 60.0, 6),
            BindingConstraint::Bandwidth
        );
    }

    #[test]
    fn binding_constraint_display() {
        assert_eq!(BindingConstraint::Area.to_string(), "area-limited");
    }
}
