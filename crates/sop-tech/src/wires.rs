//! On-die wire and repeater model (§4.3.2).
//!
//! The thesis models semi-global wires with a 200nm pitch and power-delay-
//! optimized repeaters yielding 125ps/mm of link latency and 50fJ/bit/mm of
//! energy on random data, with repeaters responsible for 19% of link energy.
//! Wires route over logic, so only repeater area counts against the die.

/// Semi-global wire parameters at the chapter-4 32nm design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Link propagation latency in picoseconds per millimetre.
    pub latency_ps_per_mm: f64,
    /// Link energy in femtojoules per bit per millimetre (random data).
    pub energy_fj_per_bit_mm: f64,
    /// Fraction of link energy dissipated in repeaters.
    pub repeater_energy_fraction: f64,
    /// Repeater area per wire-millimetre per bit, in mm². Derived so a
    /// 128-bit mesh's link repeaters land around 1mm² for a 64-tile pod,
    /// consistent with the Fig 4.7 mesh link bar.
    pub repeater_area_mm2_per_bit_mm: f64,
    /// Clock frequency the latency is converted against, in GHz.
    pub frequency_ghz: f64,
}

impl WireModel {
    /// The §4.3.2 wire model (32nm, 2GHz).
    pub fn new() -> Self {
        WireModel {
            latency_ps_per_mm: 125.0,
            energy_fj_per_bit_mm: 50.0,
            repeater_energy_fraction: 0.19,
            repeater_area_mm2_per_bit_mm: 5.5e-5,
            frequency_ghz: 2.0,
        }
    }

    /// Distance (mm) a signal covers in one clock cycle.
    ///
    /// At 125ps/mm and 2GHz (500ps cycles) this is 4mm — which is why a
    /// flattened-butterfly flit can cover up to two ~2mm tiles per cycle
    /// (Table 4.1).
    pub fn mm_per_cycle(&self) -> f64 {
        let cycle_ps = 1000.0 / self.frequency_ghz;
        cycle_ps / self.latency_ps_per_mm
    }

    /// Cycles needed to traverse `mm` of wire (at least 1).
    pub fn link_cycles(&self, mm: f64) -> u32 {
        assert!(mm >= 0.0, "distance must be non-negative");
        (mm / self.mm_per_cycle()).ceil().max(1.0) as u32
    }

    /// Repeater area in mm² for a link of `bits` width and `mm` length.
    pub fn repeater_area_mm2(&self, bits: u32, mm: f64) -> f64 {
        f64::from(bits) * mm * self.repeater_area_mm2_per_bit_mm
    }

    /// Energy in joules to move `bits` over `mm` of wire.
    pub fn link_energy_j(&self, bits: u32, mm: f64) -> f64 {
        f64::from(bits) * mm * self.energy_fj_per_bit_mm * 1e-15
    }
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_mm_per_cycle_at_2ghz() {
        assert!((WireModel::new().mm_per_cycle() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_tiles_per_cycle_for_fbfly() {
        // Table 4.1: an FBfly link covers up to 2 tiles per cycle. With
        // ~1.9mm tiles, two tiles are 3.8mm < 4mm/cycle.
        assert_eq!(WireModel::new().link_cycles(3.8), 1);
        assert_eq!(WireModel::new().link_cycles(4.1), 2);
    }

    #[test]
    fn link_energy_scales_with_width_and_length() {
        let w = WireModel::new();
        let e1 = w.link_energy_j(128, 2.0);
        assert!((w.link_energy_j(256, 2.0) - 2.0 * e1).abs() < 1e-24);
        assert!((w.link_energy_j(128, 4.0) - 2.0 * e1).abs() < 1e-24);
    }

    #[test]
    fn minimum_one_cycle() {
        assert_eq!(WireModel::new().link_cycles(0.0), 1);
    }

    #[test]
    fn repeater_area_is_small_but_positive() {
        let a = WireModel::new().repeater_area_mm2(128, 16.0);
        assert!(a > 0.0 && a < 1.0, "got {a}");
    }
}
