//! Benchmarks the chapter 5 TCO analysis and the chapter 6 3D sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use sop_3d::{compose_3d, sweep_3d, Pod3d, StackStrategy};
use sop_core::designs::DesignKind;
use sop_tco::{Datacenter, TcoParams};
use sop_tech::CoreKind;

fn datacenter_build(c: &mut Criterion) {
    c.bench_function("tco/datacenter_for_scale_out", |b| {
        let params = TcoParams::thesis();
        b.iter(|| Datacenter::for_design(DesignKind::ScaleOut(CoreKind::InOrder), &params, 64))
    });
}

fn pd3d_sweep(c: &mut Criterion) {
    c.bench_function("3d/sweep_4_dies", |b| {
        b.iter(|| {
            sweep_3d(
                CoreKind::OutOfOrder,
                4,
                &[4, 8, 16, 32, 64, 128, 256, 512, 1024],
                &[2.0, 4.0, 8.0, 16.0, 32.0],
            )
        })
    });
    c.bench_function("3d/compose_chip", |b| {
        b.iter(|| {
            compose_3d(&Pod3d::new(
                CoreKind::InOrder,
                64,
                2.0,
                3,
                StackStrategy::FixedDistance,
            ))
        })
    });
}

criterion_group!(benches, datacenter_build, pd3d_sweep);
criterion_main!(benches);
