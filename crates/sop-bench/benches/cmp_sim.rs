//! Benchmarks the cycle-level CMP simulator: the engine behind Figs 3.3,
//! 4.3, 4.6, and 4.8.

use criterion::{criterion_group, criterion_main, Criterion};
use sop_noc::TopologyKind;
use sop_sim::{Machine, SimConfig};
use sop_workloads::Workload;

fn pod_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/pod_64_4k_cycles");
    group.sample_size(10);
    for kind in [TopologyKind::Mesh, TopologyKind::NocOut] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| Machine::new(SimConfig::pod_64(Workload::MapReduceW, kind)).run(1_000, 3_000))
        });
    }
    group.finish();
}

fn validation_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/validation_16_cores");
    group.sample_size(10);
    group.bench_function("crossbar", |b| {
        b.iter(|| {
            Machine::new(SimConfig::validation(
                Workload::WebSearch,
                16,
                TopologyKind::Crossbar,
            ))
            .run(1_000, 3_000)
        })
    });
    group.finish();
}

criterion_group!(benches, pod_sim, validation_sim);
criterion_main!(benches);
