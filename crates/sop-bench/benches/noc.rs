//! Benchmarks the flit-level NOC simulator under pod traffic: the engine
//! behind Figs 4.6-4.8.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sop_noc::{MessageClass, Network, NocConfig, TopologyKind};

fn drive(kind: TopologyKind, cycles: u64) -> u64 {
    let mut net = Network::new(NocConfig::pod_64(kind));
    let cores = net.core_endpoints().to_vec();
    let llcs = net.llc_endpoints().to_vec();
    for cycle in 0..cycles {
        for (i, &c) in cores.iter().enumerate() {
            if (cycle as usize + i).is_multiple_of(25) {
                let dst = llcs[(i * 13 + cycle as usize) % llcs.len()];
                if dst != c {
                    net.inject(c, dst, MessageClass::Request, 0, cycle);
                    net.inject(dst, c, MessageClass::Response, 0, cycle);
                }
            }
        }
        net.step(cycle);
    }
    net.counters().flit_hops
}

fn noc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc/2k_cycles_under_load");
    group.sample_size(10);
    for kind in [
        TopologyKind::Mesh,
        TopologyKind::FlattenedButterfly,
        TopologyKind::NocOut,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter_batched(|| (), |_| drive(kind, 2_000), BatchSize::PerIteration)
        });
    }
    group.finish();
}

criterion_group!(benches, noc_throughput);
criterion_main!(benches);
