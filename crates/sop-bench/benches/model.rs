//! Benchmarks the analytic model and the pod/chip composition machinery:
//! the engines behind every chapter 2/3 table and figure.

use criterion::{criterion_group, criterion_main, Criterion};
use sop_core::designs::{reference_chip, DesignKind};
use sop_core::pod::{optimal_pod, PodSearchSpace};
use sop_model::{DesignPoint, Interconnect};
use sop_tech::{CoreKind, TechnologyNode};

fn analytic_point(c: &mut Criterion) {
    c.bench_function("model/design_point_all_workloads", |b| {
        b.iter(|| {
            DesignPoint::new(CoreKind::OutOfOrder, 32, 4.0, Interconnect::Crossbar)
                .mean_per_core_ipc()
        })
    });
}

fn pd_surface(c: &mut Criterion) {
    c.bench_function("model/pod_search_space_108_points", |b| {
        b.iter(|| {
            let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
            optimal_pod(&space)
        })
    });
}

fn chip_composition(c: &mut Criterion) {
    c.bench_function("core/compose_table_3_2_row", |b| {
        b.iter(|| reference_chip(DesignKind::ScaleOut(CoreKind::InOrder), TechnologyNode::N40))
    });
}

criterion_group!(benches, analytic_point, pd_surface, chip_composition);
criterion_main!(benches);
