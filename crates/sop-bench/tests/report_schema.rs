//! Pins the `--json` report layout.
//!
//! Consumers parse these documents (dashboards, regression tooling), so
//! the schema version and the top-level shape are golden: if this test
//! fails after an intentional layout change, bump
//! `sop_obs::SCHEMA_VERSION` and update the consumers together.

use sop_bench::report::{checks_json, golden_checks, pod_sample_metrics};
use sop_obs::{json, Json, Report, SpanLog, SCHEMA_VERSION};

#[test]
fn schema_version_is_pinned() {
    // A rename here is a breaking change for every report consumer.
    assert_eq!(SCHEMA_VERSION, "sop-report/v1");
}

#[test]
fn repro_report_has_the_documented_shape() {
    let mut spans = SpanLog::new();
    let metrics = spans.time("pod_sample", |_| pod_sample_metrics(true));
    let checks = golden_checks();
    let mut report = Report::new("repro", "schema golden");
    report.set("experiments", Json::Arr(vec![Json::from("fig4.7")]));
    report.set("golden", checks_json(&checks));

    // Round-trip through the serialized text: the golden is the
    // document consumers actually read, not the in-memory tree.
    let text = report.to_json(&spans, &metrics).to_pretty_string();
    let doc = json::parse(&text).expect("report is valid JSON");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sop-report/v1")
    );
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("repro"));
    assert!(doc.get("title").and_then(Json::as_str).is_some());

    // Spans: an array of {name, start_us, duration_us, depth}.
    let span_rows = doc
        .get("spans")
        .and_then(Json::as_arr)
        .expect("spans array");
    assert!(!span_rows.is_empty());
    for row in span_rows {
        for field in ["start_us", "duration_us", "depth"] {
            assert!(
                row.get(field).and_then(Json::as_f64).is_some(),
                "span field {field}"
            );
        }
        assert!(row.get("name").and_then(Json::as_str).is_some());
    }

    // Metrics: the sample pod run must surface every subsystem.
    let Json::Obj(metric_rows) = doc.get("metrics").expect("metrics object") else {
        panic!("metrics is not an object");
    };
    for prefix in ["sim.llc.", "sim.l1.", "noc.", "mem.", "sim.txn."] {
        assert!(
            metric_rows.iter().any(|(k, _)| k.starts_with(prefix)),
            "no {prefix}* metric in the report"
        );
    }

    // Sections: golden rows carry {name, value, golden, tol, ok}.
    let golden_rows = doc
        .get("sections")
        .and_then(|s| s.get("golden"))
        .and_then(Json::as_arr)
        .expect("golden section");
    assert_eq!(golden_rows.len(), checks.len());
    for row in golden_rows {
        assert!(row.get("name").and_then(Json::as_str).is_some());
        for field in ["value", "golden", "tol"] {
            assert!(
                row.get(field).and_then(Json::as_f64).is_some(),
                "golden field {field}"
            );
        }
        assert!(matches!(row.get("ok"), Some(Json::Bool(_))));
    }
}
