//! Worker-count determinism: a campaign's data and its stabilized report
//! are byte-identical whether the engine runs one worker or eight.

use sop_bench::campaign::run_campaign;
use sop_exec::Exec;
use sop_obs::{stabilized, Registry, Report, SpanLog};

/// The analytic chapters produce identical JSON for any worker count.
#[test]
fn analytic_campaigns_are_worker_count_invariant() {
    for name in ["ch2", "ch5", "ch6"] {
        let seq = run_campaign(name, true, &Exec::sequential()).expect("known campaign");
        let par = run_campaign(name, true, &Exec::with_workers(8)).expect("known campaign");
        assert_eq!(
            seq.to_compact_string(),
            par.to_compact_string(),
            "campaign {name} diverged across worker counts"
        );
    }
}

/// A stabilized report hides everything schedule-dependent: two runs
/// with different worker counts (and so different `exec.*` metrics and
/// span timings) render byte-identically.
#[test]
fn stabilized_reports_compare_across_worker_counts() {
    let render = |workers: usize| {
        let exec = Exec::with_workers(workers);
        let mut spans = SpanLog::new();
        let data = spans.time("ch2", |_| {
            run_campaign("ch2", true, &exec).expect("known campaign")
        });
        let mut metrics = Registry::new();
        metrics.merge(&exec.metrics_snapshot());
        let mut report = Report::new("sweep", "determinism probe");
        report.set("data", data);
        stabilized(&report.to_json(&spans, &metrics)).to_pretty_string()
    };
    assert_eq!(render(1), render(8));
}
