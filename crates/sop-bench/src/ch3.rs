//! Chapter 3: the scale-out design methodology (Figs 3.1, 3.3–3.6,
//! Table 3.2).

use crate::points::{sim_points, SimPointSpec};
use sop_core::designs::{reference_chip, DesignKind};
use sop_core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use sop_core::PodConfig;
use sop_exec::Exec;
use sop_model::{DesignPoint, Interconnect};
use sop_noc::TopologyKind;
use sop_tech::{CoreKind, TechnologyNode};
use sop_workloads::Workload;

/// Fig 3.1: per-core perf, chip perf, and PD for a hypothetical workload
/// as core count grows (fixed 4MB LLC, crossbar). Returns rows of
/// (cores, per-core, per-chip, pd).
pub fn fig3_1() -> Vec<(u32, f64, f64, f64)> {
    [1u32, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&n| {
            let m = PodConfig::new(CoreKind::OutOfOrder, n, 4.0, Interconnect::Crossbar).metrics();
            (n, m.per_core_ipc, m.aggregate_ipc, m.performance_density)
        })
        .collect()
}

/// Prints Fig 3.1.
pub fn print_fig3_1() {
    println!("Fig 3.1 — perf/core, perf/chip, perf/mm2 vs core count (4MB, crossbar)");
    println!(
        "  {:>6} {:>10} {:>10} {:>10}",
        "cores", "per-core", "per-chip", "PD"
    );
    for (n, u, agg, pd) in fig3_1() {
        println!("  {n:>6} {u:>10.3} {agg:>10.2} {pd:>10.4}");
    }
}

/// The core counts Fig 3.3 simulates per workload (Table 3.1 CMP sizes).
pub fn fig3_3_core_counts(w: Workload) -> Vec<u32> {
    match w {
        Workload::MediaStreaming => vec![4, 8, 16],
        Workload::WebFrontend | Workload::WebSearch => vec![1, 2, 4, 8, 16, 32],
        _ => vec![1, 2, 4, 8, 16, 32, 64],
    }
}

/// One Fig 3.3 comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Workload simulated.
    pub workload: Workload,
    /// Interconnect.
    pub topology: TopologyKind,
    /// Cores.
    pub cores: u32,
    /// Cycle-level simulation per-core IPC.
    pub simulated_ipc: f64,
    /// Analytic-model per-core IPC.
    pub modeled_ipc: f64,
}

impl ValidationPoint {
    /// Relative model error versus simulation.
    pub fn error(&self) -> f64 {
        (self.modeled_ipc - self.simulated_ipc).abs() / self.simulated_ipc
    }
}

fn model_interconnect(topology: TopologyKind) -> Interconnect {
    match topology {
        TopologyKind::Mesh => Interconnect::Mesh,
        TopologyKind::Crossbar => Interconnect::Crossbar,
        TopologyKind::Ideal => Interconnect::Ideal,
        TopologyKind::FlattenedButterfly => Interconnect::FlattenedButterfly,
        TopologyKind::NocOut => Interconnect::NocOut,
    }
}

/// The simulation specs behind one Fig 3.3 workload/fabric pair.
pub fn fig3_3_specs(workload: Workload, topology: TopologyKind, quick: bool) -> Vec<SimPointSpec> {
    let (warm, measure) = if quick {
        (1_500, 3_000)
    } else {
        (6_000, 12_000)
    };
    fig3_3_core_counts(workload)
        .into_iter()
        .map(|cores| SimPointSpec::Validation {
            workload,
            cores,
            topology,
            warm,
            measure,
            faults: None,
        })
        .collect()
}

/// Combines evaluated simulation points with the analytic model into
/// Fig 3.3's comparison rows. `specs` and `points` must correspond.
fn fig3_3_rows(specs: &[SimPointSpec], points: &[crate::points::SimPoint]) -> Vec<ValidationPoint> {
    specs
        .iter()
        .zip(points)
        .map(|(spec, sim)| {
            let SimPointSpec::Validation {
                workload,
                cores,
                topology,
                ..
            } = *spec
            else {
                panic!("fig3.3 uses validation specs only")
            };
            let model = DesignPoint::new(
                CoreKind::OutOfOrder,
                cores,
                4.0,
                model_interconnect(topology),
            )
            .at_node(TechnologyNode::N40)
            .evaluate(workload);
            ValidationPoint {
                workload,
                topology,
                cores,
                simulated_ipc: sim.per_core_ipc,
                modeled_ipc: model.per_core_ipc,
            }
        })
        .collect()
}

/// Fig 3.3: cycle-level simulation against the analytic model for one
/// workload/fabric pair across core counts. `quick` shrinks the windows
/// for smoke tests.
pub fn fig3_3(workload: Workload, topology: TopologyKind, quick: bool) -> Vec<ValidationPoint> {
    fig3_3_on(&Exec::sequential(), workload, topology, quick)
}

/// [`fig3_3`] with the simulations scheduled on `exec`.
pub fn fig3_3_on(
    exec: &Exec,
    workload: Workload,
    topology: TopologyKind,
    quick: bool,
) -> Vec<ValidationPoint> {
    let specs = fig3_3_specs(workload, topology, quick);
    let points = sim_points(exec, "fig3.3", &specs);
    fig3_3_rows(&specs, &points)
}

/// Prints Fig 3.3 for every workload and fabric, with error statistics.
pub fn print_fig3_3(quick: bool) {
    print_fig3_3_on(&Exec::sequential(), quick);
}

/// [`print_fig3_3`] with every simulation of every workload/fabric pair
/// batched into one campaign on `exec`, so the whole figure parallelizes
/// instead of one row at a time. Output is identical either way.
pub fn print_fig3_3_on(exec: &Exec, quick: bool) {
    // Collect every pair's specs first, evaluate them as one campaign,
    // then print in the original order.
    let pairs: Vec<(TopologyKind, Workload)> = [
        TopologyKind::Ideal,
        TopologyKind::Crossbar,
        TopologyKind::Mesh,
    ]
    .iter()
    .flat_map(|&t| Workload::ALL.iter().map(move |&w| (t, w)))
    .collect();
    let per_pair: Vec<Vec<SimPointSpec>> = pairs
        .iter()
        .map(|&(t, w)| fig3_3_specs(w, t, quick))
        .collect();
    let all_specs: Vec<SimPointSpec> = per_pair.iter().flatten().copied().collect();
    let all_points = sim_points(exec, "fig3.3", &all_specs);

    println!("Fig 3.3 — analytic model (lines) vs cycle-level simulation (markers)");
    println!("          per-core application IPC, 4MB LLC, OoO cores");
    let mut small = sop_model::ErrorStats::new();
    let mut large = sop_model::ErrorStats::new();
    let mut offset = 0;
    let mut current_topology = None;
    for (&(topology, w), specs) in pairs.iter().zip(&per_pair) {
        if current_topology != Some(topology) {
            current_topology = Some(topology);
            println!("  == {topology:?} ==");
        }
        let pts = fig3_3_rows(specs, &all_points[offset..offset + specs.len()]);
        offset += specs.len();
        for p in &pts {
            // A degraded, halted, or failed point (fault injection, job
            // failure) has no meaningful model error; keep it out of the
            // statistics instead of panicking on a non-positive IPC.
            if p.simulated_ipc.is_nan() || p.simulated_ipc <= 0.0 {
                continue;
            }
            if p.cores <= 16 {
                small.record(p.modeled_ipc, p.simulated_ipc);
            } else {
                large.record(p.modeled_ipc, p.simulated_ipc);
            }
        }
        let sim: Vec<String> = pts
            .iter()
            .map(|p| format!("{}c:{:.2}", p.cores, p.simulated_ipc))
            .collect();
        let model: Vec<String> = pts
            .iter()
            .map(|p| format!("{:.2}", p.modeled_ipc))
            .collect();
        println!("    {:16} sim   {}", w.label(), sim.join(" "));
        println!("    {:16} model {}", "", model.join("    "));
    }
    if small.is_empty() || large.is_empty() {
        println!("  model error statistics skipped (degraded or failed points)");
        return;
    }
    println!(
        "  model error <=16 cores: mean {:.0}%, bias {:+.0}%, correlation {:.2}",
        small.mean_abs_error() * 100.0,
        small.bias() * 100.0,
        small.correlation()
    );
    println!(
        "  model error  >16 cores: mean {:.0}%, bias {:+.0}% (software scalability",
        large.mean_abs_error() * 100.0,
        large.bias() * 100.0
    );
    println!("  pushes measured performance below the model, as in §3.4.1)");
}

/// Fig 3.4/3.6: PD across core counts for each LLC size and fabric.
pub fn pd_sweep(kind: CoreKind, llc_mb: f64, interconnect: Interconnect) -> Vec<(u32, f64)> {
    [1u32, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&n| {
            let m = PodConfig::new(kind, n, llc_mb, interconnect).metrics();
            (n, m.performance_density)
        })
        .collect()
}

/// Prints Fig 3.4 (OoO) or Fig 3.6 (in-order).
pub fn print_pd_sweep(kind: CoreKind) {
    let fig = if kind == CoreKind::OutOfOrder {
        "3.4"
    } else {
        "3.6"
    };
    println!("Fig {fig} — performance density, {kind:?} cores, 40nm");
    for ic in Interconnect::POD_CANDIDATES {
        println!("  == {ic} ==");
        for mb in [1.0, 2.0, 4.0, 8.0] {
            let row: Vec<String> = pd_sweep(kind, mb, ic)
                .iter()
                .map(|(n, pd)| format!("{n}c:{pd:.4}"))
                .collect();
            println!("    {mb}MB  {}", row.join(" "));
        }
    }
}

/// Prints Fig 3.5: crossbar pods across LLC sizes and the selected pod.
pub fn print_fig3_5() {
    println!("Fig 3.5 — PD of crossbar pods (OoO) and the selected 16c/4MB pod");
    for mb in [1.0, 2.0, 4.0, 8.0] {
        let row: Vec<String> = pd_sweep(CoreKind::OutOfOrder, mb, Interconnect::Crossbar)
            .iter()
            .map(|(n, pd)| format!("{n}c:{pd:.4}"))
            .collect();
        println!("  {mb}MB  {}", row.join(" "));
    }
    let space = PodSearchSpace::thesis_chapter3(CoreKind::OutOfOrder, TechnologyNode::N40);
    let opt = optimal_pod(&space);
    let pick = preferred_pod(&space, 0.05);
    println!(
        "  optimum: {}c/{}MB (PD {:.4}); selected pod: {}c/{}MB (PD {:.4}, {:.1}mm2, {:.1}W, {:.1}GB/s)",
        opt.config.cores,
        opt.config.llc_mb,
        opt.performance_density,
        pick.config.cores,
        pick.config.llc_mb,
        pick.performance_density,
        pick.area_mm2,
        pick.power_w,
        pick.bandwidth_gbps
    );
}

/// Prints the §3.4.5 energy decomposition: where each chip's picojoules
/// per instruction go.
pub fn print_sec3_4_5() {
    use sop_core::EnergyPerInstruction;
    println!("§3.4.5 — energy per instruction (pJ) at 40nm");
    println!(
        "  {:34} {:>7} {:>7} {:>6} {:>6} {:>7}",
        "design", "cores", "LLC", "NOC", "I/O", "total"
    );
    let node = TechnologyNode::N40;
    for d in DesignKind::table_3_2() {
        let chip = reference_chip(d, node);
        let e = EnergyPerInstruction::of(&chip, node);
        println!(
            "  {:34} {:>7.0} {:>7.1} {:>6.1} {:>6.1} {:>7.0}",
            chip.label,
            e.core_pj,
            e.llc_pj,
            e.noc_pj,
            e.io_pj,
            e.total_pj()
        );
    }
    println!("  -> Scale-Out chips shrink the memory-hierarchy share (LLC+NOC):");
    println!("     smaller caches leak less and distances are shorter (§3.4.5).");
}

/// Prints Table 3.2 at both nodes.
pub fn print_tab3_2() {
    for node in [TechnologyNode::N40, TechnologyNode::N20] {
        println!("Table 3.2 — designs at {node}");
        println!(
            "  {:34} {:>6} {:>5} {:>6} {:>3} {:>7} {:>6} {:>6}",
            "design", "PD", "cores", "LLC", "MC", "die", "power", "P/W"
        );
        for d in DesignKind::table_3_2() {
            let c = reference_chip(d, node);
            println!(
                "  {:34} {:>6.3} {:>5} {:>6.1} {:>3} {:>7.1} {:>6.1} {:>6.2}",
                c.label,
                c.performance_density,
                c.cores,
                c.llc_mb,
                c.memory_channels,
                c.die_mm2,
                c.power_w,
                c.perf_per_watt
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_1_pd_peaks_in_the_interior() {
        let rows = fig3_1();
        let peak = rows
            .iter()
            .max_by(|a, b| a.3.total_cmp(&b.3))
            .expect("non-empty");
        assert!(peak.0 > rows[0].0 && peak.0 < rows.last().expect("non-empty").0);
    }

    #[test]
    fn fig3_3_model_tracks_simulation_at_small_scale() {
        // §3.4.1: the model is most accurate at small scale. Our model
        // and simulator are calibrated independently (unlike the thesis',
        // whose model was parameterised from its own simulations), so we
        // check a generous band at <=8 cores; EXPERIMENTS.md records the
        // full comparison.
        for p in fig3_3(Workload::MapReduceW, TopologyKind::Crossbar, true) {
            if p.cores <= 8 {
                assert!(p.error() < 0.40, "{}c error {:.2}", p.cores, p.error());
            }
        }
    }

    #[test]
    fn fig3_3_simulation_shows_software_scalability_gap() {
        // §3.4.1: at 32-64 cores the *measured* perf of knee-limited
        // workloads falls below the model (which ignores software).
        let pts = fig3_3(Workload::DataServing, TopologyKind::Crossbar, true);
        let p64 = pts.iter().find(|p| p.cores == 64).expect("64-core point");
        assert!(
            p64.simulated_ipc < p64.modeled_ipc,
            "sim {} vs model {}",
            p64.simulated_ipc,
            p64.modeled_ipc
        );
    }

    #[test]
    fn media_streaming_only_simulates_to_16() {
        assert_eq!(
            fig3_3_core_counts(Workload::MediaStreaming).last(),
            Some(&16)
        );
    }
}
