//! Calibration dashboard: prints the model's values for every headline
//! target so profile constants can be tuned against the thesis.
//!
//! ```text
//! cargo run --release -p sop-bench --bin calibrate \
//!     [--json <path>] [--jobs N]
//! ```
//!
//! Sections render into string buffers on the execution engine's worker
//! pool (`--jobs` workers, one task per section) and print in a fixed
//! order, so the dashboard is byte-identical for any worker count.
//!
//! With `--json <path>` the dashboard is also written as a
//! schema-versioned report: one section per calibration surface.

use sop_core::designs::{reference_chip, DesignKind};
use sop_core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use sop_core::PodConfig;
use sop_exec::{Exec, ExecConfig};
use sop_model::{DesignPoint, Interconnect};
use sop_obs::{Json, Registry, Report, SpanLog};
use sop_tech::{CoreKind, TechnologyNode};
use sop_workloads::Workload;
use std::fmt::Write as _;

/// `writeln!` into a `String` buffer, discarding the infallible result.
macro_rules! outln {
    ($buf:expr, $($arg:tt)*) => {
        let _ = writeln!($buf, $($arg)*);
    };
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let exec = Exec::new(ExecConfig::from_args(&args));

    type Section = (&'static str, fn(&mut String) -> Json);
    let sections: Vec<Section> = vec![
        ("fig2.1", fig2_1),
        ("fig2.2", fig2_2),
        ("fig2.3", fig2_3),
        ("pd_surfaces", pod_surfaces),
        ("pods", pods),
        ("chips_40nm", |b| chips(b, TechnologyNode::N40)),
        ("chips_20nm", |b| chips(b, TechnologyNode::N20)),
    ];

    let mut spans = SpanLog::new();
    let mut report = Report::new("calibrate", "Calibration dashboard");
    let rendered = spans.time("sections", |_| {
        exec.map(sections, |(name, run)| {
            let mut buf = String::new();
            let value = run(&mut buf);
            (name, buf, value)
        })
    });
    for (name, buf, value) in rendered {
        print!("{buf}");
        report.set(name, value);
    }
    if let Some(path) = json_path {
        let mut metrics = Registry::new();
        metrics.merge(&exec.metrics_snapshot());
        if let Err(e) = report.write_to(&path, &spans, &metrics) {
            eprintln!("calibrate: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn fig2_1(buf: &mut String) -> Json {
    outln!(
        buf,
        "== Fig 2.1: app IPC, aggressive OoO core (targets: MS<1, DS/MRC~1, rest 1-2) =="
    );
    let mut out = Json::object();
    for w in Workload::ALL {
        let ipc = DesignPoint::new(CoreKind::Conventional, 4, 8.0, Interconnect::Ideal)
            .evaluate(w)
            .per_core_ipc;
        outln!(buf, "  {:16} {:.2}", w.label(), ipc);
        out.insert(w.label(), Json::from(ipc));
    }
    out
}

fn fig2_2(buf: &mut String) -> Json {
    outln!(
        buf,
        "== Fig 2.2: perf vs LLC (4 cores), normalized to 1MB =="
    );
    outln!(
        buf,
        "  target: knee 2-8MB, MRC/SAT +12-24% at 16MB, 32MB <= 16MB"
    );
    let caps = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut out = Json::object();
    for w in Workload::ALL {
        let base = DesignPoint::new(CoreKind::Conventional, 4, 1.0, Interconnect::Crossbar)
            .evaluate(w)
            .per_core_ipc;
        let ratios: Vec<f64> = caps
            .iter()
            .map(|&c| {
                DesignPoint::new(CoreKind::Conventional, 4, c, Interconnect::Crossbar)
                    .evaluate(w)
                    .per_core_ipc
                    / base
            })
            .collect();
        let row: Vec<String> = ratios.iter().map(|r| format!("{r:.3}")).collect();
        outln!(buf, "  {:16} {}", w.label(), row.join(" "));
        out.insert(
            w.label(),
            Json::Arr(ratios.into_iter().map(Json::from).collect()),
        );
    }
    out
}

fn fig2_3(buf: &mut String) -> Json {
    outln!(
        buf,
        "== Fig 2.3: per-core perf vs cores, 4MB LLC (norm to 1 core) =="
    );
    outln!(
        buf,
        "  target: ideal 256c ~ -16% vs 2c; mesh 256c ~ -28% vs ideal 256c agg"
    );
    let mut out = Json::object();
    for ic in [Interconnect::Ideal, Interconnect::Mesh] {
        let u1 = DesignPoint::new(CoreKind::OutOfOrder, 1, 4.0, ic).mean_per_core_ipc();
        let mut curve = Json::object();
        let row: Vec<String> = [2u32, 16, 64, 128, 256]
            .iter()
            .map(|&n| {
                let u = DesignPoint::new(CoreKind::OutOfOrder, n, 4.0, ic).mean_per_core_ipc();
                curve.insert(&n.to_string(), Json::from(u / u1));
                format!("{}:{:.3}", n, u / u1)
            })
            .collect();
        outln!(buf, "  {:6} {}", ic.label(), row.join(" "));
        out.insert(ic.label(), curve);
    }
    let i =
        DesignPoint::new(CoreKind::OutOfOrder, 256, 4.0, Interconnect::Ideal).mean_aggregate_ipc();
    let m =
        DesignPoint::new(CoreKind::OutOfOrder, 256, 4.0, Interconnect::Mesh).mean_aggregate_ipc();
    outln!(
        buf,
        "  mesh-vs-ideal aggregate at 256 cores: {:.3} (target ~0.72)",
        m / i
    );
    out.insert("mesh_vs_ideal_256c", Json::from(m / i));
    out
}

fn pod_surfaces(buf: &mut String) -> Json {
    let mut out = Json::object();
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        outln!(buf, "== PD surface ({kind:?}, crossbar, 40nm) ==");
        let mut surface = Json::object();
        for &mb in &[1.0, 2.0, 4.0, 8.0] {
            let mut by_cores = Json::object();
            let row: Vec<String> = [4u32, 8, 16, 32, 64, 128]
                .iter()
                .map(|&n| {
                    let m = PodConfig::new(kind, n, mb, Interconnect::Crossbar).metrics();
                    by_cores.insert(&format!("{n}c"), Json::from(m.performance_density));
                    format!("{}c:{:.4}", n, m.performance_density)
                })
                .collect();
            outln!(buf, "  {mb}MB  {}", row.join(" "));
            surface.insert(&format!("{mb}MB"), by_cores);
        }
        out.insert(&format!("{kind:?}"), surface);
    }
    out
}

fn pods(buf: &mut String) -> Json {
    outln!(
        buf,
        "== Pods (targets: OoO peak 32c/4MB, pick 16c/4MB 92mm2 20W 9.4GB/s;"
    );
    outln!(buf, "          IO pick 32c/2MB 52mm2 17W 15GB/s) ==");
    let mut out = Json::object();
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let space = PodSearchSpace::thesis_chapter3(kind, TechnologyNode::N40);
        let opt = optimal_pod(&space);
        let pick = preferred_pod(&space, 0.05);
        outln!(
            buf,
            "  {kind:?}: peak {}c/{}MB pd {:.4}; pick {}c/{}MB pd {:.4} area {:.1} power {:.1} bw {:.1}",
            opt.config.cores,
            opt.config.llc_mb,
            opt.performance_density,
            pick.config.cores,
            pick.config.llc_mb,
            pick.performance_density,
            pick.area_mm2,
            pick.power_w,
            pick.bandwidth_gbps
        );
        out.insert(
            &format!("{kind:?}"),
            Json::object()
                .with(
                    "peak",
                    Json::object()
                        .with("cores", opt.config.cores)
                        .with("llc_mb", opt.config.llc_mb)
                        .with("pd", opt.performance_density),
                )
                .with(
                    "pick",
                    Json::object()
                        .with("cores", pick.config.cores)
                        .with("llc_mb", pick.config.llc_mb)
                        .with("pd", pick.performance_density)
                        .with("area_mm2", pick.area_mm2)
                        .with("power_w", pick.power_w)
                        .with("bandwidth_gbps", pick.bandwidth_gbps),
                ),
        );
    }
    out
}

fn chips(buf: &mut String, node: TechnologyNode) -> Json {
    outln!(buf, "== Reference chips at {node} ==");
    outln!(
        buf,
        "  {:34} {:>6} {:>5} {:>5} {:>3} {:>6} {:>6} {:>6} {:>7}",
        "design",
        "PD",
        "cores",
        "LLC",
        "MC",
        "die",
        "power",
        "P/W",
        "bw"
    );
    let mut designs = vec![DesignKind::Conventional];
    for k in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        designs.extend([
            DesignKind::Tiled(k),
            DesignKind::LlcOptimalTiled(k),
            DesignKind::LlcOptimalTiledIr(k),
            DesignKind::Ideal(k),
            DesignKind::OnePod(k),
            DesignKind::ScaleOut(k),
        ]);
    }
    let mut rows = Vec::new();
    for d in designs {
        let c = reference_chip(d, node);
        outln!(
            buf,
            "  {:34} {:>6.3} {:>5} {:>5.1} {:>3} {:>6.1} {:>6.1} {:>6.2} {:>7.1}",
            c.label,
            c.performance_density,
            c.cores,
            c.llc_mb,
            c.memory_channels,
            c.die_mm2,
            c.power_w,
            c.perf_per_watt,
            c.bandwidth_gbps
        );
        rows.push(
            Json::object()
                .with("design", c.label.as_str())
                .with("pd", c.performance_density)
                .with("cores", c.cores)
                .with("llc_mb", c.llc_mb)
                .with("memory_channels", c.memory_channels)
                .with("die_mm2", c.die_mm2)
                .with("power_w", c.power_w)
                .with("perf_per_watt", c.perf_per_watt)
                .with("bandwidth_gbps", c.bandwidth_gbps),
        );
    }
    Json::Arr(rows)
}
