//! Calibration dashboard: prints the model's values for every headline
//! target so profile constants can be tuned against the thesis.

use sop_core::designs::{reference_chip, DesignKind};
use sop_core::pod::{optimal_pod, preferred_pod, PodSearchSpace};
use sop_core::PodConfig;
use sop_model::{DesignPoint, Interconnect};
use sop_tech::{CoreKind, TechnologyNode};
use sop_workloads::Workload;

fn main() {
    fig2_1();
    fig2_2();
    fig2_3();
    pod_surfaces();
    pods();
    chips(TechnologyNode::N40);
    chips(TechnologyNode::N20);
}

fn fig2_1() {
    println!("== Fig 2.1: app IPC, aggressive OoO core (targets: MS<1, DS/MRC~1, rest 1-2) ==");
    for w in Workload::ALL {
        let ipc = DesignPoint::new(CoreKind::Conventional, 4, 8.0, Interconnect::Ideal)
            .evaluate(w)
            .per_core_ipc;
        println!("  {:16} {:.2}", w.label(), ipc);
    }
}

fn fig2_2() {
    println!("== Fig 2.2: perf vs LLC (4 cores), normalized to 1MB ==");
    println!("  target: knee 2-8MB, MRC/SAT +12-24% at 16MB, 32MB <= 16MB");
    let caps = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    for w in Workload::ALL {
        let base = DesignPoint::new(CoreKind::Conventional, 4, 1.0, Interconnect::Crossbar)
            .evaluate(w)
            .per_core_ipc;
        let row: Vec<String> = caps
            .iter()
            .map(|&c| {
                let u = DesignPoint::new(CoreKind::Conventional, 4, c, Interconnect::Crossbar)
                    .evaluate(w)
                    .per_core_ipc;
                format!("{:.3}", u / base)
            })
            .collect();
        println!("  {:16} {}", w.label(), row.join(" "));
    }
}

fn fig2_3() {
    println!("== Fig 2.3: per-core perf vs cores, 4MB LLC (norm to 1 core) ==");
    println!("  target: ideal 256c ~ -16% vs 2c; mesh 256c ~ -28% vs ideal 256c agg");
    for ic in [Interconnect::Ideal, Interconnect::Mesh] {
        let u1 = DesignPoint::new(CoreKind::OutOfOrder, 1, 4.0, ic).mean_per_core_ipc();
        let row: Vec<String> = [2u32, 16, 64, 128, 256]
            .iter()
            .map(|&n| {
                let u = DesignPoint::new(CoreKind::OutOfOrder, n, 4.0, ic).mean_per_core_ipc();
                format!("{}:{:.3}", n, u / u1)
            })
            .collect();
        println!("  {:6} {}", ic.label(), row.join(" "));
    }
    let i = DesignPoint::new(CoreKind::OutOfOrder, 256, 4.0, Interconnect::Ideal)
        .mean_aggregate_ipc();
    let m = DesignPoint::new(CoreKind::OutOfOrder, 256, 4.0, Interconnect::Mesh)
        .mean_aggregate_ipc();
    println!("  mesh-vs-ideal aggregate at 256 cores: {:.3} (target ~0.72)", m / i);
}

fn pod_surfaces() {
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        println!("== PD surface ({kind:?}, crossbar, 40nm) ==");
        for &mb in &[1.0, 2.0, 4.0, 8.0] {
            let row: Vec<String> = [4u32, 8, 16, 32, 64, 128]
                .iter()
                .map(|&n| {
                    let m = PodConfig::new(kind, n, mb, Interconnect::Crossbar).metrics();
                    format!("{}c:{:.4}", n, m.performance_density)
                })
                .collect();
            println!("  {mb}MB  {}", row.join(" "));
        }
    }
}

fn pods() {
    println!("== Pods (targets: OoO peak 32c/4MB, pick 16c/4MB 92mm2 20W 9.4GB/s;");
    println!("          IO pick 32c/2MB 52mm2 17W 15GB/s) ==");
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let space = PodSearchSpace::thesis_chapter3(kind, TechnologyNode::N40);
        let opt = optimal_pod(&space);
        let pick = preferred_pod(&space, 0.05);
        println!(
            "  {kind:?}: peak {}c/{}MB pd {:.4}; pick {}c/{}MB pd {:.4} area {:.1} power {:.1} bw {:.1}",
            opt.config.cores,
            opt.config.llc_mb,
            opt.performance_density,
            pick.config.cores,
            pick.config.llc_mb,
            pick.performance_density,
            pick.area_mm2,
            pick.power_w,
            pick.bandwidth_gbps
        );
    }
}

fn chips(node: TechnologyNode) {
    println!("== Reference chips at {node} ==");
    println!(
        "  {:34} {:>6} {:>5} {:>5} {:>3} {:>6} {:>6} {:>6} {:>7}",
        "design", "PD", "cores", "LLC", "MC", "die", "power", "P/W", "bw"
    );
    let mut designs = vec![DesignKind::Conventional];
    for k in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        designs.extend([
            DesignKind::Tiled(k),
            DesignKind::LlcOptimalTiled(k),
            DesignKind::LlcOptimalTiledIr(k),
            DesignKind::Ideal(k),
            DesignKind::OnePod(k),
            DesignKind::ScaleOut(k),
        ]);
    }
    for d in designs {
        let c = reference_chip(d, node);
        println!(
            "  {:34} {:>6.3} {:>5} {:>5.1} {:>3} {:>6.1} {:>6.1} {:>6.2} {:>7.1}",
            c.label,
            c.performance_density,
            c.cores,
            c.llc_mb,
            c.memory_channels,
            c.die_mm2,
            c.power_w,
            c.perf_per_watt,
            c.bandwidth_gbps
        );
    }
}
