//! Ablations over the design choices the thesis motivates but does not
//! sweep explicitly:
//!
//! * pod granularity — what happens to chip-level PD if pods are half or
//!   double the chosen size (the cost of deviating from PD-optimality);
//! * NOC-Out LLC-row width — fewer/more LLC tiles trade bank contention
//!   against spine cost (§4.2.2's "four cores per bank" observation);
//! * link width — the area/performance frontier behind Fig 4.8;
//! * instruction replication — what IR buys a mesh at each LLC size.
//!
//! ```text
//! cargo run --release -p sop-bench --bin ablation \
//!     [pods|llcrow|links|ir] [--json <path>] [--jobs N] [--no-cache] [--resume]
//! ```
//!
//! The simulation-backed sections (`llcrow`, `links`) run through the
//! execution engine: their points are cached under `target/sop-cache/`,
//! spread over `--jobs` workers, and resumable with `--resume`.
//!
//! With `--json <path>` the run also writes a schema-versioned report:
//! one section of rows per ablation, a span per section, and
//! `ablation.*` gauges for the simulation-backed sweeps.

use sop_bench::points::{sim_points, SimPointSpec};
use sop_core::chip::try_compose_pods;
use sop_core::PodConfig;
use sop_exec::{Exec, ExecConfig};
use sop_model::{DesignPoint, Interconnect};
use sop_noc::{NocAreaBreakdown, NocConfig, TopologyKind};
use sop_obs::{Json, Registry, Report, SpanLog};
use sop_tech::{ChipBudget, CoreKind, TechnologyNode};
use sop_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let exec = Exec::new(ExecConfig::from_args(&args));
    let which = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !matches!(
                        args.get(i - 1).map(String::as_str),
                        Some("--json" | "--jobs")
                    ))
        })
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "all".to_owned());

    let mut spans = SpanLog::new();
    let mut metrics = Registry::new();
    let mut report = Report::new("ablation", "Design-choice ablations");
    if matches!(which.as_str(), "pods" | "all") {
        let rows = spans.time("pods", |_| pods());
        report.set("pods", rows);
    }
    if matches!(which.as_str(), "llcrow" | "all") {
        let rows = spans.time("llcrow", |_| llc_row(&exec, &mut metrics));
        report.set("llcrow", rows);
    }
    if matches!(which.as_str(), "links" | "all") {
        let rows = spans.time("links", |_| links(&exec, &mut metrics));
        report.set("links", rows);
    }
    if matches!(which.as_str(), "ir" | "all") {
        let rows = spans.time("ir", |_| instruction_replication());
        report.set("ir", rows);
    }
    if let Some(path) = json_path {
        metrics.merge(&exec.metrics_snapshot());
        if let Err(e) = report.write_to(&path, &spans, &metrics) {
            eprintln!("ablation: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

/// Chip-level PD when the pod deviates from the chosen 16-core/4MB point.
fn pods() -> Json {
    println!("== Ablation: pod granularity (OoO, 40nm chip composition) ==");
    println!(
        "  {:>6} {:>6} {:>6} {:>6} {:>9} {:>8}",
        "cores", "LLC", "pods", "chip-c", "die mm2", "chip PD"
    );
    let node = TechnologyNode::N40;
    let budget = ChipBudget::server_2d(node);
    let mut rows = Vec::new();
    for (cores, mb) in [(8u32, 2.0), (16, 4.0), (32, 4.0), (32, 8.0), (64, 8.0)] {
        let pod = PodConfig::new(CoreKind::OutOfOrder, cores, mb, Interconnect::Crossbar).metrics();
        let row = Json::object().with("pod_cores", cores).with("llc_mb", mb);
        match try_compose_pods("ablation", &pod, node, &budget) {
            Some(chip) => {
                println!(
                    "  {:>6} {:>6.1} {:>6} {:>6} {:>9.1} {:>8.4}",
                    cores,
                    mb,
                    chip.cores / cores,
                    chip.cores,
                    chip.die_mm2,
                    chip.performance_density
                );
                rows.push(
                    row.with("fits", true)
                        .with("pods", chip.cores / cores)
                        .with("chip_cores", chip.cores)
                        .with("die_mm2", chip.die_mm2)
                        .with("chip_pd", chip.performance_density),
                );
            }
            None => {
                println!("  {cores:>6} {mb:>6.1}   does not fit the die");
                rows.push(row.with("fits", false));
            }
        }
    }
    println!("  -> the 16c/4MB pod maximizes chip PD; bigger pods lose to");
    println!("     distance, smaller ones to cache fragmentation.");
    Json::Arr(rows)
}

/// NOC-Out with a narrower or wider LLC row.
fn llc_row(exec: &Exec, metrics: &mut Registry) -> Json {
    println!("== Ablation: NOC-Out LLC-row width (64-core pod, Web Search) ==");
    println!(
        "  {:>9} {:>8} {:>9} {:>9}",
        "LLC tiles", "agg IPC", "pkt lat", "NOC mm2"
    );
    const TILES: [u32; 3] = [4, 8, 16];
    let specs: Vec<SimPointSpec> = TILES
        .iter()
        .map(|&tiles| SimPointSpec::Pod64 {
            workload: Workload::WebSearch,
            topology: TopologyKind::NocOut,
            link_bits: 128,
            llc_tiles: Some(tiles),
            warm: 4_000,
            measure: 10_000,
            faults: None,
        })
        .collect();
    let points = sim_points(exec, "ablation.llcrow", &specs);
    let mut rows = Vec::new();
    for (&tiles, p) in TILES.iter().zip(&points) {
        let mut noc = NocConfig::pod_64(TopologyKind::NocOut);
        noc.llc_tiles = tiles;
        let area = NocAreaBreakdown::of(&noc.build_topology(), noc.link_bits);
        println!(
            "  {:>9} {:>8.2} {:>9.1} {:>9.2}",
            tiles,
            p.aggregate_ipc,
            p.mean_packet_latency,
            area.total_mm2()
        );
        metrics.gauge_set(
            &format!("ablation.llcrow.tiles{tiles}.ipc"),
            p.aggregate_ipc,
        );
        metrics.gauge_set(
            &format!("ablation.llcrow.tiles{tiles}.packet_latency"),
            p.mean_packet_latency,
        );
        metrics.gauge_set(
            &format!("ablation.llcrow.tiles{tiles}.noc_mm2"),
            area.total_mm2(),
        );
        rows.push(
            Json::object()
                .with("llc_tiles", tiles)
                .with("aggregate_ipc", p.aggregate_ipc)
                .with("packet_latency", p.mean_packet_latency)
                .with("noc_mm2", area.total_mm2()),
        );
    }
    println!("  -> 8 tiles (2 banks each) balance bank contention against");
    println!("     spine area, as §4.3.1 chooses.");
    Json::Arr(rows)
}

/// The latency/area frontier as links narrow (Fig 4.8's mechanism).
fn links(exec: &Exec, metrics: &mut Registry) -> Json {
    println!("== Ablation: link width (mesh pod, MapReduce-W) ==");
    println!("  {:>6} {:>9} {:>8}", "bits", "NOC mm2", "agg IPC");
    const BITS: [u32; 4] = [128, 64, 32, 16];
    let specs: Vec<SimPointSpec> = BITS
        .iter()
        .map(|&bits| SimPointSpec::Pod64 {
            workload: Workload::MapReduceW,
            topology: TopologyKind::Mesh,
            link_bits: bits,
            llc_tiles: None,
            warm: 3_000,
            measure: 8_000,
            faults: None,
        })
        .collect();
    let points = sim_points(exec, "ablation.links", &specs);
    let mut rows = Vec::new();
    for (&bits, p) in BITS.iter().zip(&points) {
        let noc = NocConfig::pod_64(TopologyKind::Mesh).with_link_bits(bits);
        let area = NocAreaBreakdown::of(&noc.build_topology(), bits);
        println!(
            "  {:>6} {:>9.2} {:>8.2}",
            bits,
            area.total_mm2(),
            p.aggregate_ipc
        );
        metrics.gauge_set(&format!("ablation.links.bits{bits}.ipc"), p.aggregate_ipc);
        metrics.gauge_set(
            &format!("ablation.links.bits{bits}.noc_mm2"),
            area.total_mm2(),
        );
        rows.push(
            Json::object()
                .with("link_bits", bits)
                .with("noc_mm2", area.total_mm2())
                .with("aggregate_ipc", p.aggregate_ipc),
        );
    }
    println!("  -> serialization latency eats narrow-linked fabrics, which is");
    println!("     why the equal-area butterfly of Fig 4.8 collapses.");
    Json::Arr(rows)
}

/// What R-NUCA-style instruction replication buys a mesh per LLC size.
fn instruction_replication() -> Json {
    println!("== Ablation: instruction replication on the 32-core mesh ==");
    println!(
        "  {:>6} {:>10} {:>10} {:>7}",
        "LLC MB", "base IPC", "+IR IPC", "gain"
    );
    let mut rows = Vec::new();
    for mb in [4.0, 8.0, 16.0, 32.0] {
        let base =
            DesignPoint::new(CoreKind::OutOfOrder, 32, mb, Interconnect::Mesh).mean_aggregate_ipc();
        let ir = DesignPoint::new(CoreKind::OutOfOrder, 32, mb, Interconnect::Mesh)
            .with_instruction_replication()
            .mean_aggregate_ipc();
        println!(
            "  {:>6.0} {:>10.2} {:>10.2} {:>6.1}%",
            mb,
            base,
            ir,
            (ir / base - 1.0) * 100.0
        );
        rows.push(
            Json::object()
                .with("llc_mb", mb)
                .with("base_ipc", base)
                .with("ir_ipc", ir)
                .with("gain", ir / base - 1.0),
        );
    }
    println!("  -> replication helps more as capacity grows (§2.2.3: in small");
    println!("     LLCs the replicas' capacity pressure eats the latency win).");
    Json::Arr(rows)
}
