//! Regenerates the thesis' tables and figures.
//!
//! ```text
//! repro <id>...        one or more of: fig2.1 fig2.2 fig2.3 tab2.1 tab2.3
//!                      tab2.4 fig3.1 fig3.3 fig3.4 fig3.5 fig3.6 tab3.2
//!                      fig4.3 tab4.1 fig4.6 fig4.7 fig4.8 fig4.9 tab5.1
//!                      tab5.2 fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig6.4
//!                      fig6.5 fig6.6 fig6.7 tab6.2
//! repro all            everything (simulation-backed figures take minutes)
//! repro all --quick    everything with shortened simulation windows
//! ```

use sop_bench::{ch2, ch3, ch4, ch5, ch6};
use sop_tech::{CoreKind, TechnologyNode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args.iter().map(String::as_str).filter(|a| *a != "--quick").collect();
    if ids.is_empty() {
        eprintln!("usage: repro <experiment id>... | all [--quick]");
        eprintln!("see DESIGN.md for the experiment index");
        std::process::exit(2);
    }
    let all = [
        "fig2.1", "fig2.2", "fig2.3", "tab2.1", "tab2.3", "tab2.4", "fig3.1", "fig3.3",
        "fig3.4", "fig3.5", "fig3.6", "tab3.2", "sec3.4.5", "fig4.3", "tab4.1", "fig4.6", "fig4.7",
        "fig4.8", "fig4.9", "sec4.5", "tab5.1", "tab5.2", "fig5.1", "fig5.2", "fig5.3",
        "fig5.5", "fig6.4", "fig6.5", "fig6.6", "fig6.7", "tab6.2",
    ];
    let run: Vec<&str> = if ids.contains(&"all") { all.to_vec() } else { ids };
    for id in run {
        dispatch(id, quick);
        println!();
    }
}

fn dispatch(id: &str, quick: bool) {
    match id {
        "fig2.1" => ch2::print_fig2_1(),
        "fig2.2" => ch2::print_fig2_2(),
        "fig2.3" => ch2::print_fig2_3(),
        "tab2.1" | "tab2.2" => ch2::print_tab2_1(),
        "tab2.3" => ch2::print_tab2_3(TechnologyNode::N40),
        "tab2.4" => ch2::print_tab2_3(TechnologyNode::N20),
        "fig3.1" => ch3::print_fig3_1(),
        "fig3.3" => ch3::print_fig3_3(quick),
        "fig3.4" => ch3::print_pd_sweep(CoreKind::OutOfOrder),
        "fig3.5" => ch3::print_fig3_5(),
        "fig3.6" => ch3::print_pd_sweep(CoreKind::InOrder),
        "tab3.2" => ch3::print_tab3_2(),
        "sec3.4.5" => ch3::print_sec3_4_5(),
        "fig4.3" => ch4::print_fig4_3(quick),
        "tab4.1" => ch4::print_tab4_1(),
        "fig4.6" => ch4::print_fig4_6(quick),
        "fig4.7" => ch4::print_fig4_7(),
        "fig4.8" => ch4::print_fig4_8(quick),
        "fig4.9" => ch4::print_fig4_9_power(quick),
        "sec4.5" => ch4::print_sec4_5(),
        "tab5.1" => ch5::print_tab5_1(),
        "tab5.2" => ch5::print_tab5_2(),
        "fig5.1" => ch5::print_fig5_1(),
        "fig5.2" => ch5::print_fig5_2(),
        "fig5.3" | "fig5.4" => ch5::print_fig5_3_and_5_4(),
        "fig5.5" => ch5::print_fig5_5(),
        "fig6.4" => ch6::print_pd3d_sweep(CoreKind::OutOfOrder),
        "fig6.5" => ch6::print_strategy_comparison(CoreKind::OutOfOrder),
        "fig6.6" => ch6::print_pd3d_sweep(CoreKind::InOrder),
        "fig6.7" => ch6::print_strategy_comparison(CoreKind::InOrder),
        "tab6.1" => ch2::print_tab2_1(),
        "tab6.2" => ch6::print_tab6_2(),
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}
