//! Regenerates the thesis' tables and figures.
//!
//! ```text
//! repro <id>...        one or more of: fig2.1 fig2.2 fig2.3 tab2.1 tab2.3
//!                      tab2.4 fig3.1 fig3.3 fig3.4 fig3.5 fig3.6 tab3.2
//!                      fig4.3 tab4.1 fig4.6 fig4.7 fig4.8 fig4.9 tab5.1
//!                      tab5.2 fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig6.4
//!                      fig6.5 fig6.6 fig6.7 tab6.2
//! repro all            everything (simulation-backed figures take minutes)
//! repro all --quick    everything with shortened simulation windows
//! ```
//!
//! Flags:
//!
//! * `--json <path>` — also write a schema-versioned run report
//!   (`sop-report/v1`): per-chapter/per-figure timing spans, the golden
//!   check results, named metrics (`sim.llc.*`, `sim.l1.*`, `noc.*`,
//!   `mem.*`) from a sample pod simulation, and the execution engine's
//!   `exec.*` counters.
//! * `--quiet` — suppress the figure text; print only the report path
//!   (requires `--json`).
//! * `--jobs N` — run simulation points on N worker threads (0 or
//!   omitted = one per core). Output is byte-identical for any N.
//! * `--threads N` — shard each machine across N worker threads
//!   (lookahead-bounded domain parallelism). Output is byte-identical
//!   for any N; machines too small to shard run sequentially.
//! * `--no-cache` — recompute every simulation point, ignoring
//!   `target/sop-cache/`.
//! * `--resume` — replay points recorded in the campaign manifests of a
//!   previous (possibly killed) run.
//! * `--stable` — strip wall-clock spans and `exec.*` state from the
//!   `--json` report so reports from different worker counts and cache
//!   states compare byte-for-byte.
//! * `--fault routers:N@CYCLE[:seed=S]` — run every simulation point
//!   under N seeded router deaths at CYCLE (graceful-degradation
//!   exercise). Faulted specs hash differently, so the fault-free cache
//!   is never contaminated; goldens are measured on the healthy machine
//!   and may legitimately fail under damage.
//!
//! The `degradation` experiment id prints the seeded router-death sweep
//! (pod throughput vs fraction of failed routers); it is not part of
//! `all`, which stays the canonical fault-free reproduction.
//!
//! After the requested figures, every run re-verifies the pinned golden
//! values (see `tests/golden.rs` and EXPERIMENTS.md) and exits non-zero
//! if any reproduced value deviates beyond tolerance.

use sop_bench::points::{set_global_faults, SpecFaults};
use sop_bench::report::{checks_json, golden_checks, pod_sample_metrics};
use sop_bench::{ch2, ch3, ch4, ch5, ch6, degradation};
use sop_exec::{Exec, ExecConfig};
use sop_obs::{stabilized, write_atomic, Json, Registry, Report, SpanLog};
use sop_tech::{CoreKind, TechnologyNode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let quiet = args.iter().any(|a| a == "--quiet");
    let stable = args.iter().any(|a| a == "--stable");
    let json_path = flag_value(&args, "--json");
    let fault = match flag_value(&args, "--fault").as_deref().map(parse_fault) {
        None => None,
        Some(Ok(f)) => {
            set_global_faults(f);
            Some(f)
        }
        Some(Err(e)) => {
            eprintln!("repro: bad --fault value: {e}");
            eprintln!("       expected routers:<count>@<cycle>[:seed=<seed>]");
            std::process::exit(2);
        }
    };
    match flag_value(&args, "--threads").map(|v| v.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n >= 1 => sop_sim::set_default_threads(n),
        Some(_) => {
            eprintln!("repro: --threads must be a positive integer");
            std::process::exit(2);
        }
    }
    let exec = Exec::new(ExecConfig::from_args(&args));
    let ids = experiment_ids(&args);
    if ids.is_empty() {
        eprintln!(
            "usage: repro <experiment id>... | all [--quick] [--json <path>] [--quiet] \
             [--jobs N] [--threads N] [--no-cache] [--resume] [--stable] \
             [--fault routers:N@CYCLE]"
        );
        eprintln!("see DESIGN.md for the experiment index");
        std::process::exit(2);
    }
    if quiet {
        let Some(path) = json_path else {
            eprintln!("repro: --quiet requires --json <path> (nothing would be printed)");
            std::process::exit(2);
        };
        rerun_quietly(&path);
    }

    let all = [
        "fig2.1", "fig2.2", "fig2.3", "tab2.1", "tab2.3", "tab2.4", "fig3.1", "fig3.3", "fig3.4",
        "fig3.5", "fig3.6", "tab3.2", "sec3.4.5", "fig4.3", "tab4.1", "fig4.6", "fig4.7", "fig4.8",
        "fig4.9", "sec4.5", "tab5.1", "tab5.2", "fig5.1", "fig5.2", "fig5.3", "fig5.5", "fig6.4",
        "fig6.5", "fig6.6", "fig6.7", "tab6.2",
    ];
    let run: Vec<&str> = if ids.iter().any(|i| i == "all") {
        all.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    // Time every figure, grouped under a span per chapter.
    let mut spans = SpanLog::new();
    let mut i = 0;
    while i < run.len() {
        let chapter = chapter_of(run[i]);
        spans.start(&chapter);
        while i < run.len() && chapter_of(run[i]) == chapter {
            let id = run[i];
            spans.time(id, |_| {
                dispatch(id, quick, &exec);
                println!();
            });
            i += 1;
        }
        spans.end();
    }

    // Re-verify the pinned golden values; any deviation fails the run.
    let checks = spans.time("golden", |_| golden_checks());
    let failed = checks.iter().filter(|c| !c.ok()).count();
    println!(
        "Golden checks: {}/{} ok",
        checks.len() - failed,
        checks.len()
    );
    for c in checks.iter().filter(|c| !c.ok()) {
        println!(
            "  FAIL {:32} {:.4} vs golden {:.4} (tol {:.0}%)",
            c.name,
            c.value,
            c.golden,
            c.tol * 100.0
        );
    }

    // Harness-level job failures: report them (and exit non-zero), but
    // only after everything that succeeded has been printed and written.
    // The header and list appear only when there is something to say, so
    // a clean run's stderr stays empty.
    let failures = exec.failures();
    if !failures.is_empty() {
        eprintln!("repro: {} job failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {} ({})", f.name, f.error);
        }
    }

    if let Some(path) = json_path {
        // A sample pod window gives the report real simulation metrics;
        // the engine contributes its exec.* counters on top. The window
        // runs with transaction tracing armed, so the report also gets a
        // `txn` section: the per-stage causal latency breakdown.
        let mut metrics: Registry = spans.time("pod_sample", |_| pod_sample_metrics(quick));
        let txn = sop_obs::TxnBreakdown::from_registry(&metrics).map(|b| b.to_json());
        metrics.merge(&exec.metrics_snapshot());
        let mut report = Report::new("repro", "Scale-Out Processors: reproduced figures");
        report.set(
            "experiments",
            Json::Arr(run.iter().map(|id| Json::from(*id)).collect()),
        );
        report.set("quick", Json::from(quick));
        report.set("golden", checks_json(&checks));
        report.set("exec", exec_summary(&exec));
        if let Some(t) = txn {
            report.set("txn", t);
        }
        if let Some(f) = fault {
            report.set("fault", f.to_json());
        }
        if !failures.is_empty() {
            report.set(
                "failures",
                Json::Arr(failures.iter().map(sop_exec::JobFailure::to_json).collect()),
            );
        }
        let doc = report.to_json(&spans, &metrics);
        let doc = if stable { stabilized(&doc) } else { doc };
        if let Err(e) = write_atomic(&path, &(doc.to_pretty_string() + "\n")) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if failed > 0 || !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Parses `routers:<count>@<cycle>[:seed=<seed>]` into a [`SpecFaults`].
fn parse_fault(v: &str) -> Result<SpecFaults, String> {
    let rest = v
        .strip_prefix("routers:")
        .ok_or_else(|| format!("{v:?} does not start with \"routers:\""))?;
    let (count_cycle, seed) = match rest.split_once(":seed=") {
        Some((cc, s)) => (
            cc,
            s.parse::<u64>().map_err(|e| format!("seed {s:?}: {e}"))?,
        ),
        None => (rest, degradation::SWEEP_SEED),
    };
    let (count, cycle) = count_cycle
        .split_once('@')
        .ok_or_else(|| format!("{count_cycle:?} has no @<cycle>"))?;
    Ok(SpecFaults {
        seed,
        dead: count
            .parse::<u32>()
            .map_err(|e| format!("count {count:?}: {e}"))?,
        cycle: cycle
            .parse::<u64>()
            .map_err(|e| format!("cycle {cycle:?}: {e}"))?,
    })
}

/// The `exec` report section: how the engine ran this time. Everything
/// here is schedule- or cache-warmth-dependent, which is why `--stable`
/// drops the whole section.
fn exec_summary(exec: &Exec) -> Json {
    let m = exec.metrics_snapshot();
    Json::object()
        .with("workers", exec.workers())
        .with("jobs_completed", m.counter("exec.jobs.completed"))
        .with("jobs_computed", m.counter("exec.jobs.computed"))
        .with("jobs_cached", m.counter("exec.jobs.cached"))
        .with("jobs_resumed", m.counter("exec.jobs.resumed"))
        .with("cache_hits", m.counter("exec.cache.hits"))
        .with("cache_misses", m.counter("exec.cache.misses"))
        .with("cache_invalid", m.counter("exec.cache.invalid"))
}

/// The value following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Positional experiment ids: everything that is not a flag or a flag's
/// value.
fn experiment_ids(args: &[String]) -> Vec<String> {
    let mut ids = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            "--json" | "--jobs" | "--threads" | "--fault" => skip = true,
            "--quick" | "--quiet" | "--no-cache" | "--resume" | "--stable" => {}
            _ => ids.push(a.clone()),
        }
    }
    ids
}

/// `"fig4.6"` -> `"ch4"`; chapter spans group the per-figure spans.
fn chapter_of(id: &str) -> String {
    match id.chars().find(char::is_ascii_digit) {
        Some(d) => format!("ch{d}"),
        None => "misc".to_owned(),
    }
}

/// Re-runs this binary with the same arguments minus `--quiet`, stdout
/// discarded, then prints only the report path. `println!` writes to
/// stdout unconditionally, so silencing the figure text from inside the
/// process would mean threading a writer through every chapter module;
/// a child process with a null stdout gets the same effect for free.
fn rerun_quietly(json_path: &str) -> ! {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("repro: cannot locate own executable: {e}");
        std::process::exit(1);
    });
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quiet")
        .collect();
    match std::process::Command::new(exe)
        .args(&args)
        .stdout(std::process::Stdio::null())
        .status()
    {
        Ok(status) => {
            if status.success() {
                println!("{json_path}");
            } else {
                // The report (with its failing golden rows) was still
                // written; point at it before propagating the failure.
                eprintln!("repro: golden checks failed; see {json_path}");
            }
            std::process::exit(status.code().unwrap_or(1));
        }
        Err(e) => {
            eprintln!("repro: cannot re-exec for --quiet: {e}");
            std::process::exit(1);
        }
    }
}

fn dispatch(id: &str, quick: bool, exec: &Exec) {
    match id {
        "fig2.1" => ch2::print_fig2_1(),
        "fig2.2" => ch2::print_fig2_2(),
        "fig2.3" => ch2::print_fig2_3(),
        "tab2.1" | "tab2.2" => ch2::print_tab2_1(),
        "tab2.3" => ch2::print_tab2_3(TechnologyNode::N40),
        "tab2.4" => ch2::print_tab2_3(TechnologyNode::N20),
        "fig3.1" => ch3::print_fig3_1(),
        "fig3.3" => ch3::print_fig3_3_on(exec, quick),
        "fig3.4" => ch3::print_pd_sweep(CoreKind::OutOfOrder),
        "fig3.5" => ch3::print_fig3_5(),
        "fig3.6" => ch3::print_pd_sweep(CoreKind::InOrder),
        "tab3.2" => ch3::print_tab3_2(),
        "sec3.4.5" => ch3::print_sec3_4_5(),
        "fig4.3" => ch4::print_fig4_3_on(exec, quick),
        "tab4.1" => ch4::print_tab4_1(),
        "fig4.6" => ch4::print_fig4_6_on(exec, quick),
        "fig4.7" => ch4::print_fig4_7(),
        "fig4.8" => ch4::print_fig4_8_on(exec, quick),
        "fig4.9" => ch4::print_fig4_9_power_on(exec, quick),
        "sec4.5" => ch4::print_sec4_5(),
        "tab5.1" => ch5::print_tab5_1(),
        "tab5.2" => ch5::print_tab5_2(),
        "fig5.1" => ch5::print_fig5_1(),
        "fig5.2" => ch5::print_fig5_2(),
        "fig5.3" | "fig5.4" => ch5::print_fig5_3_and_5_4(),
        "fig5.5" => ch5::print_fig5_5(),
        "fig6.4" => ch6::print_pd3d_sweep_on(exec, CoreKind::OutOfOrder),
        "fig6.5" => ch6::print_strategy_comparison(CoreKind::OutOfOrder),
        "fig6.6" => ch6::print_pd3d_sweep_on(exec, CoreKind::InOrder),
        "fig6.7" => ch6::print_strategy_comparison(CoreKind::InOrder),
        "tab6.1" => ch2::print_tab2_1(),
        "tab6.2" => ch6::print_tab6_2(),
        "degradation" => degradation::print_sweep_on(exec, quick),
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}
