//! Experiment harness: regenerates every table and figure of the thesis.
//!
//! Each chapter module exposes functions that compute and print one
//! experiment; the `repro` binary dispatches on experiment ids (`fig2.1`,
//! `tab3.2`, `fig4.6`, ... or `all`). The Criterion benches under
//! `benches/` time the machinery these experiments run on.

pub mod bench;
pub mod campaign;
pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod degradation;
pub mod points;
pub mod report;

/// Formats a ratio row for figure-style output.
pub fn fmt_series(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:7.3}")).collect();
    format!("{label:22} {}", cells.join(" "))
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 4.0]);
        assert!(g > 1.0 && g < 4.0);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn series_formatting_is_stable() {
        let s = fmt_series("x", &[1.0, 2.5]);
        assert!(s.contains("1.000") && s.contains("2.500"));
    }
}
