//! Chapter 5: Scale-Out Processors at datacenter scale (Tables 5.1/5.2,
//! Figs 5.1–5.5).

use sop_core::designs::{reference_chip, DesignKind};
use sop_exec::Exec;
use sop_tco::{estimated_price_usd, market_price_usd, Datacenter, TcoParams, CHAPTER5_NODE};

/// The memory capacities per 1U server swept in Figs 5.3/5.4.
pub const MEMORY_SWEEP_GB: [u32; 3] = [32, 64, 128];

/// Builds the datacenter for every Table 5.1 design at `memory_gb`.
pub fn datacenters(memory_gb: u32) -> Vec<Datacenter> {
    datacenters_on(&Exec::sequential(), memory_gb)
}

/// [`datacenters`] with one worker task per design.
pub fn datacenters_on(exec: &Exec, memory_gb: u32) -> Vec<Datacenter> {
    let params = TcoParams::thesis();
    exec.map(DesignKind::table_5_1(), |d| {
        Datacenter::for_design(d, &params, memory_gb)
    })
}

/// Prints Table 5.1 (server chip characteristics including price).
pub fn print_tab5_1() {
    println!("Table 5.1 — server chip characteristics (40nm)");
    println!(
        "  {:22} {:>5} {:>6} {:>4} {:>7} {:>7} {:>7}",
        "chip", "cores", "LLC", "MC", "power", "die", "price"
    );
    for d in DesignKind::table_5_1() {
        let c = reference_chip(d, CHAPTER5_NODE);
        let price = market_price_usd(d, c.die_mm2);
        println!(
            "  {:22} {:>5} {:>6.1} {:>4} {:>6.1}W {:>6.1} {:>6.0}$",
            c.label, c.cores, c.llc_mb, c.memory_channels, c.power_w, c.die_mm2, price
        );
    }
}

/// Prints Table 5.2's parameters.
pub fn print_tab5_2() {
    let p = TcoParams::thesis();
    println!("Table 5.2 — TCO parameters");
    println!(
        "  infrastructure        {:.0} $/m2",
        p.infrastructure_usd_per_m2
    );
    println!("  cooling+power equip.  {:.1} $/W", p.equipment_usd_per_w);
    println!("  SPUE / PUE            {} / {}", p.spue, p.pue);
    println!(
        "  personnel             {:.0} $/rack/month",
        p.personnel_usd_per_rack_month
    );
    println!(
        "  network gear          {:.0}W, {:.0}$ per rack",
        p.network_w_per_rack, p.network_usd_per_rack
    );
    println!(
        "  motherboard           {:.0}W, {:.0}$ per 1U",
        p.motherboard_w, p.motherboard_usd
    );
    println!(
        "  disk                  {:.0}W, {:.0}$, {:.0}y MTTF",
        p.disk_w, p.disk_usd, p.disk_mttf_years
    );
    println!(
        "  DRAM                  {:.0}W, {:.0}$, {:.0}y MTTF per GB",
        p.dram_w_per_gb, p.dram_usd_per_gb, p.dram_mttf_years
    );
    println!("  electricity           {} $/kWh", p.usd_per_kwh);
    println!(
        "  facility              {:.0}MW, {:.0}kW racks, {} 1U/rack",
        p.datacenter_power_w / 1e6,
        p.rack_power_w / 1e3,
        p.servers_per_rack
    );
}

/// Prints Fig 5.1: datacenter performance normalised to conventional.
pub fn print_fig5_1() {
    println!("Fig 5.1 — datacenter performance normalised to conventional (64GB/1U)");
    let dcs = datacenters(64);
    let base = dcs[0].performance;
    for dc in &dcs {
        println!(
            "  {:22} {:>6.2}x  ({} sockets/1U)",
            dc.chip.label,
            dc.performance / base,
            dc.sockets_per_server
        );
    }
}

/// Prints Fig 5.2: datacenter TCO normalised to conventional.
pub fn print_fig5_2() {
    println!("Fig 5.2 — datacenter TCO normalised to conventional (64GB/1U)");
    let dcs = datacenters(64);
    let base = dcs[0].tco.total_usd();
    for dc in &dcs {
        println!("  {:22} {:>6.3}x", dc.chip.label, dc.tco.total_usd() / base);
    }
}

/// Prints Fig 5.3 (perf/TCO) and Fig 5.4 (perf/Watt) across memory sizes.
pub fn print_fig5_3_and_5_4() {
    println!("Fig 5.3 — performance/TCO and Fig 5.4 — performance/Watt");
    println!(
        "  {:22} {:>23} | {:>23}",
        "", "perf/TCO 32/64/128GB", "perf/W 32/64/128GB"
    );
    let sweep: Vec<Vec<Datacenter>> = MEMORY_SWEEP_GB.iter().map(|&gb| datacenters(gb)).collect();
    for i in 0..sweep[0].len() {
        let tco: Vec<String> = sweep
            .iter()
            .map(|dcs| format!("{:7.3}", dcs[i].perf_per_tco()))
            .collect();
        let watt: Vec<String> = sweep
            .iter()
            .map(|dcs| format!("{:7.4}", dcs[i].perf_per_watt()))
            .collect();
        println!(
            "  {:22} {} | {}",
            sweep[0][i].chip.label,
            tco.join(""),
            watt.join("")
        );
    }
    let conv = &sweep[1][0];
    let sop_io = sweep[1].last().expect("non-empty roster");
    println!(
        "  headline: Scale-Out (IO) vs conventional perf/TCO = {:.1}x (thesis: 7.1x)",
        sop_io.perf_per_tco() / conv.perf_per_tco()
    );
}

/// Fig 5.5: perf/TCO as the processor price varies with production volume.
pub fn print_fig5_5() {
    println!("Fig 5.5 — perf/TCO vs processor price (volume 40K..1M units)");
    let params = TcoParams::thesis();
    for d in DesignKind::table_5_1() {
        if d == DesignKind::Conventional {
            // Market-priced; a volume curve does not apply.
            let dc = Datacenter::for_design(d, &params, 64);
            println!(
                "  {:22} market ${:>4.0} -> {:.3}",
                dc.chip.label,
                dc.chip_price_usd,
                dc.perf_per_tco()
            );
            continue;
        }
        let chip = reference_chip(d, CHAPTER5_NODE);
        let pts: Vec<String> = [40_000.0, 100_000.0, 200_000.0, 500_000.0, 1_000_000.0]
            .iter()
            .map(|&v| {
                let price = estimated_price_usd(chip.die_mm2, v);
                let dc = Datacenter::for_chip(chip.clone(), price, &params, 64);
                format!("${:.0}:{:.3}", price, dc.perf_per_tco())
            })
            .collect();
        println!("  {:22} {}", chip.label, pts.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_seven_chips() {
        assert_eq!(datacenters(64).len(), 7);
    }

    #[test]
    fn scale_out_io_is_the_performance_leader() {
        let dcs = datacenters(64);
        let best = dcs
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))
            .expect("non-empty");
        assert!(
            best.chip.label.contains("Scale-Out (IO)"),
            "leader {}",
            best.chip.label
        );
    }

    #[test]
    fn cheaper_chips_improve_perf_per_tco() {
        // Fig 5.5: for a fixed design, lower price -> better perf/TCO.
        let params = TcoParams::thesis();
        let chip = reference_chip(
            DesignKind::ScaleOut(sop_tech::CoreKind::OutOfOrder),
            CHAPTER5_NODE,
        );
        let cheap = Datacenter::for_chip(chip.clone(), 200.0, &params, 64);
        let pricey = Datacenter::for_chip(chip, 800.0, &params, 64);
        assert!(cheap.perf_per_tco() > pricey.perf_per_tco());
    }
}
