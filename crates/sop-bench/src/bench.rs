//! The simulator benchmark suite behind `sop bench` and `BENCH_sim.json`.
//!
//! Two tiers, both deterministic in *what* they run (only the clock
//! varies):
//!
//! * **micro** — single [`Machine::run_window`] calls over the chapter-3
//!   validation machines and the chapter-4 pod, reporting simulated
//!   cycles per second of wall time. These isolate the engine itself
//!   from the execution layer.
//! * **campaign** — the chapter campaigns run cold (in-memory
//!   memoization only, nothing served from disk), reporting wall time
//!   and cycles/sec per chapter. Chapters run in order inside one
//!   process, exactly like a cold `repro all --quick`, so the per-chapter
//!   walls line up with that command's spans.
//!
//! The suite exists to pin the event-driven engine's speedup in-repo:
//! `BENCH_sim.json` commits the numbers, and [`check_regression`] lets
//! CI fail a PR whose cold wall time regresses past a tolerance.

use crate::campaign::run_campaign;
use sop_exec::Exec;
use sop_noc::TopologyKind;
use sop_obs::Json;
use sop_sim::{cycles_simulated, Machine, SimConfig};
use sop_workloads::Workload;
use std::time::Instant;

/// Chapters the campaign tier times, in run order.
pub const BENCH_CAMPAIGNS: [&str; 5] = ["ch2", "ch3", "ch4", "ch5", "ch6"];

/// Cold `repro all --quick` wall time of the per-cycle engine on the
/// 1-core reference container: median of three alternating runs at the
/// commit preceding the event-driven overhaul, re-measured under the
/// same conditions as the current numbers in `BENCH_sim.json`.
pub const BASELINE_ALL_QUICK_MS: u64 = 39_226;

/// The micro-bench roster: a label and the machine it times.
fn micro_specs() -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "val/websearch/mesh/16c",
            SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh),
        ),
        (
            "val/dataserving/crossbar/16c",
            SimConfig::validation(Workload::DataServing, 16, TopologyKind::Crossbar),
        ),
        (
            "pod/websearch/nocout",
            SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut),
        ),
        (
            "pod/mapreducec/mesh",
            SimConfig::pod_64(Workload::MapReduceC, TopologyKind::Mesh),
        ),
        (
            "pod/mediastreaming/fbfly",
            SimConfig::pod_64(Workload::MediaStreaming, TopologyKind::FlattenedButterfly),
        ),
    ]
}

/// Times one `run_window` per roster entry and returns the `micro`
/// rows. Cycles/sec counts timed cycles only; the (memoized) functional
/// warm-up is inside the wall, as it is for any cold simulation.
pub fn micro_benches(quick: bool) -> Json {
    let (warm, measure) = if quick {
        (1_000, 2_000)
    } else {
        (4_000, 8_000)
    };
    let rows = micro_specs()
        .into_iter()
        .map(|(name, cfg)| {
            let mut machine = Machine::new(cfg);
            let start = Instant::now();
            let result = machine.run_window(warm, measure);
            let wall_us = start.elapsed().as_micros() as u64;
            Json::object()
                .with("name", name)
                .with("cycles", warm + measure)
                .with("wall_us", wall_us)
                .with("mcycles_per_sec", mcycles_per_sec(warm + measure, wall_us))
                .with("aggregate_ipc", result.aggregate_ipc())
        })
        .collect();
    Json::Arr(rows)
}

/// Runs each named campaign cold on `jobs` workers (0 = one per core)
/// and returns the `campaigns` rows. Analytic chapters simulate no
/// cycles and report a null rate.
pub fn campaign_benches(names: &[&str], quick: bool, jobs: usize) -> Json {
    let exec = Exec::with_workers(jobs);
    let rows = names
        .iter()
        .map(|name| {
            let cycles_before = cycles_simulated();
            let start = Instant::now();
            run_campaign(name, quick, &exec).expect("bench campaign name");
            let wall_us = start.elapsed().as_micros() as u64;
            let cycles = cycles_simulated() - cycles_before;
            Json::object()
                .with("campaign", *name)
                .with("wall_ms", wall_us / 1_000)
                .with("cycles", cycles)
                .with("mcycles_per_sec", mcycles_per_sec(cycles, wall_us))
        })
        .collect();
    Json::Arr(rows)
}

fn mcycles_per_sec(cycles: u64, wall_us: u64) -> Json {
    if cycles == 0 || wall_us == 0 {
        return Json::Null;
    }
    Json::Num(cycles as f64 / wall_us as f64)
}

/// Runs the full suite and assembles the `bench` report section: the
/// campaigns in `only` (or all of [`BENCH_CAMPAIGNS`]) first, while the
/// process is genuinely cold, then the micro tier (which benefits from
/// the warm-up memoization the campaigns populated — it measures engine
/// throughput, not cold cost). In quick mode the campaign total is
/// comparable to the committed per-cycle baseline, so the section also
/// carries the speedup.
pub fn run_suite(quick: bool, jobs: usize, only: Option<&[&str]>) -> Json {
    let names = only.unwrap_or(&BENCH_CAMPAIGNS);
    let campaigns = campaign_benches(names, quick, jobs);
    let micro = micro_benches(quick);
    let total_wall_ms: u64 = campaigns
        .as_arr()
        .expect("campaign rows")
        .iter()
        .filter_map(|row| row.get("wall_ms").and_then(Json::as_f64))
        .sum::<f64>() as u64;
    let mut section = Json::object()
        .with("quick", quick)
        .with("micro", micro)
        .with("campaigns", campaigns)
        .with("total_wall_ms", total_wall_ms);
    let full_roster = names == BENCH_CAMPAIGNS;
    if quick && full_roster && total_wall_ms > 0 {
        section.insert("baseline_all_quick_ms", Json::UInt(BASELINE_ALL_QUICK_MS));
        section.insert(
            "speedup_vs_baseline",
            Json::Num(BASELINE_ALL_QUICK_MS as f64 / total_wall_ms as f64),
        );
    }
    section
}

/// Extracts the `bench` section from either a bare section or a full
/// `sop-report/v1` document (as committed in `BENCH_sim.json`).
fn bench_section(doc: &Json) -> &Json {
    doc.get("sections")
        .and_then(|s| s.get("bench"))
        .unwrap_or(doc)
}

/// Compares per-campaign wall times against a baseline document: any
/// campaign present in both that is slower by more than `tol_pct`
/// percent is a regression. Returns the violations (empty = pass).
/// Campaigns missing from either side are ignored, so a smoke run over
/// one chapter can be judged against the full committed suite.
pub fn check_regression(current: &Json, baseline: &Json, tol_pct: f64) -> Vec<String> {
    let walls = |doc: &Json| -> Vec<(String, f64)> {
        bench_section(doc)
            .get("campaigns")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        let name = row.get("campaign")?.as_str()?.to_owned();
                        let wall = row.get("wall_ms")?.as_f64()?;
                        Some((name, wall))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base = walls(baseline);
    let mut violations = Vec::new();
    for (name, cur_ms) in walls(current) {
        let Some((_, base_ms)) = base.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        let limit = base_ms * (1.0 + tol_pct / 100.0);
        if cur_ms > limit {
            violations.push(format!(
                "{name}: {cur_ms:.0}ms exceeds baseline {base_ms:.0}ms + {tol_pct:.0}% \
                 (limit {limit:.0}ms)"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(rows: &[(&str, u64)]) -> Json {
        let campaigns = rows
            .iter()
            .map(|(name, ms)| Json::object().with("campaign", *name).with("wall_ms", *ms))
            .collect();
        Json::object().with("campaigns", Json::Arr(campaigns))
    }

    #[test]
    fn regression_check_flags_only_slowdowns_past_tolerance() {
        let base = section(&[("ch3", 1_000), ("ch4", 2_000)]);
        let ok = section(&[("ch3", 1_200), ("ch4", 1_900)]);
        assert!(check_regression(&ok, &base, 25.0).is_empty());
        let slow = section(&[("ch3", 1_300)]);
        let v = check_regression(&slow, &base, 25.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("ch3:"), "{v:?}");
    }

    #[test]
    fn regression_check_reads_full_reports_and_skips_unknown_campaigns() {
        let base = Json::object().with(
            "sections",
            Json::object().with("bench", section(&[("ch3", 1_000)])),
        );
        let current = section(&[("ch3", 900), ("ch6", 99_999)]);
        assert!(check_regression(&current, &base, 25.0).is_empty());
    }

    #[test]
    fn micro_tier_reports_a_rate_for_every_roster_entry() {
        let rows = micro_benches(true);
        let rows = rows.as_arr().expect("micro rows");
        assert_eq!(rows.len(), micro_specs().len());
        for row in rows {
            assert!(row.get("name").and_then(Json::as_str).is_some());
            assert!(
                row.get("mcycles_per_sec")
                    .and_then(Json::as_f64)
                    .is_some_and(|r| r > 0.0),
                "{row:?}"
            );
        }
    }

    #[test]
    fn campaign_tier_counts_simulated_cycles_for_sim_backed_chapters() {
        let rows = campaign_benches(&["ch3"], true, 1);
        let row = &rows.as_arr().expect("rows")[0];
        assert_eq!(row.get("campaign").and_then(Json::as_str), Some("ch3"));
        assert!(
            row.get("cycles")
                .and_then(Json::as_f64)
                .is_some_and(|c| c > 0.0),
            "ch3 is simulation-backed; cycles must be counted: {row:?}"
        );
    }
}
