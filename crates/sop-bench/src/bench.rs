//! The simulator benchmark suite behind `sop bench` and `BENCH_sim.json`.
//!
//! Three tiers, all deterministic in *what* they run (only the clock
//! varies):
//!
//! * **micro** — single [`Machine::run_window`] calls over the chapter-3
//!   validation machines and the chapter-4 pod, reporting simulated
//!   cycles per second of wall time. These isolate the engine itself
//!   from the execution layer.
//! * **par-scaling** — the chapter-4 pod at 1/2/4 intra-run threads,
//!   reporting Mcycles/s per thread count and the speedup over the
//!   1-thread run. The 1-thread row doubles as the zero-overhead pin:
//!   it must take the sequential path and export no `prof.par.*`
//!   metrics.
//! * **campaign** — the chapter campaigns run cold (in-memory
//!   memoization only, nothing served from disk), reporting wall time
//!   and cycles/sec per chapter. Chapters run in order inside one
//!   process, exactly like a cold `repro all --quick`, so the per-chapter
//!   walls line up with that command's spans.
//!
//! The suite exists to pin the event-driven engine's speedup in-repo:
//! `BENCH_sim.json` commits the numbers, and [`check_regression`] lets
//! CI fail a PR whose cold wall time regresses past a tolerance.

use crate::campaign::run_campaign;
use sop_exec::Exec;
use sop_noc::TopologyKind;
use sop_obs::{Json, Registry};
use sop_sim::{cycles_simulated, Machine, SimConfig};
use sop_workloads::Workload;
use std::time::Instant;

/// Campaigns the campaign tier times, in run order: the chapters, then
/// the quick fleet simulation (`fleet-quick` always runs the quick
/// fleet configuration regardless of the suite's `--quick` flag, so its
/// history rows stay comparable run to run).
pub const BENCH_CAMPAIGNS: [&str; 6] = ["ch2", "ch3", "ch4", "ch5", "ch6", "fleet-quick"];

/// Bench history entries retained in `BENCH_sim.json` (about a year of
/// weekly runs); the oldest are dropped first.
pub const HISTORY_CAP: usize = 52;

/// Cold `repro all --quick` wall time of the per-cycle engine on the
/// 1-core reference container: median of three alternating runs at the
/// commit preceding the event-driven overhaul, re-measured under the
/// same conditions as the current numbers in `BENCH_sim.json`.
pub const BASELINE_ALL_QUICK_MS: u64 = 39_226;

/// The micro-bench roster: a label and the machine it times.
fn micro_specs() -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "val/websearch/mesh/16c",
            SimConfig::validation(Workload::WebSearch, 16, TopologyKind::Mesh),
        ),
        (
            "val/dataserving/crossbar/16c",
            SimConfig::validation(Workload::DataServing, 16, TopologyKind::Crossbar),
        ),
        (
            "pod/websearch/nocout",
            SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut),
        ),
        (
            "pod/mapreducec/mesh",
            SimConfig::pod_64(Workload::MapReduceC, TopologyKind::Mesh),
        ),
        (
            "pod/mediastreaming/fbfly",
            SimConfig::pod_64(Workload::MediaStreaming, TopologyKind::FlattenedButterfly),
        ),
    ]
}

/// Times one `run_window` per roster entry and returns the `micro`
/// rows. Cycles/sec counts timed cycles only; the (memoized) functional
/// warm-up is inside the wall, as it is for any cold simulation.
pub fn micro_benches(quick: bool) -> Json {
    micro_benches_collect(quick, &mut Registry::new())
}

/// [`micro_benches`], additionally merging each timed machine's named
/// metrics (`sim.*`, `noc.*`, `mem.*`) into `metrics` so bench reports
/// are diffable with `sop diff`.
pub fn micro_benches_collect(quick: bool, metrics: &mut Registry) -> Json {
    let (warm, measure) = if quick {
        (1_000, 2_000)
    } else {
        (4_000, 8_000)
    };
    let rows = micro_specs()
        .into_iter()
        .map(|(name, cfg)| {
            let mut machine = Machine::new(cfg);
            let start = Instant::now();
            let result = machine.run_window(warm, measure);
            let wall_us = start.elapsed().as_micros() as u64;
            metrics.merge(&result.metrics);
            Json::object()
                .with("name", name)
                .with("cycles", warm + measure)
                .with("wall_us", wall_us)
                .with("mcycles_per_sec", mcycles_per_sec(warm + measure, wall_us))
                .with("aggregate_ipc", result.aggregate_ipc())
        })
        .collect();
    Json::Arr(rows)
}

/// The parallel-engine scaling tier: one 64-tile pod machine per thread
/// count, reporting Mcycles/s and the speedup over the 1-thread row.
/// The 1-thread row is also the zero-overhead pin the bench smoke
/// asserts: `set_threads(1)` must leave the sequential engine in place
/// (`par_active` false) and a profiled run must export no `prof.par.*`
/// metrics at all. Speedups above 1 need real cores — on a 1-CPU host
/// the rows still pin determinism and overhead, just not scaling.
pub fn par_scaling_benches(quick: bool) -> Json {
    let (warm, measure) = if quick {
        (1_000, 2_000)
    } else {
        (4_000, 8_000)
    };
    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    for threads in [1usize, 2, 4] {
        let mut machine = Machine::new(SimConfig::pod_64(Workload::WebSearch, TopologyKind::Mesh));
        machine.enable_profiling();
        machine.set_threads(threads);
        assert_eq!(
            machine.par_active(),
            threads > 1,
            "a 64-tile pod shards iff more than one thread is requested"
        );
        let start = Instant::now();
        let result = machine.run_window(warm, measure);
        let wall_us = start.elapsed().as_micros() as u64;
        let barrier_ns = result.metrics.counter("prof.par.barrier.ns");
        if threads == 1 {
            assert!(
                !result
                    .metrics
                    .iter()
                    .any(|(k, _)| k.starts_with("prof.par.")),
                "threads=1 must add zero parallel overhead: no prof.par.* metrics"
            );
        }
        let rate = (warm + measure) as f64 / wall_us.max(1) as f64;
        if threads == 1 {
            base_rate = rate;
        }
        let mut row = Json::object()
            .with("threads", threads as u64)
            .with("wall_us", wall_us)
            .with("mcycles_per_sec", mcycles_per_sec(warm + measure, wall_us))
            .with("speedup_vs_1t", rate / base_rate);
        if threads > 1 {
            row.insert(
                "barrier_frac",
                Json::Num(barrier_ns as f64 / (wall_us as f64 * 1_000.0).max(1.0)),
            );
        }
        rows.push(row);
    }
    Json::Arr(rows)
}

/// Runs each named campaign cold on `jobs` workers (0 = one per core)
/// and returns the `campaigns` rows. Analytic chapters simulate no
/// cycles and report a null rate.
pub fn campaign_benches(names: &[&str], quick: bool, jobs: usize) -> Json {
    campaign_benches_on(&Exec::with_workers(jobs), names, quick)
}

/// [`campaign_benches`] on a caller-owned engine, so the caller can
/// harvest the engine's `exec.*` metrics afterwards.
pub fn campaign_benches_on(exec: &Exec, names: &[&str], quick: bool) -> Json {
    let rows = names
        .iter()
        .map(|name| {
            // `fleet-quick` pins the fleet campaign to its quick
            // configuration; its throughput rows use server-step events
            // rather than simulated cycles.
            let (campaign, quick_run) = match *name {
                "fleet-quick" => ("fleet", true),
                other => (other, quick),
            };
            let is_fleet = campaign == "fleet";
            let cycles_before = cycles_simulated();
            let events_before = sop_fleet::events_processed();
            let ticks_before = sop_fleet::ticks_simulated();
            let start = Instant::now();
            run_campaign(campaign, quick_run, exec).expect("bench campaign name");
            let wall_us = start.elapsed().as_micros() as u64;
            let cycles = cycles_simulated() - cycles_before;
            let mut row = Json::object()
                .with("campaign", *name)
                .with("wall_ms", wall_us / 1_000)
                .with("cycles", cycles)
                .with("mcycles_per_sec", mcycles_per_sec(cycles, wall_us));
            if is_fleet {
                let events = sop_fleet::events_processed() - events_before;
                let ticks = sop_fleet::ticks_simulated() - ticks_before;
                row.insert("events", Json::UInt(events));
                row.insert("sim_ticks", Json::UInt(ticks));
                row.insert(
                    "events_per_sec",
                    if events == 0 || wall_us == 0 {
                        Json::Null
                    } else {
                        Json::Num(events as f64 * 1e6 / wall_us as f64)
                    },
                );
            }
            row
        })
        .collect();
    Json::Arr(rows)
}

fn mcycles_per_sec(cycles: u64, wall_us: u64) -> Json {
    if cycles == 0 || wall_us == 0 {
        return Json::Null;
    }
    Json::Num(cycles as f64 / wall_us as f64)
}

/// Runs the full suite and assembles the `bench` report section: the
/// campaigns in `only` (or all of [`BENCH_CAMPAIGNS`]) first, while the
/// process is genuinely cold, then the micro and par-scaling tiers
/// (which benefit from the warm-up memoization the campaigns populated
/// — they measure engine throughput, not cold cost). In quick mode the
/// campaign total is comparable to the committed per-cycle baseline, so
/// the section also carries the speedup.
pub fn run_suite(quick: bool, jobs: usize, only: Option<&[&str]>) -> Json {
    run_suite_with_metrics(quick, jobs, only).0
}

/// [`run_suite`], also returning the engine registry the run populated
/// (`exec.*` from the campaign engine, `sim.*`/`noc.*`/`mem.*` from the
/// micro tier) for the report's top-level `metrics` object.
pub fn run_suite_with_metrics(quick: bool, jobs: usize, only: Option<&[&str]>) -> (Json, Registry) {
    let names = only.unwrap_or(&BENCH_CAMPAIGNS);
    let exec = Exec::with_workers(jobs);
    let mut metrics = Registry::new();
    let campaigns = campaign_benches_on(&exec, names, quick);
    let micro = micro_benches_collect(quick, &mut metrics);
    let par_scaling = par_scaling_benches(quick);
    metrics.merge(&exec.metrics_snapshot());
    let wall_sum = |rows: &[Json], chapters_only: bool| -> u64 {
        rows.iter()
            .filter(|row| {
                !chapters_only
                    || row
                        .get("campaign")
                        .and_then(Json::as_str)
                        .is_some_and(|n| !n.starts_with("fleet"))
            })
            .filter_map(|row| row.get("wall_ms").and_then(Json::as_f64))
            .sum::<f64>() as u64
    };
    let rows = campaigns.as_arr().expect("campaign rows");
    let total_wall_ms = wall_sum(rows, false);
    // The committed baseline predates the fleet tier; the speedup claim
    // compares chapter campaigns only.
    let chapter_wall_ms = wall_sum(rows, true);
    let mut section = Json::object()
        .with("quick", quick)
        .with("micro", micro)
        .with("par_scaling", par_scaling)
        .with("campaigns", campaigns)
        .with("total_wall_ms", total_wall_ms);
    let full_roster = names == BENCH_CAMPAIGNS;
    if quick && full_roster && chapter_wall_ms > 0 {
        section.insert("baseline_all_quick_ms", Json::UInt(BASELINE_ALL_QUICK_MS));
        section.insert(
            "speedup_vs_baseline",
            Json::Num(BASELINE_ALL_QUICK_MS as f64 / chapter_wall_ms as f64),
        );
    }
    (section, metrics)
}

/// Builds one bench-history entry from a freshly-run section: commit,
/// date, and the per-tier Mcycles/s + wall numbers the trajectory is
/// judged on.
pub fn history_entry(section: &Json, commit: &str, date: &str) -> Json {
    let tier = |rows: Option<&[Json]>, name_key: &str, keep: &[&str]| -> Json {
        Json::Arr(
            rows.unwrap_or_default()
                .iter()
                .map(|row| {
                    let mut out = Json::object();
                    if let Some(name) = row.get(name_key) {
                        out.insert(name_key, name.clone());
                    }
                    for &k in keep {
                        if let Some(v) = row.get(k) {
                            out.insert(k, v.clone());
                        }
                    }
                    out
                })
                .collect(),
        )
    };
    let mut entry = Json::object()
        .with("commit", commit)
        .with("date", date)
        .with("quick", section.get("quick").cloned().unwrap_or(Json::Null))
        .with(
            "micro",
            tier(
                section.get("micro").and_then(Json::as_arr),
                "name",
                &["mcycles_per_sec"],
            ),
        )
        .with(
            "par_scaling",
            tier(
                section.get("par_scaling").and_then(Json::as_arr),
                "threads",
                &["mcycles_per_sec", "speedup_vs_1t"],
            ),
        )
        .with(
            "campaigns",
            tier(
                section.get("campaigns").and_then(Json::as_arr),
                "campaign",
                &["wall_ms", "mcycles_per_sec", "events_per_sec"],
            ),
        );
    if let Some(total) = section.get("total_wall_ms") {
        entry.insert("total_wall_ms", total.clone());
    }
    entry
}

/// Appends `entry` to the history carried forward from the previously
/// committed document (if any), capped at [`HISTORY_CAP`] entries, and
/// stores the result in `section` — so `sop bench` grows a trajectory
/// instead of overwriting a single snapshot.
pub fn append_history(section: &mut Json, previous: Option<&Json>, entry: Json) {
    let mut history: Vec<Json> = previous
        .map(bench_section)
        .and_then(|s| s.get("history"))
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    history.push(entry);
    if history.len() > HISTORY_CAP {
        history.drain(..history.len() - HISTORY_CAP);
    }
    // `Json::insert` appends members; drop any stale `history` first so
    // the section never carries duplicate keys.
    if let Json::Obj(members) = section {
        members.retain(|(k, _)| k != "history");
    }
    section.insert("history", Json::Arr(history));
}

/// The current commit's short hash, or `"unknown"` outside a git
/// checkout.
pub fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// time crate; civil-from-days per Howard Hinnant's algorithm).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Extracts the `bench` section from either a bare section or a full
/// `sop-report/v1` document (as committed in `BENCH_sim.json`).
fn bench_section(doc: &Json) -> &Json {
    doc.get("sections")
        .and_then(|s| s.get("bench"))
        .unwrap_or(doc)
}

/// Compares per-campaign wall times against a baseline document: any
/// campaign present in both that is slower by more than `tol_pct`
/// percent is a regression. Returns the violations (empty = pass).
/// Campaigns missing from either side are ignored, so a smoke run over
/// one chapter can be judged against the full committed suite. A
/// baseline with a `history` array is judged by its **latest** entry;
/// documents from before history tracking fall back to the flat
/// `campaigns` rows.
pub fn check_regression(current: &Json, baseline: &Json, tol_pct: f64) -> Vec<String> {
    let walls = |doc: &Json| -> Vec<(String, f64)> {
        let section = bench_section(doc);
        let rows = section
            .get("history")
            .and_then(Json::as_arr)
            .and_then(<[Json]>::last)
            .and_then(|latest| latest.get("campaigns"))
            .and_then(Json::as_arr)
            .or_else(|| section.get("campaigns").and_then(Json::as_arr));
        rows.map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let name = row.get("campaign")?.as_str()?.to_owned();
                    let wall = row.get("wall_ms")?.as_f64()?;
                    Some((name, wall))
                })
                .collect()
        })
        .unwrap_or_default()
    };
    let base = walls(baseline);
    let mut violations = Vec::new();
    for (name, cur_ms) in walls(current) {
        let Some((_, base_ms)) = base.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        let limit = base_ms * (1.0 + tol_pct / 100.0);
        if cur_ms > limit {
            violations.push(format!(
                "{name}: {cur_ms:.0}ms exceeds baseline {base_ms:.0}ms + {tol_pct:.0}% \
                 (limit {limit:.0}ms)"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(rows: &[(&str, u64)]) -> Json {
        let campaigns = rows
            .iter()
            .map(|(name, ms)| Json::object().with("campaign", *name).with("wall_ms", *ms))
            .collect();
        Json::object().with("campaigns", Json::Arr(campaigns))
    }

    #[test]
    fn regression_check_flags_only_slowdowns_past_tolerance() {
        let base = section(&[("ch3", 1_000), ("ch4", 2_000)]);
        let ok = section(&[("ch3", 1_200), ("ch4", 1_900)]);
        assert!(check_regression(&ok, &base, 25.0).is_empty());
        let slow = section(&[("ch3", 1_300)]);
        let v = check_regression(&slow, &base, 25.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("ch3:"), "{v:?}");
    }

    #[test]
    fn regression_check_reads_full_reports_and_skips_unknown_campaigns() {
        let base = Json::object().with(
            "sections",
            Json::object().with("bench", section(&[("ch3", 1_000)])),
        );
        let current = section(&[("ch3", 900), ("ch6", 99_999)]);
        assert!(check_regression(&current, &base, 25.0).is_empty());
    }

    #[test]
    fn micro_tier_reports_a_rate_for_every_roster_entry() {
        let rows = micro_benches(true);
        let rows = rows.as_arr().expect("micro rows");
        assert_eq!(rows.len(), micro_specs().len());
        for row in rows {
            assert!(row.get("name").and_then(Json::as_str).is_some());
            assert!(
                row.get("mcycles_per_sec")
                    .and_then(Json::as_f64)
                    .is_some_and(|r| r > 0.0),
                "{row:?}"
            );
        }
    }

    #[test]
    fn regression_check_prefers_the_latest_history_entry() {
        // Flat rows say 1000ms, but the history's latest entry says
        // 2000ms: a 1900ms current run passes only if the gate reads the
        // history entry.
        let mut base = section(&[("ch3", 1_000)]);
        let older = Json::object().with(
            "campaigns",
            section(&[("ch3", 500)])
                .get("campaigns")
                .cloned()
                .expect("rows"),
        );
        let latest = Json::object().with(
            "campaigns",
            section(&[("ch3", 2_000)])
                .get("campaigns")
                .cloned()
                .expect("rows"),
        );
        base.insert("history", Json::Arr(vec![older, latest]));
        let current = section(&[("ch3", 1_900)]);
        assert!(check_regression(&current, &base, 25.0).is_empty());
        let slow = section(&[("ch3", 2_600)]);
        assert_eq!(check_regression(&slow, &base, 25.0).len(), 1);
    }

    #[test]
    fn history_appends_carry_forward_and_cap() {
        let fresh = section(&[("ch3", 700)])
            .with("quick", true)
            .with("total_wall_ms", 700u64);
        let entry = history_entry(&fresh, "abc1234", "2026-08-09");
        assert_eq!(entry.get("commit").and_then(Json::as_str), Some("abc1234"));
        let campaigns = entry.get("campaigns").and_then(Json::as_arr).expect("rows");
        assert_eq!(
            campaigns[0].get("campaign").and_then(Json::as_str),
            Some("ch3")
        );
        assert_eq!(
            campaigns[0].get("wall_ms").and_then(Json::as_f64),
            Some(700.0)
        );

        // First run: no previous document, history holds one entry.
        let mut section1 = fresh.clone();
        append_history(&mut section1, None, entry.clone());
        let h1 = section1
            .get("history")
            .and_then(Json::as_arr)
            .expect("history");
        assert_eq!(h1.len(), 1);

        // Second run carries the first entry forward inside a full report.
        let previous =
            Json::object().with("sections", Json::object().with("bench", section1.clone()));
        let mut section2 = section(&[("ch3", 650)]);
        let entry2 = history_entry(&section2, "def5678", "2026-08-10");
        append_history(&mut section2, Some(&previous), entry2);
        let h2 = section2
            .get("history")
            .and_then(Json::as_arr)
            .expect("history");
        assert_eq!(h2.len(), 2);
        assert_eq!(h2[1].get("commit").and_then(Json::as_str), Some("def5678"));

        // The cap drops the oldest entries.
        let mut crowded = fresh.clone();
        let mut prev = None;
        for i in 0..(HISTORY_CAP + 10) {
            let doc = prev.take().unwrap_or_else(Json::object);
            let mut s = crowded.clone();
            append_history(
                &mut s,
                Some(&doc),
                history_entry(&fresh, &format!("c{i}"), "2026-01-01"),
            );
            prev = Some(Json::object().with("sections", Json::object().with("bench", s.clone())));
            crowded = s;
        }
        let h = crowded
            .get("history")
            .and_then(Json::as_arr)
            .expect("history");
        assert_eq!(h.len(), HISTORY_CAP);
        assert_eq!(
            h.last()
                .and_then(|e| e.get("commit"))
                .and_then(Json::as_str),
            Some(format!("c{}", HISTORY_CAP + 9).as_str())
        );
    }

    #[test]
    fn par_tier_reports_all_thread_counts_and_pins_zero_overhead() {
        // The zero-overhead pin itself (no prof.par.* metrics at one
        // thread, sequential path taken) asserts inside the tier; this
        // test runs it and checks the row shape.
        let rows = par_scaling_benches(true);
        let rows = rows.as_arr().expect("par rows");
        assert_eq!(rows.len(), 3);
        for (row, threads) in rows.iter().zip([1u64, 2, 4]) {
            assert_eq!(
                row.get("threads").and_then(Json::as_f64),
                Some(threads as f64)
            );
            assert!(
                row.get("mcycles_per_sec")
                    .and_then(Json::as_f64)
                    .is_some_and(|r| r > 0.0),
                "{row:?}"
            );
            assert!(
                row.get("speedup_vs_1t")
                    .and_then(Json::as_f64)
                    .is_some_and(|s| s > 0.0),
                "{row:?}"
            );
            assert_eq!(row.get("barrier_frac").is_some(), threads > 1, "{row:?}");
        }
        // The history entry keeps the scaling trajectory.
        let section = Json::object().with("par_scaling", Json::Arr(rows.to_vec()));
        let entry = history_entry(&section, "abc", "2026-08-09");
        let kept = entry
            .get("par_scaling")
            .and_then(Json::as_arr)
            .expect("rows");
        assert_eq!(kept.len(), 3);
        assert!(kept[2].get("speedup_vs_1t").is_some());
    }

    #[test]
    fn date_and_commit_helpers_are_wellformed() {
        let date = today_utc();
        assert_eq!(date.len(), 10, "{date}");
        assert!(date.chars().filter(|&c| c == '-').count() == 2, "{date}");
        assert!(!commit_hash().is_empty());
    }

    #[test]
    fn suite_metrics_cover_engine_and_simulator() {
        let (section, metrics) = run_suite_with_metrics(true, 1, Some(&["ch2"]));
        assert!(section.get("campaigns").is_some());
        assert!(metrics.counter("sim.cycles") > 0, "micro tier sim metrics");
        assert!(
            metrics.gauge("exec.workers").is_some(),
            "campaign engine exec metrics"
        );
    }

    #[test]
    fn fleet_quick_tier_reports_event_throughput() {
        let rows = campaign_benches(&["fleet-quick"], false, 1);
        let row = &rows.as_arr().expect("rows")[0];
        assert_eq!(
            row.get("campaign").and_then(Json::as_str),
            Some("fleet-quick")
        );
        assert!(
            row.get("events")
                .and_then(Json::as_f64)
                .is_some_and(|e| e > 0.0),
            "fleet runs must process server-step events: {row:?}"
        );
        assert!(
            row.get("events_per_sec")
                .and_then(Json::as_f64)
                .is_some_and(|r| r > 0.0),
            "{row:?}"
        );
        assert!(
            row.get("sim_ticks")
                .and_then(Json::as_f64)
                .is_some_and(|t| t > 0.0),
            "{row:?}"
        );
        // The history entry keeps the throughput number.
        let section = Json::object().with("campaigns", rows);
        let entry = history_entry(&section, "abc", "2026-08-09");
        let kept = entry.get("campaigns").and_then(Json::as_arr).expect("rows");
        assert!(kept[0].get("events_per_sec").is_some());
    }

    #[test]
    fn campaign_tier_counts_simulated_cycles_for_sim_backed_chapters() {
        let rows = campaign_benches(&["ch3"], true, 1);
        let row = &rows.as_arr().expect("rows")[0];
        assert_eq!(row.get("campaign").and_then(Json::as_str), Some("ch3"));
        assert!(
            row.get("cycles")
                .and_then(Json::as_f64)
                .is_some_and(|c| c > 0.0),
            "ch3 is simulation-backed; cycles must be counted: {row:?}"
        );
    }
}
