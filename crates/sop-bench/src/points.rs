//! Cacheable simulation points: the unit of work the execution engine
//! schedules and memoizes.
//!
//! A [`SimPointSpec`] names one cycle-level simulation completely — the
//! preset, workload, fabric, overrides, and window lengths — so its
//! canonical JSON form is a sound content-address for the result. The
//! corresponding [`SimPoint`] carries only the scalars the figures
//! consume, keeping cache entries small and the figures honest about
//! what they depend on.
//!
//! The simulator is deterministic for a given config (fixed seed), so
//! evaluating a spec is a pure function and the cache never changes a
//! figure, only how fast it appears.

use sop_exec::{Exec, Job};
use sop_fault::FaultPlan;
use sop_noc::TopologyKind;
use sop_obs::Json;
use sop_sim::{HaltReason, Machine, SimConfig};
use sop_workloads::Workload;

/// A seeded router-death schedule attached to a spec: `dead` distinct
/// routers (chosen by `seed` over the machine's fabric) die at `cycle`.
/// Kept `Copy`-small so specs stay plain values; the concrete
/// [`FaultPlan`] is expanded at evaluation time once the router universe
/// is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecFaults {
    /// Victim-selection seed.
    pub seed: u64,
    /// Number of routers killed.
    pub dead: u32,
    /// Cycle at which they all die.
    pub cycle: u64,
}

impl SpecFaults {
    /// Cache-identity form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("seed", self.seed)
            .with("dead_routers", self.dead)
            .with("cycle", self.cycle)
    }
}

/// One fully-specified cycle-level simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPointSpec {
    /// The chapter 3 model-validation machine (`SimConfig::validation`).
    Validation {
        /// Workload simulated.
        workload: Workload,
        /// Core count.
        cores: u32,
        /// Fabric.
        topology: TopologyKind,
        /// Warm-up cycles.
        warm: u64,
        /// Measured cycles.
        measure: u64,
        /// Injected faults (`None` for the healthy machine; absent from
        /// the cache identity when `None` so pre-fault entries stay
        /// valid).
        faults: Option<SpecFaults>,
    },
    /// The chapter 4 64-core pod (`SimConfig::pod_64`), with the
    /// ablations' knobs exposed.
    Pod64 {
        /// Workload simulated.
        workload: Workload,
        /// Fabric.
        topology: TopologyKind,
        /// NOC link width in bits.
        link_bits: u32,
        /// LLC tile count override (`None` keeps the preset's value).
        llc_tiles: Option<u32>,
        /// Warm-up cycles.
        warm: u64,
        /// Measured cycles.
        measure: u64,
        /// Injected faults (`None` for the healthy machine; absent from
        /// the cache identity when `None` so pre-fault entries stay
        /// valid).
        faults: Option<SpecFaults>,
    },
}

impl SimPointSpec {
    /// The spec's cache identity. Every field that influences the
    /// simulation appears here; the seed is fixed by the presets.
    pub fn to_json(&self) -> Json {
        let (doc, faults) = match *self {
            SimPointSpec::Validation {
                workload,
                cores,
                topology,
                warm,
                measure,
                faults,
            } => (
                Json::object()
                    .with("kind", "sim.validation")
                    .with("workload", workload.label())
                    .with("cores", cores)
                    .with("topology", format!("{topology:?}").as_str())
                    .with("warm", warm)
                    .with("measure", measure),
                faults,
            ),
            SimPointSpec::Pod64 {
                workload,
                topology,
                link_bits,
                llc_tiles,
                warm,
                measure,
                faults,
            } => (
                Json::object()
                    .with("kind", "sim.pod64")
                    .with("workload", workload.label())
                    .with("topology", format!("{topology:?}").as_str())
                    .with("link_bits", link_bits)
                    .with(
                        "llc_tiles",
                        llc_tiles.map_or(Json::Null, |t| Json::UInt(u64::from(t))),
                    )
                    .with("warm", warm)
                    .with("measure", measure),
                faults,
            ),
        };
        // Only faulted specs carry the key: healthy specs hash exactly as
        // they did before fault injection existed, preserving caches.
        match faults {
            Some(f) => doc.with("faults", f.to_json()),
            None => doc,
        }
    }

    /// A short label for manifests and progress output.
    pub fn name(&self) -> String {
        let base = match *self {
            SimPointSpec::Validation {
                workload,
                cores,
                topology,
                ..
            } => format!("val/{}/{topology:?}/{cores}c", workload.label()),
            SimPointSpec::Pod64 {
                workload,
                topology,
                link_bits,
                llc_tiles,
                ..
            } => match llc_tiles {
                Some(t) => format!("pod/{}/{topology:?}/{link_bits}b/{t}t", workload.label()),
                None => format!("pod/{}/{topology:?}/{link_bits}b", workload.label()),
            },
        };
        match self.faults() {
            Some(f) => format!("{base}/kill{}r@{}s{}", f.dead, f.cycle, f.seed),
            None => base,
        }
    }

    /// The spec's fault schedule, if any.
    pub fn faults(&self) -> Option<SpecFaults> {
        match *self {
            SimPointSpec::Validation { faults, .. } | SimPointSpec::Pod64 { faults, .. } => faults,
        }
    }

    /// The same spec with `faults` attached (sweep construction).
    pub fn with_faults(mut self, f: Option<SpecFaults>) -> Self {
        match &mut self {
            SimPointSpec::Validation { faults, .. } | SimPointSpec::Pod64 { faults, .. } => {
                *faults = f;
            }
        }
        self
    }

    /// Runs the simulation this spec describes.
    pub fn evaluate(&self) -> SimPoint {
        let (cfg, warm, measure) = match *self {
            SimPointSpec::Validation {
                workload,
                cores,
                topology,
                warm,
                measure,
                ..
            } => (
                SimConfig::validation(workload, cores, topology),
                warm,
                measure,
            ),
            SimPointSpec::Pod64 {
                workload,
                topology,
                link_bits,
                llc_tiles,
                warm,
                measure,
                ..
            } => {
                let mut cfg = SimConfig::pod_64(workload, topology);
                cfg.noc = cfg.noc.with_link_bits(link_bits);
                if let Some(tiles) = llc_tiles {
                    cfg.noc.llc_tiles = tiles;
                }
                (cfg, warm, measure)
            }
        };
        let mut m = Machine::new(cfg);
        if let Some(f) = self.faults() {
            let plan = FaultPlan::seeded_router_deaths(f.seed, f.dead, m.router_count(), f.cycle);
            m.set_fault_plan(&plan);
        }
        let r = m.run(warm, measure);
        SimPoint {
            aggregate_ipc: r.aggregate_ipc(),
            per_core_ipc: r.per_core_ipc(),
            snoop_fraction: r.snoop_fraction(),
            mean_packet_latency: r.mean_packet_latency,
            noc_flit_hops: r.noc_flit_hops,
            noc_flit_mm: r.noc_flit_mm,
            halted: r.halted,
        }
    }
}

/// The scalars a simulation point yields — everything the figures read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Aggregate application IPC.
    pub aggregate_ipc: f64,
    /// Per-core application IPC.
    pub per_core_ipc: f64,
    /// Fraction of LLC accesses that triggered a snoop.
    pub snoop_fraction: f64,
    /// Mean NOC packet latency in cycles.
    pub mean_packet_latency: f64,
    /// Flit-hops through routers during the window.
    pub noc_flit_hops: u64,
    /// Flit-millimetres of wire traversed during the window.
    pub noc_flit_mm: f64,
    /// Structured early-stop outcome (`None` for a healthy run; only
    /// faulted machines ever halt).
    pub halted: Option<HaltReason>,
}

impl SimPoint {
    /// Serializes for the result cache.
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .with("aggregate_ipc", self.aggregate_ipc)
            .with("per_core_ipc", self.per_core_ipc)
            .with("snoop_fraction", self.snoop_fraction)
            .with("mean_packet_latency", self.mean_packet_latency)
            .with("noc_flit_hops", self.noc_flit_hops)
            .with("noc_flit_mm", self.noc_flit_mm);
        // Written only when set: healthy results stay byte-identical to
        // their pre-fault form.
        match self.halted {
            Some(h) => doc.with("halted", h.key()),
            None => doc,
        }
    }

    /// The placeholder for a job that failed: every scalar is NaN so a
    /// poisoned value can never silently pass a golden check.
    pub fn failed() -> Self {
        SimPoint {
            aggregate_ipc: f64::NAN,
            per_core_ipc: f64::NAN,
            snoop_fraction: f64::NAN,
            mean_packet_latency: f64::NAN,
            noc_flit_hops: 0,
            noc_flit_mm: f64::NAN,
            halted: None,
        }
    }

    /// Deserializes a cached result.
    ///
    /// # Panics
    ///
    /// Panics if a field is missing — the cache validates entries by
    /// content hash, so a well-formed entry always round-trips.
    pub fn from_json(doc: &Json) -> Self {
        let f = |k: &str| doc.get(k).and_then(Json::as_f64).expect("sim point field");
        SimPoint {
            aggregate_ipc: f("aggregate_ipc"),
            per_core_ipc: f("per_core_ipc"),
            snoop_fraction: f("snoop_fraction"),
            mean_packet_latency: f("mean_packet_latency"),
            noc_flit_hops: f("noc_flit_hops") as u64,
            noc_flit_mm: f("noc_flit_mm"),
            halted: doc
                .get("halted")
                .and_then(Json::as_str)
                .and_then(HaltReason::from_key),
        }
    }
}

/// Process-wide fault override (`repro --fault routers:N@CYCLE`): every
/// simulation point that does not already carry a schedule runs under
/// this one. Set once at startup, before any campaign; faulted specs
/// hash differently, so the override never contaminates fault-free cache
/// entries.
static GLOBAL_FAULTS: std::sync::OnceLock<SpecFaults> = std::sync::OnceLock::new();

/// Installs the process-wide fault override. Returns `false` if one was
/// already set (the first one wins).
pub fn set_global_faults(f: SpecFaults) -> bool {
    GLOBAL_FAULTS.set(f).is_ok()
}

/// Evaluates `specs` as one campaign on `exec`: duplicates collapse,
/// cached points are served from disk, fresh points run on the worker
/// pool, and the results come back in spec order.
pub fn sim_points(exec: &Exec, campaign: &str, specs: &[SimPointSpec]) -> Vec<SimPoint> {
    let global = GLOBAL_FAULTS.get().copied();
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .map(|spec| {
            let spec = match (spec.faults(), global) {
                (None, Some(g)) => spec.with_faults(Some(g)),
                _ => *spec,
            };
            Job::new(spec.name(), spec.to_json(), move |_| {
                spec.evaluate().to_json()
            })
        })
        .collect();
    exec.run_campaign(campaign, jobs)
        .results
        .iter()
        .map(|r| match r {
            // A failed job leaves a `Json::Null` slot; surface it as a
            // poisoned point instead of killing the whole campaign — the
            // caller's report carries the failure details.
            Json::Null => SimPoint::failed(),
            doc => SimPoint::from_json(doc),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SimPointSpec {
        SimPointSpec::Pod64 {
            workload: Workload::WebSearch,
            topology: TopologyKind::NocOut,
            link_bits: 128,
            llc_tiles: None,
            warm: 500,
            measure: 1_000,
            faults: None,
        }
    }

    #[test]
    fn point_round_trips_through_json() {
        let p = SimPoint {
            aggregate_ipc: 21.5,
            per_core_ipc: 0.34,
            snoop_fraction: 0.027,
            mean_packet_latency: 14.2,
            noc_flit_hops: 123_456,
            noc_flit_mm: 789.25,
            halted: Some(HaltReason::Partition),
        };
        assert_eq!(SimPoint::from_json(&p.to_json()), p);
    }

    #[test]
    fn evaluating_through_the_engine_matches_direct_evaluation() {
        let spec = sample_spec();
        let direct = spec.evaluate();
        let via_engine = sim_points(&Exec::with_workers(2), "points-test", &[spec, spec]);
        assert_eq!(via_engine, vec![direct, direct]);
    }

    #[test]
    fn llc_tile_override_changes_the_identity_and_the_result() {
        let base = sample_spec();
        let SimPointSpec::Pod64 {
            workload,
            topology,
            link_bits,
            warm,
            measure,
            ..
        } = base
        else {
            unreachable!()
        };
        let overridden = SimPointSpec::Pod64 {
            workload,
            topology,
            link_bits,
            llc_tiles: Some(4),
            warm,
            measure,
            faults: None,
        };
        assert_ne!(
            sop_exec::spec_hash(&base.to_json()),
            sop_exec::spec_hash(&overridden.to_json())
        );
    }
}
