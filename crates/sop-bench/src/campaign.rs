//! Named experiment campaigns for `sop sweep`.
//!
//! Each campaign regenerates one chapter's machine-readable data through
//! the execution engine: simulation-backed chapters batch their points
//! into engine jobs (cached, parallel, resumable), analytic chapters fan
//! out over the worker pool. `all` runs every chapter into one merged
//! document.

use crate::{ch2, ch3, ch4, ch5, ch6, degradation};
use sop_exec::Exec;
use sop_noc::TopologyKind;
use sop_obs::Json;
use sop_workloads::Workload;

/// The campaigns `sop sweep` accepts. `all` merges the chapters only:
/// `degradation` injects faults, `fleet` simulates dynamic traffic, and
/// the canonical fault-free reproduction must stay byte-identical
/// whether or not those sweeps ever ran.
pub const CAMPAIGNS: [&str; 8] = [
    "ch2",
    "ch3",
    "ch4",
    "ch5",
    "ch6",
    "degradation",
    "fleet",
    "all",
];

/// The process-wide simulated-work counter the heartbeat stamps into
/// `job_finish` events: engine cycles plus fleet ticks. At most one of
/// the two advances for any given job (a job is either a machine
/// simulation or a fleet run), so per-campaign deltas stay meaningful
/// — cycles/sec for chapter campaigns, simulated seconds/sec for fleet
/// campaigns.
pub fn simulated_work_counter() -> u64 {
    sop_sim::cycles_simulated() + sop_fleet::ticks_simulated()
}

/// Runs the named campaign and returns its data as a JSON section:
/// one member per figure, rows in figure order. `None` for an unknown
/// name.
pub fn run_campaign(name: &str, quick: bool, exec: &Exec) -> Option<Json> {
    // Let the engine's heartbeat stamp job_finish events with the
    // process-wide simulated-work counter and the parallel engine's
    // telemetry (sop-exec cannot depend on sop-sim or sop-fleet, so the
    // hooks are installed from here).
    sop_exec::heartbeat::set_cycle_source(simulated_work_counter);
    sop_exec::heartbeat::set_par_source(sop_sim::par_telemetry);
    match name {
        "ch2" => Some(ch2_data(exec)),
        "ch3" => Some(ch3_data(quick, exec)),
        "ch4" => Some(ch4_data(quick, exec)),
        "ch5" => Some(ch5_data(exec)),
        "ch6" => Some(ch6_data(exec)),
        "degradation" => Some(degradation_data(quick, exec)),
        "fleet" => Some(fleet_data(quick, exec)),
        "all" => Some(
            Json::object()
                .with("ch2", ch2_data(exec))
                .with("ch3", ch3_data(quick, exec))
                .with("ch4", ch4_data(quick, exec))
                .with("ch5", ch5_data(exec))
                .with("ch6", ch6_data(exec)),
        ),
        _ => None,
    }
}

fn ch2_data(exec: &Exec) -> Json {
    let fig2_1 = Json::Arr(
        ch2::fig2_1()
            .into_iter()
            .map(|(w, ipc)| Json::object().with("workload", w.label()).with("ipc", ipc))
            .collect(),
    );
    let fig2_2 = Json::Arr(
        ch2::fig2_2_on(exec)
            .into_iter()
            .map(|(w, series)| {
                Json::object().with("workload", w.label()).with(
                    "normalised",
                    Json::Arr(series.into_iter().map(Json::Num).collect()),
                )
            })
            .collect(),
    );
    let fig2_3 = Json::Arr(
        ch2::fig2_3_on(exec)
            .into_iter()
            .map(|(n, ideal, mesh)| {
                Json::object()
                    .with("cores", n)
                    .with("ideal", ideal)
                    .with("mesh", mesh)
            })
            .collect(),
    );
    Json::object()
        .with("fig2.1", fig2_1)
        .with("fig2.2", fig2_2)
        .with("fig2.3", fig2_3)
}

fn ch3_data(quick: bool, exec: &Exec) -> Json {
    let fig3_1 = Json::Arr(
        ch3::fig3_1()
            .into_iter()
            .map(|(n, per_core, per_chip, pd)| {
                Json::object()
                    .with("cores", n)
                    .with("per_core_ipc", per_core)
                    .with("aggregate_ipc", per_chip)
                    .with("pd", pd)
            })
            .collect(),
    );
    let mut fig3_3 = Vec::new();
    for topology in [
        TopologyKind::Ideal,
        TopologyKind::Crossbar,
        TopologyKind::Mesh,
    ] {
        for w in Workload::ALL {
            for p in ch3::fig3_3_on(exec, w, topology, quick) {
                fig3_3.push(
                    Json::object()
                        .with("workload", p.workload.label())
                        .with("topology", format!("{:?}", p.topology).as_str())
                        .with("cores", p.cores)
                        .with("simulated_ipc", p.simulated_ipc)
                        .with("modeled_ipc", p.modeled_ipc),
                );
            }
        }
    }
    Json::object()
        .with("fig3.1", fig3_1)
        .with("fig3.3", Json::Arr(fig3_3))
}

fn ch4_data(quick: bool, exec: &Exec) -> Json {
    let fig4_3 = Json::Arr(
        ch4::fig4_3_on(exec, quick)
            .into_iter()
            .map(|(w, f)| {
                Json::object()
                    .with("workload", w.label())
                    .with("snoop_fraction", f)
            })
            .collect(),
    );
    let fig4_6 = Json::Arr(
        ch4::noc_performance_on(exec, [128, 128, 128], quick)
            .into_iter()
            .map(|(w, r)| {
                Json::object()
                    .with("workload", w.label())
                    .with("mesh", r[0])
                    .with("fbfly", r[1])
                    .with("nocout", r[2])
            })
            .collect(),
    );
    let fig4_9 = Json::Arr(
        ch4::fig4_9_power_on(exec, quick)
            .into_iter()
            .map(|(kind, w)| {
                Json::object()
                    .with("fabric", format!("{kind:?}").as_str())
                    .with("mean_power_w", w)
            })
            .collect(),
    );
    Json::object()
        .with("fig4.3", fig4_3)
        .with("fig4.6", fig4_6)
        .with("fig4.9", fig4_9)
}

/// The fleet campaign: every chip organization × both repair policies,
/// 64 servers quick / 256 full, at the fixed campaign seed 42.
fn fleet_data(quick: bool, exec: &Exec) -> Json {
    let servers = if quick { 64 } else { 256 };
    let specs = sop_fleet::grid(servers, 42, quick, None, None);
    Json::object().with(
        "fleet",
        Json::Arr(sop_fleet::fleet_points(exec, "fleet", &specs)),
    )
}

fn degradation_data(quick: bool, exec: &Exec) -> Json {
    Json::object().with(
        "degradation",
        Json::Arr(
            degradation::sweep_on(exec, quick)
                .iter()
                .map(degradation::DegradationRow::to_json)
                .collect(),
        ),
    )
}

fn ch5_data(exec: &Exec) -> Json {
    let dcs = ch5::datacenters_on(exec, 64);
    let base_perf = dcs[0].performance;
    let base_tco = dcs[0].tco.total_usd();
    Json::object().with(
        "fig5.1_5.2",
        Json::Arr(
            dcs.iter()
                .map(|dc| {
                    Json::object()
                        .with("chip", dc.chip.label.as_str())
                        .with("performance_x", dc.performance / base_perf)
                        .with("tco_x", dc.tco.total_usd() / base_tco)
                        .with("perf_per_tco", dc.perf_per_tco())
                })
                .collect(),
        ),
    )
}

fn ch6_data(exec: &Exec) -> Json {
    use sop_3d::{Pod3d, StackStrategy};
    use sop_tech::CoreKind;
    let combos: Vec<(CoreKind, u32, StackStrategy)> = [CoreKind::OutOfOrder, CoreKind::InOrder]
        .iter()
        .flat_map(|&kind| {
            let max_dies: &[u32] = if kind == CoreKind::InOrder {
                &[1, 2, 3]
            } else {
                &[1, 2, 4]
            };
            max_dies.iter().flat_map(move |&dies| {
                [StackStrategy::FixedPod, StackStrategy::FixedDistance]
                    .iter()
                    .filter(move |&&s| !(dies == 1 && s == StackStrategy::FixedDistance))
                    .map(move |&s| (kind, dies, s))
            })
        })
        .collect();
    let rows = exec.map(combos, |(kind, dies, strategy)| {
        let (cores, mb) = ch6::base_pod(kind);
        let pod = Pod3d::new(kind, cores, mb, dies, strategy);
        let m = pod.metrics();
        Json::object()
            .with("core", kind.label())
            .with("dies", dies)
            .with("strategy", format!("{strategy:?}").as_str())
            .with("total_cores", pod.total_cores())
            .with("total_llc_mb", pod.total_llc_mb())
            .with("pd3d", m.performance_density_3d)
    });
    Json::object().with("tab6.2", Json::Arr(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_campaign_is_none() {
        assert!(run_campaign("ch99", true, &Exec::sequential()).is_none());
    }

    #[test]
    fn fleet_campaign_covers_every_org_and_policy() {
        let rows_per_grid = sop_fleet::ORGS.len() * sop_fleet::Policy::ALL.len();
        let fleet = run_campaign("fleet", true, &Exec::sequential()).expect("fleet");
        let rows = fleet.get("fleet").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), rows_per_grid);
        for row in rows {
            assert!(row.get("failed").is_none(), "{row:?}");
            assert!(row.get("cost_per_sustained_kqps_usd").is_some());
            assert!(row.get("curve").and_then(Json::as_arr).is_some());
        }
    }

    #[test]
    fn analytic_campaigns_have_their_figures() {
        let exec = Exec::sequential();
        let ch2 = run_campaign("ch2", true, &exec).expect("ch2");
        assert_eq!(
            ch2.get("fig2.1").and_then(Json::as_arr).map(<[Json]>::len),
            Some(Workload::ALL.len())
        );
        let ch5 = run_campaign("ch5", true, &exec).expect("ch5");
        assert_eq!(
            ch5.get("fig5.1_5.2")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(7)
        );
        let ch6 = run_campaign("ch6", true, &exec).expect("ch6");
        assert!(
            ch6.get("tab6.2")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len)
                >= 8
        );
    }
}
