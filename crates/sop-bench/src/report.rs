//! Machine-readable run support for the bench binaries: the golden
//! checks behind `repro`'s exit code and the sample pod simulation that
//! populates a report's `metrics` block.
//!
//! The golden values here mirror `tests/golden.rs` at the workspace
//! root: those tests pin the calibration for CI, while this module lets
//! a `repro` run verify the same numbers at run time and record the
//! outcome in its `--json` report. Update both together (and
//! EXPERIMENTS.md) after an intentional model change.

use sop_core::designs::{reference_chip, DesignKind};
use sop_core::PodConfig;
use sop_model::{DesignPoint, Interconnect};
use sop_noc::{NocAreaBreakdown, NocConfig, TopologyKind};
use sop_obs::{Json, Registry};
use sop_sim::{Machine, SimConfig};
use sop_tco::{estimated_price_usd, Datacenter, TcoParams};
use sop_tech::{CoreKind, TechnologyNode};
use sop_workloads::Workload;

/// One reproduced value compared against its pinned golden target.
#[derive(Debug, Clone)]
pub struct GoldenCheck {
    /// Which figure/table value this pins, e.g. `"fig2.1/Web Search"`.
    pub name: String,
    /// The value this build reproduces.
    pub value: f64,
    /// The pinned landing point from EXPERIMENTS.md.
    pub golden: f64,
    /// Relative tolerance; `0.0` demands exact equality (integer rows).
    pub tol: f64,
}

impl GoldenCheck {
    fn new(name: impl Into<String>, value: f64, golden: f64, tol: f64) -> Self {
        GoldenCheck {
            name: name.into(),
            value,
            golden,
            tol,
        }
    }

    /// Whether the reproduced value lands within tolerance of the golden.
    pub fn ok(&self) -> bool {
        (self.value - self.golden).abs() <= self.golden.abs() * self.tol
    }
}

/// Recomputes every pinned headline value (all analytic — no cycle-level
/// simulation, so this takes milliseconds).
pub fn golden_checks() -> Vec<GoldenCheck> {
    let mut checks = Vec::new();

    // Fig 2.1: per-workload IPC on the aggressive conventional core.
    for (w, golden) in [
        (Workload::DataServing, 1.26),
        (Workload::MapReduceC, 1.02),
        (Workload::MapReduceW, 1.66),
        (Workload::MediaStreaming, 0.91),
        (Workload::SatSolver, 1.50),
        (Workload::WebFrontend, 1.65),
        (Workload::WebSearch, 1.81),
    ] {
        let ipc = DesignPoint::new(CoreKind::Conventional, 4, 8.0, Interconnect::Ideal)
            .evaluate(w)
            .per_core_ipc;
        checks.push(GoldenCheck::new(
            format!("fig2.1/{}", w.label()),
            ipc,
            golden,
            0.05,
        ));
    }

    // Chapter 3: the adopted pods.
    let ooo = PodConfig::new(CoreKind::OutOfOrder, 16, 4.0, Interconnect::Crossbar).metrics();
    checks.push(GoldenCheck::new(
        "pod/ooo/area_mm2",
        ooo.area_mm2,
        92.6,
        0.02,
    ));
    checks.push(GoldenCheck::new("pod/ooo/power_w", ooo.power_w, 20.3, 0.03));
    checks.push(GoldenCheck::new(
        "pod/ooo/bandwidth_gbps",
        ooo.bandwidth_gbps,
        9.2,
        0.10,
    ));
    let io = PodConfig::new(CoreKind::InOrder, 32, 2.0, Interconnect::Crossbar).metrics();
    checks.push(GoldenCheck::new("pod/io/area_mm2", io.area_mm2, 54.2, 0.02));
    checks.push(GoldenCheck::new("pod/io/power_w", io.power_w, 18.0, 0.05));

    // Table 3.2: the scale-out reference chips.
    for (label, kind, node, pd, cores, channels) in [
        (
            "n40/ooo",
            CoreKind::OutOfOrder,
            TechnologyNode::N40,
            0.106,
            32u32,
            3u32,
        ),
        (
            "n40/io",
            CoreKind::InOrder,
            TechnologyNode::N40,
            0.185,
            96,
            6,
        ),
        (
            "n20/ooo",
            CoreKind::OutOfOrder,
            TechnologyNode::N20,
            0.385,
            112,
            4,
        ),
        (
            "n20/io",
            CoreKind::InOrder,
            TechnologyNode::N20,
            0.522,
            192,
            6,
        ),
    ] {
        let c = reference_chip(DesignKind::ScaleOut(kind), node);
        checks.push(GoldenCheck::new(
            format!("tab3.2/{label}/pd"),
            c.performance_density,
            pd,
            0.05,
        ));
        checks.push(GoldenCheck::new(
            format!("tab3.2/{label}/cores"),
            f64::from(c.cores),
            f64::from(cores),
            0.0,
        ));
        checks.push(GoldenCheck::new(
            format!("tab3.2/{label}/channels"),
            f64::from(c.memory_channels),
            f64::from(channels),
            0.0,
        ));
    }

    // Fig 4.7: NOC fabric areas.
    for (kind, golden) in [
        (TopologyKind::Mesh, 3.24),
        (TopologyKind::FlattenedButterfly, 29.2),
        (TopologyKind::NocOut, 2.89),
    ] {
        let cfg = NocConfig::pod_64(kind);
        let area = NocAreaBreakdown::of(&cfg.build_topology(), cfg.link_bits).total_mm2();
        checks.push(GoldenCheck::new(
            format!("fig4.7/{kind:?}/mm2"),
            area,
            golden,
            0.05,
        ));
    }

    // Table 5.1: chip prices.
    checks.push(GoldenCheck::new(
        "tab5.1/price_158mm2",
        estimated_price_usd(158.6, 200_000.0),
        312.0,
        0.03,
    ));
    checks.push(GoldenCheck::new(
        "tab5.1/price_263mm2",
        estimated_price_usd(263.3, 200_000.0),
        365.0,
        0.03,
    ));

    // Chapter 5: datacenter headlines.
    let params = TcoParams::thesis();
    let conv = Datacenter::for_design(DesignKind::Conventional, &params, 64);
    let one_pod = Datacenter::for_design(DesignKind::OnePod(CoreKind::OutOfOrder), &params, 64);
    let sop_io = Datacenter::for_design(DesignKind::ScaleOut(CoreKind::InOrder), &params, 64);
    checks.push(GoldenCheck::new(
        "dc/1pod_perf_gain",
        one_pod.performance / conv.performance,
        4.47,
        0.05,
    ));
    checks.push(GoldenCheck::new(
        "dc/sop_io_perf_per_tco_gain",
        sop_io.perf_per_tco() / conv.perf_per_tco(),
        7.7,
        0.08,
    ));

    checks
}

/// Serializes checks as `[{name, value, golden, tol, ok}, ...]`.
pub fn checks_json(checks: &[GoldenCheck]) -> Json {
    Json::Arr(
        checks
            .iter()
            .map(|c| {
                Json::object()
                    .with("name", c.name.as_str())
                    .with("value", c.value)
                    .with("golden", c.golden)
                    .with("tol", c.tol)
                    .with("ok", c.ok())
            })
            .collect(),
    )
}

/// Deterministic 1-in-N transaction sampling period for the sample pod
/// window. Sampling (rather than tracing everything) keeps the report
/// window cheap while still populating every `sim.txn.*` stage.
pub const TXN_SAMPLE_EVERY: u64 = 4;

/// Runs one 64-core NOC-Out pod window and returns its metric registry —
/// the `sim.llc.*`, `sim.l1.*`, `noc.*`, `mem.*`, and `sim.txn.*` keys
/// that give a report's `metrics` block real simulation content. The
/// window runs with transaction tracing armed at
/// [`TXN_SAMPLE_EVERY`], so the registry carries the per-stage causal
/// latency histograms (and stays bit-deterministic: sampling is by
/// issue-order id, independent of worker count or engine).
pub fn pod_sample_metrics(quick: bool) -> Registry {
    let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut);
    let (warm, measure) = if quick {
        (1_000, 3_000)
    } else {
        (4_000, 12_000)
    };
    let mut machine = Machine::new(cfg);
    machine.enable_txn_tracing(TXN_SAMPLE_EVERY);
    machine.run_window(warm, measure).metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_checks_all_pass_on_the_shipped_calibration() {
        let checks = golden_checks();
        assert!(
            checks.len() >= 20,
            "expected a broad sweep, got {}",
            checks.len()
        );
        let failing: Vec<&GoldenCheck> = checks.iter().filter(|c| !c.ok()).collect();
        assert!(failing.is_empty(), "failing golden checks: {failing:?}");
    }

    #[test]
    fn pod_sample_metrics_carries_consistent_txn_breakdown() {
        let metrics = pod_sample_metrics(true);
        let b = sop_obs::TxnBreakdown::from_registry(&metrics).expect("tracing armed");
        assert!(b.total.count > 0);
        assert!(b.consistent(), "{}", b.render());
        assert_eq!(
            metrics.gauge("sim.txn.sample_every"),
            Some(TXN_SAMPLE_EVERY as f64)
        );
    }

    #[test]
    fn checks_serialize_with_ok_flags() {
        let checks = vec![GoldenCheck::new("a", 1.0, 1.0, 0.0)];
        let j = checks_json(&checks);
        let row = &j.as_arr().expect("array")[0];
        assert_eq!(row.get("ok"), Some(&Json::Bool(true)));
    }
}
