//! Graceful-degradation sweep: pod performance vs fraction of failed
//! routers.
//!
//! The thesis sizes pods for peak performance density; this sweep asks
//! the robustness question the other direction — how much of a pod's
//! throughput survives k dead routers? Victims are picked by a seeded
//! draw over the fabric ([`sop_fault::FaultPlan::seeded_router_deaths`])
//! so damage levels nest: the k=4 victim set contains the k=2 set, and
//! the curve is monotone by construction rather than by luck. A dead
//! router takes its co-located cores and LLC slice with it; the
//! surviving machine reroutes, remaps banks, and keeps serving.
//!
//! The resulting curve (relative performance vs failed fraction) is the
//! input to [`sop_tco`]'s availability-derated capacity model: a
//! datacenter that keeps running degraded pods instead of draining them
//! retains the integral under this curve.

use crate::points::{sim_points, SimPointSpec, SpecFaults};
use sop_exec::Exec;
use sop_noc::TopologyKind;
use sop_obs::Json;
use sop_sim::{HaltReason, Machine, SimConfig};
use sop_workloads::Workload;

/// Victim-selection seed for the canonical sweep. Chosen so the deepest
/// damage level leaves the mesh connected (a partitioned pod is a valid
/// outcome, but the canonical curve should show *degradation*, not
/// death).
pub const SWEEP_SEED: u64 = 4;

/// Dead-router counts swept, shallow to deep. Capped at 4 of the 16
/// routers: the canonical seed keeps the mesh connected through k=4 and
/// partitions at k=5, and the canonical curve should end degraded, not
/// dead.
pub const DAMAGE_LEVELS: [u32; 5] = [0, 1, 2, 3, 4];

/// One damage level of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationRow {
    /// Routers killed at cycle 0.
    pub dead_routers: u32,
    /// Fraction of the fabric's routers that are dead.
    pub failed_fraction: f64,
    /// Aggregate IPC of the surviving machine.
    pub aggregate_ipc: f64,
    /// Throughput relative to the healthy machine (1.0 at zero damage;
    /// 0.0 if the machine halted structurally).
    pub relative_performance: f64,
    /// Structured halt, if the damage severed the machine.
    pub halted: Option<HaltReason>,
}

impl DegradationRow {
    /// Report form.
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .with("dead_routers", self.dead_routers)
            .with("failed_fraction", self.failed_fraction)
            .with("aggregate_ipc", self.aggregate_ipc)
            .with("relative_performance", self.relative_performance);
        match self.halted {
            Some(h) => doc.with("halted", h.key()),
            None => doc,
        }
    }
}

/// The sweep's machine: the chapter 3 validation mesh (16 threads on a
/// 4x4 fabric), where a single router is a meaningful 1/16th of the
/// machine. `(spec for k dead routers, router universe)`.
fn sweep_spec(dead: u32, quick: bool) -> SimPointSpec {
    let (warm, measure) = if quick {
        (1_000, 3_000)
    } else {
        (4_000, 10_000)
    };
    SimPointSpec::Validation {
        workload: Workload::WebSearch,
        cores: 16,
        topology: TopologyKind::Mesh,
        warm,
        measure,
        faults: (dead > 0).then_some(SpecFaults {
            seed: SWEEP_SEED,
            dead,
            cycle: 0,
        }),
    }
}

/// Routers in the sweep machine's fabric (the denominator of
/// `failed_fraction`).
fn router_universe() -> u32 {
    Machine::new(SimConfig::validation(
        Workload::WebSearch,
        16,
        TopologyKind::Mesh,
    ))
    .router_count()
}

/// Runs the sweep on `exec`: every damage level is one cacheable
/// simulation point, batched as the `degradation` campaign.
pub fn sweep_on(exec: &Exec, quick: bool) -> Vec<DegradationRow> {
    let specs: Vec<SimPointSpec> = DAMAGE_LEVELS
        .iter()
        .map(|&k| sweep_spec(k, quick))
        .collect();
    let points = sim_points(exec, "degradation", &specs);
    let routers = router_universe();
    let healthy = points[0].aggregate_ipc;
    DAMAGE_LEVELS
        .iter()
        .zip(&points)
        .map(|(&k, p)| DegradationRow {
            dead_routers: k,
            failed_fraction: f64::from(k) / f64::from(routers),
            aggregate_ipc: p.aggregate_ipc,
            relative_performance: if p.halted.is_some() {
                0.0
            } else {
                p.aggregate_ipc / healthy
            },
            halted: p.halted,
        })
        .collect()
}

/// [`sweep_on`] without an engine.
pub fn sweep(quick: bool) -> Vec<DegradationRow> {
    sweep_on(&Exec::sequential(), quick)
}

/// Prints the sweep as a table.
pub fn print_sweep_on(exec: &Exec, quick: bool) {
    println!("Degradation sweep: WebSearch on the 4x4 validation mesh");
    println!("  dead  failed%  agg IPC  relative");
    for r in sweep_on(exec, quick) {
        let tail = match r.halted {
            Some(h) => format!("  [{}]", h.key()),
            None => String::new(),
        };
        println!(
            "  {:>4}  {:>6.1}%  {:>7.3}  {:>7.4}{tail}",
            r.dead_routers,
            r.failed_fraction * 100.0,
            r.aggregate_ipc,
            r.relative_performance,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_monotone_and_normalised() {
        let rows = sweep(true);
        assert_eq!(rows.len(), DAMAGE_LEVELS.len());
        assert_eq!(rows[0].relative_performance, 1.0);
        assert_eq!(rows[0].halted, None);
        for pair in rows.windows(2) {
            assert!(
                pair[1].relative_performance <= pair[0].relative_performance,
                "more damage must not add throughput: {pair:?}"
            );
            assert!(pair[1].failed_fraction > pair[0].failed_fraction);
        }
        // The canonical seed degrades without severing the fabric.
        assert!(rows.iter().all(|r| r.halted.is_none()), "{rows:?}");
        assert!(rows.last().expect("rows").relative_performance > 0.0);
    }

    #[test]
    fn rows_serialize_halts_only_when_present() {
        let healthy = DegradationRow {
            dead_routers: 0,
            failed_fraction: 0.0,
            aggregate_ipc: 6.0,
            relative_performance: 1.0,
            halted: None,
        };
        assert!(healthy.to_json().get("halted").is_none());
        let severed = DegradationRow {
            halted: Some(HaltReason::Partition),
            ..healthy
        };
        assert_eq!(
            severed.to_json().get("halted").and_then(Json::as_str),
            Some("partition")
        );
    }
}
