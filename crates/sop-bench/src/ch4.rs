//! Chapter 4: the NOC-Out pod microarchitecture (Figs 4.3, 4.6–4.8,
//! Table 4.1, §4.4.4 power).

use crate::geomean;
use crate::points::{sim_points, SimPointSpec};
use sop_exec::Exec;
use sop_noc::{NocAreaBreakdown, NocConfig, NocPowerEstimate, TopologyKind};
use sop_sim::{Machine, SimConfig, SimResult};
use sop_workloads::Workload;

/// The fabrics compared in chapter 4.
pub const FABRICS: [TopologyKind; 3] = [
    TopologyKind::Mesh,
    TopologyKind::FlattenedButterfly,
    TopologyKind::NocOut,
];

/// Runs the 64-core pod for one workload/fabric (Fig 4.6 machinery).
pub fn run_pod(
    workload: Workload,
    topology: TopologyKind,
    link_bits: u32,
    quick: bool,
) -> SimResult {
    let mut cfg = SimConfig::pod_64(workload, topology);
    cfg.noc = cfg.noc.with_link_bits(link_bits);
    let (warm, measure) = if quick {
        (2_000, 4_000)
    } else {
        (8_000, 16_000)
    };
    Machine::new(cfg).run(warm, measure)
}

/// The spec equivalent of [`run_pod`], for scheduling through the
/// execution engine.
pub fn pod_spec(
    workload: Workload,
    topology: TopologyKind,
    link_bits: u32,
    quick: bool,
) -> SimPointSpec {
    let (warm, measure) = if quick {
        (2_000, 4_000)
    } else {
        (8_000, 16_000)
    };
    SimPointSpec::Pod64 {
        workload,
        topology,
        link_bits,
        llc_tiles: None,
        warm,
        measure,
        faults: None,
    }
}

/// Fig 4.3: fraction of LLC accesses that trigger a snoop, per workload.
pub fn fig4_3(quick: bool) -> Vec<(Workload, f64)> {
    fig4_3_on(&Exec::sequential(), quick)
}

/// [`fig4_3`] with the seven pod simulations batched on `exec`.
pub fn fig4_3_on(exec: &Exec, quick: bool) -> Vec<(Workload, f64)> {
    let specs: Vec<SimPointSpec> = Workload::ALL
        .iter()
        .map(|&w| pod_spec(w, TopologyKind::Mesh, 128, quick))
        .collect();
    let points = sim_points(exec, "fig4.3", &specs);
    Workload::ALL
        .iter()
        .zip(points)
        .map(|(&w, p)| (w, p.snoop_fraction))
        .collect()
}

/// Prints Fig 4.3.
pub fn print_fig4_3(quick: bool) {
    print_fig4_3_on(&Exec::sequential(), quick);
}

/// [`print_fig4_3`] on `exec`.
pub fn print_fig4_3_on(exec: &Exec, quick: bool) {
    println!("Fig 4.3 — % of LLC accesses triggering a snoop (64-core pod)");
    let rows = fig4_3_on(exec, quick);
    for (w, f) in &rows {
        println!("  {:16} {:.1}%", w.label(), f * 100.0);
    }
    let mean = rows.iter().map(|(_, f)| f).sum::<f64>() / rows.len() as f64;
    println!("  {:16} {:.1}%  (thesis mean: 2.7%)", "Mean", mean * 100.0);
}

/// Fig 4.6 (or 4.8 with squeezed links): per-workload pod performance of
/// each fabric, normalised to the mesh.
pub fn noc_performance(link_bits: [u32; 3], quick: bool) -> Vec<(Workload, [f64; 3])> {
    noc_performance_on(&Exec::sequential(), link_bits, quick)
}

/// [`noc_performance`] with all 21 pod simulations batched on `exec`.
pub fn noc_performance_on(
    exec: &Exec,
    link_bits: [u32; 3],
    quick: bool,
) -> Vec<(Workload, [f64; 3])> {
    let specs: Vec<SimPointSpec> = Workload::ALL
        .iter()
        .flat_map(|&w| (0..3).map(move |i| pod_spec(w, FABRICS[i], link_bits[i], quick)))
        .collect();
    let points = sim_points(exec, "fig4.6", &specs);
    Workload::ALL
        .iter()
        .zip(points.chunks_exact(3))
        .map(|(&w, fabric)| {
            let mesh = fabric[0].aggregate_ipc;
            let fb = fabric[1].aggregate_ipc;
            let no = fabric[2].aggregate_ipc;
            (w, [1.0, fb / mesh, no / mesh])
        })
        .collect()
}

/// Prints Fig 4.6 (full-width links).
pub fn print_fig4_6(quick: bool) {
    print_fig4_6_on(&Exec::sequential(), quick);
}

/// [`print_fig4_6`] on `exec`.
pub fn print_fig4_6_on(exec: &Exec, quick: bool) {
    println!("Fig 4.6 — pod performance normalised to mesh (128-bit links)");
    print_noc_rows(&noc_performance_on(exec, [128, 128, 128], quick));
}

/// Link widths at which each fabric matches NOC-Out's area (Fig 4.8).
pub fn equal_area_widths() -> [u32; 3] {
    let target = NocAreaBreakdown::of(
        &NocConfig::pod_64(TopologyKind::NocOut).build_topology(),
        128,
    )
    .total_mm2();
    let squeeze = |kind: TopologyKind| {
        let topo = NocConfig::pod_64(kind).build_topology();
        (8..=128)
            .rev()
            .find(|&bits| NocAreaBreakdown::of(&topo, bits).total_mm2() <= target)
            .unwrap_or(8)
    };
    [
        squeeze(TopologyKind::Mesh),
        squeeze(TopologyKind::FlattenedButterfly),
        128,
    ]
}

/// Prints Fig 4.8 (equal-area links).
pub fn print_fig4_8(quick: bool) {
    print_fig4_8_on(&Exec::sequential(), quick);
}

/// [`print_fig4_8`] on `exec`.
pub fn print_fig4_8_on(exec: &Exec, quick: bool) {
    let widths = equal_area_widths();
    println!("Fig 4.8 — pod performance normalised to mesh under NOC-Out's area budget");
    println!(
        "  equal-area link widths: mesh {}b, fbfly {}b, NOC-Out {}b",
        widths[0], widths[1], widths[2]
    );
    print_noc_rows(&noc_performance_on(exec, widths, quick));
}

fn print_noc_rows(rows: &[(Workload, [f64; 3])]) {
    println!(
        "  {:16} {:>7} {:>7} {:>7}",
        "workload", "mesh", "fbfly", "nocout"
    );
    for (w, r) in rows {
        println!(
            "  {:16} {:>7.3} {:>7.3} {:>7.3}",
            w.label(),
            r[0],
            r[1],
            r[2]
        );
    }
    let gm = |i: usize| geomean(&rows.iter().map(|(_, r)| r[i]).collect::<Vec<_>>());
    println!(
        "  {:16} {:>7.3} {:>7.3} {:>7.3}",
        "GMean",
        gm(0),
        gm(1),
        gm(2)
    );
}

/// Prints Fig 4.7: the NOC area breakdown per fabric.
pub fn print_fig4_7() {
    println!("Fig 4.7 — NOC area breakdown at 32nm (mm2)");
    println!(
        "  {:22} {:>7} {:>8} {:>9} {:>7}",
        "fabric", "links", "buffers", "crossbars", "total"
    );
    for kind in FABRICS {
        let cfg = NocConfig::pod_64(kind);
        let a = NocAreaBreakdown::of(&cfg.build_topology(), cfg.link_bits);
        println!(
            "  {:22} {:>7.2} {:>8.2} {:>9.2} {:>7.2}",
            format!("{kind:?}"),
            a.links_mm2,
            a.buffers_mm2,
            a.crossbars_mm2,
            a.total_mm2()
        );
    }
}

/// §4.4.4: mean NOC power per fabric, averaged across workloads.
pub fn fig4_9_power(quick: bool) -> Vec<(TopologyKind, f64)> {
    fig4_9_power_on(&Exec::sequential(), quick)
}

/// [`fig4_9_power`] with all 21 pod simulations batched on `exec`.
pub fn fig4_9_power_on(exec: &Exec, quick: bool) -> Vec<(TopologyKind, f64)> {
    let (warm, measure) = if quick {
        (1_000, 3_000)
    } else {
        (4_000, 12_000)
    };
    let specs: Vec<SimPointSpec> = FABRICS
        .iter()
        .flat_map(|&kind| {
            Workload::ALL.iter().map(move |&w| SimPointSpec::Pod64 {
                workload: w,
                topology: kind,
                link_bits: 128,
                llc_tiles: None,
                warm,
                measure,
                faults: None,
            })
        })
        .collect();
    let points = sim_points(exec, "fig4.9", &specs);
    FABRICS
        .iter()
        .zip(points.chunks_exact(Workload::ALL.len()))
        .map(|(&kind, fabric)| {
            let topo = NocConfig::pod_64(kind).with_link_bits(128).build_topology();
            let total: f64 = fabric
                .iter()
                .map(|r| {
                    let counters = sop_noc::sim::TrafficCounters {
                        flit_hops: r.noc_flit_hops,
                        flit_mm: r.noc_flit_mm,
                        ..Default::default()
                    };
                    NocPowerEstimate::of(&topo, &counters, measure, 2.0, 128).total_w()
                })
                .sum();
            (kind, total / Workload::ALL.len() as f64)
        })
        .collect()
}

/// Prints the §4.4.4 power analysis.
pub fn print_fig4_9_power(quick: bool) {
    print_fig4_9_power_on(&Exec::sequential(), quick);
}

/// [`print_fig4_9_power`] on `exec`.
pub fn print_fig4_9_power_on(exec: &Exec, quick: bool) {
    println!("§4.4.4 — NOC power (W) averaged across workloads");
    for (kind, mean) in fig4_9_power_on(exec, quick) {
        println!("  {:22} {:.2} W", format!("{kind:?}"), mean);
    }
}

/// Prints the §4.5.1 scalability discussion: NOC-Out grown to 128 and
/// 256 cores via concentration, express links, and a 2-D LLC butterfly.
pub fn print_sec4_5() {
    use sop_noc::{NocAreaBreakdown, ScaledNocOut, Topology};
    println!("§4.5.1 — scaling NOC-Out past 64 cores");
    println!(
        "  {:28} {:>7} {:>10} {:>9}",
        "organization", "cores", "mean lat", "NOC mm2"
    );
    let base = Topology::noc_out(64, 8, 1.82);
    let mut sum = 0u64;
    let mut count = 0u64;
    for &c in &base.core_nodes {
        for &l in &base.llc_nodes {
            sum += u64::from(base.zero_load_latency(c, l));
            count += 1;
        }
    }
    println!(
        "  {:28} {:>7} {:>10.1} {:>9.2}",
        "baseline (ch. 4)",
        64,
        sum as f64 / count as f64,
        NocAreaBreakdown::of(&base, 128).total_mm2()
    );
    for (label, cfg) in [
        ("concentration x2", ScaledNocOut::concentrated_128()),
        ("conc. + express + 2D LLC", ScaledNocOut::express_256()),
    ] {
        let topo = cfg.build();
        println!(
            "  {:28} {:>7} {:>10.1} {:>9.2}",
            label,
            cfg.cores,
            cfg.mean_core_to_llc_latency(),
            NocAreaBreakdown::of(&topo, 128).total_mm2()
        );
    }
    println!("  -> 4x the cores at sub-2x latency and a fraction of the cost");
    println!("     of widening a mesh or butterfly to 256 tiles.");
}

/// Prints Table 4.1's headline parameters.
pub fn print_tab4_1() {
    println!("Table 4.1 — 64-core pod evaluation parameters (32nm, 2GHz)");
    println!("  64 OoO cores (A15-like, 2.9mm2), 8MB NUCA LLC (3.2mm2/MB),");
    println!("  4 DDR3-1667 channels, 64B lines");
    for kind in FABRICS {
        let cfg = NocConfig::pod_64(kind);
        println!(
            "  {:22} {} LLC tiles, {}-bit links, {} flits/VC",
            format!("{kind:?}"),
            cfg.llc_tiles,
            cfg.link_bits,
            cfg.vc_depth
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_area_widths_squeeze_the_butterfly_hardest() {
        let [mesh, fb, no] = equal_area_widths();
        assert_eq!(no, 128);
        assert!(fb < mesh, "fbfly {fb} vs mesh {mesh}");
        assert!(fb <= 24, "fbfly should lose ~7x width, got {fb}");
    }

    #[test]
    fn fig4_6_nocout_beats_mesh_on_average() {
        let rows = noc_performance([128, 128, 128], true);
        let gm: f64 = geomean(&rows.iter().map(|(_, r)| r[2]).collect::<Vec<_>>());
        assert!(gm > 1.02, "NOC-Out gmean vs mesh {gm}");
    }

    #[test]
    fn fig4_3_snoops_stay_rare() {
        let rows = fig4_3(true);
        let mean = rows.iter().map(|(_, f)| f).sum::<f64>() / rows.len() as f64;
        assert!(mean < 0.10, "mean snoop fraction {mean}");
    }
}
