//! Chapter 6: Scale-Out Processors in the post-Moore era (Figs 6.4–6.7,
//! Tables 6.1/6.2).

use sop_3d::{compose_3d, sweep_3d, Pod3d, StackStrategy};
use sop_exec::Exec;
use sop_tech::CoreKind;

/// Core counts swept in Figs 6.4/6.6.
pub const CORE_SWEEP: [u32; 9] = [4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// LLC capacities swept in Figs 6.4/6.6.
pub const LLC_SWEEP: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];

/// Prints Fig 6.4 (OoO) or Fig 6.6 (in-order): PD3D sweeps per die count.
pub fn print_pd3d_sweep(kind: CoreKind) {
    print_pd3d_sweep_on(&Exec::sequential(), kind);
}

/// [`print_pd3d_sweep`] with one worker task per (dies, LLC) row; the
/// rows are computed first and printed in order.
pub fn print_pd3d_sweep_on(exec: &Exec, kind: CoreKind) {
    let fig = if kind == CoreKind::OutOfOrder {
        "6.4"
    } else {
        "6.6"
    };
    let combos: Vec<(u32, f64)> = [1u32, 2, 4]
        .iter()
        .flat_map(|&dies| LLC_SWEEP.iter().map(move |&mb| (dies, mb)))
        .collect();
    let rows = exec.map(combos.clone(), |(dies, mb)| {
        sweep_3d(kind, dies, &CORE_SWEEP, &[mb])
            .iter()
            .map(|p| format!("{}c:{:.4}", p.cores, p.pd3d))
            .collect::<Vec<String>>()
    });
    println!("Fig {fig} — volume-normalised PD, {kind:?} cores, 1/2/4 dies");
    let mut current_dies = 0;
    for ((dies, mb), row) in combos.into_iter().zip(rows) {
        if dies != current_dies {
            current_dies = dies;
            println!("  == {dies} die(s) ==");
        }
        println!("    {mb}MB  {}", row.join(" "));
    }
}

/// The single-die base pod chapter 6 derives for each core type. Our
/// calibrated sweep lands on the thesis' 32-core/2MB (OoO) and
/// 64-core/2MB (in-order) bases.
pub fn base_pod(kind: CoreKind) -> (u32, f64) {
    match kind {
        CoreKind::OutOfOrder | CoreKind::Conventional => (32, 2.0),
        CoreKind::InOrder => (64, 2.0),
    }
}

/// Prints Fig 6.5 (OoO) or Fig 6.7 (in-order): fixed-pod vs
/// fixed-distance strategies across die counts.
pub fn print_strategy_comparison(kind: CoreKind) {
    let (cores, mb) = base_pod(kind);
    let fig = if kind == CoreKind::OutOfOrder {
        "6.5"
    } else {
        "6.7"
    };
    let max_dies = if kind == CoreKind::InOrder { 3 } else { 4 };
    println!("Fig {fig} — fixed-pod vs fixed-distance, base {cores}c/{mb}MB");
    for dies in 1..=max_dies {
        for strategy in [StackStrategy::FixedPod, StackStrategy::FixedDistance] {
            if dies == 1 && strategy == StackStrategy::FixedDistance {
                continue; // identical to fixed-pod at one die
            }
            let pod = Pod3d::new(kind, cores, mb, dies, strategy);
            let m = pod.metrics();
            println!(
                "  L={dies} {:14} {:>4}c/{:>4.1}MB  PD3D {:.4}",
                format!("{strategy:?}"),
                pod.total_cores(),
                pod.total_llc_mb(),
                m.performance_density_3d
            );
        }
    }
}

/// Prints Table 6.2: 2D and 3D Scale-Out Processor specifications.
pub fn print_tab6_2() {
    println!("Table 6.2 — 2D and 3D Scale-Out Processors (250W, DDR4)");
    println!(
        "  {:10} {:>4} {:14} {:>5} {:>10} {:>4} {:>8}",
        "core", "dies", "strategy", "pods", "pod config", "MCs", "PD3D"
    );
    for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        let (cores, mb) = base_pod(kind);
        let max_dies: &[u32] = if kind == CoreKind::InOrder {
            &[1, 2, 3]
        } else {
            &[1, 2, 4]
        };
        for &dies in max_dies {
            for strategy in [StackStrategy::FixedPod, StackStrategy::FixedDistance] {
                if dies == 1 && strategy == StackStrategy::FixedDistance {
                    continue;
                }
                let pod = Pod3d::new(kind, cores, mb, dies, strategy);
                let chip = compose_3d(&pod);
                println!(
                    "  {:10} {:>4} {:14} {:>5} {:>6}c/{:>3.0}MB {:>4} {:>8.4}",
                    kind.label(),
                    dies,
                    format!("{strategy:?}"),
                    chip.pods,
                    pod.total_cores(),
                    pod.total_llc_mb(),
                    chip.memory_channels,
                    chip.performance_density_3d
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch6;

    #[test]
    fn more_dies_never_hurt_the_best_config() {
        for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
            let best = |dies: u32| {
                sweep_3d(kind, dies, &CORE_SWEEP, &LLC_SWEEP)
                    .into_iter()
                    .map(|p| p.pd3d)
                    .fold(f64::MIN, f64::max)
            };
            assert!(best(2) >= best(1) * 0.995, "{kind:?}");
            assert!(best(4) >= best(2) * 0.995, "{kind:?}");
        }
    }

    #[test]
    fn base_pods_follow_chapter_6() {
        assert_eq!(ch6::base_pod(CoreKind::OutOfOrder), (32, 2.0));
        assert_eq!(ch6::base_pod(CoreKind::InOrder), (64, 2.0));
    }

    #[test]
    fn stacking_strategies_both_beat_the_2d_pod() {
        // Table 6.2's point: every 3D variant has higher PD3D than the 2D
        // pod of the same core type.
        for kind in [CoreKind::OutOfOrder, CoreKind::InOrder] {
            let (cores, mb) = base_pod(kind);
            let flat = Pod3d::new(kind, cores, mb, 1, StackStrategy::FixedPod)
                .metrics()
                .performance_density_3d;
            for strategy in [StackStrategy::FixedPod, StackStrategy::FixedDistance] {
                let stacked = Pod3d::new(kind, cores, mb, 2, strategy)
                    .metrics()
                    .performance_density_3d;
                assert!(stacked > flat * 0.99, "{kind:?} {strategy:?}");
            }
        }
    }
}
