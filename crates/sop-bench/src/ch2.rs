//! Chapter 2: the case for Scale-Out Processors (Figs 2.1–2.3, Tables
//! 2.1–2.4).

use crate::fmt_series;
use sop_core::designs::{reference_chip, DesignKind};
use sop_exec::Exec;
use sop_model::{DesignPoint, Interconnect};
use sop_tech::{CoreKind, LlcParams, MemoryInterface, SocParams, TechnologyNode};
use sop_workloads::Workload;

/// The LLC capacities swept in Fig 2.2.
pub const FIG2_2_CAPACITIES: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Fig 2.1: application IPC of the aggressive 4-wide core per workload.
pub fn fig2_1() -> Vec<(Workload, f64)> {
    Workload::ALL
        .iter()
        .map(|&w| {
            let ipc = DesignPoint::new(CoreKind::Conventional, 4, 8.0, Interconnect::Ideal)
                .evaluate(w)
                .per_core_ipc;
            (w, ipc)
        })
        .collect()
}

/// Prints Fig 2.1.
pub fn print_fig2_1() {
    println!("Fig 2.1 — application IPC, aggressive OoO core (max 4)");
    for (w, ipc) in fig2_1() {
        println!("  {:16} {ipc:.2}", w.label());
    }
}

/// Fig 2.2: per-workload performance vs. LLC capacity, normalised to 1MB.
pub fn fig2_2() -> Vec<(Workload, Vec<f64>)> {
    fig2_2_on(&Exec::sequential())
}

/// [`fig2_2`] with one worker task per workload.
pub fn fig2_2_on(exec: &Exec) -> Vec<(Workload, Vec<f64>)> {
    exec.map(Workload::ALL.to_vec(), |w| {
        let at = |mb: f64| {
            DesignPoint::new(CoreKind::Conventional, 4, mb, Interconnect::Crossbar)
                .evaluate(w)
                .per_core_ipc
        };
        let base = at(1.0);
        (w, FIG2_2_CAPACITIES.iter().map(|&c| at(c) / base).collect())
    })
}

/// Prints Fig 2.2.
pub fn print_fig2_2() {
    println!("Fig 2.2 — 4-core performance vs LLC size (normalised to 1MB)");
    println!(
        "{:24} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", 1, 2, 4, 8, 16, 32
    );
    for (w, series) in fig2_2() {
        println!("  {}", fmt_series(w.label(), &series));
    }
}

/// Fig 2.3: per-core and aggregate performance vs. core count at 4MB,
/// under the ideal and mesh fabrics. Returns (cores, ideal, mesh) rows of
/// per-core IPC normalised to one core.
pub fn fig2_3() -> Vec<(u32, f64, f64)> {
    fig2_3_on(&Exec::sequential())
}

/// [`fig2_3`] with one worker task per core count.
pub fn fig2_3_on(exec: &Exec) -> Vec<(u32, f64, f64)> {
    let base_ideal =
        DesignPoint::new(CoreKind::OutOfOrder, 1, 4.0, Interconnect::Ideal).mean_per_core_ipc();
    let base_mesh =
        DesignPoint::new(CoreKind::OutOfOrder, 1, 4.0, Interconnect::Mesh).mean_per_core_ipc();
    exec.map(vec![1u32, 2, 4, 8, 16, 32, 64, 128, 256], |n| {
        let ideal =
            DesignPoint::new(CoreKind::OutOfOrder, n, 4.0, Interconnect::Ideal).mean_per_core_ipc();
        let mesh =
            DesignPoint::new(CoreKind::OutOfOrder, n, 4.0, Interconnect::Mesh).mean_per_core_ipc();
        (n, ideal / base_ideal, mesh / base_mesh)
    })
}

/// Prints Fig 2.3 (both panels).
pub fn print_fig2_3() {
    println!("Fig 2.3 — per-core perf (a) and aggregate perf (b) vs cores, 4MB LLC");
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>12}",
        "cores", "ideal/core", "mesh/core", "ideal agg", "mesh agg"
    );
    for (n, i, m) in fig2_3() {
        println!(
            "  {n:>6} {i:>12.3} {m:>12.3} {:>12.1} {:>12.1}",
            i * f64::from(n),
            m * f64::from(n)
        );
    }
}

/// Prints Tables 2.1/2.2: component areas, power, and system parameters.
pub fn print_tab2_1() {
    let node = TechnologyNode::N40;
    println!("Table 2.1 — component area and power at {node}");
    for kind in CoreKind::ALL {
        println!(
            "  {:14} {:6.1} mm2 {:6.2} W",
            kind.label(),
            kind.area_mm2(node),
            kind.power_w(node)
        );
    }
    let llc = LlcParams::at(node);
    println!(
        "  {:14} {:6.1} mm2/MB {:4.2} W/MB",
        "LLC (16-way)", llc.area_mm2_per_mb, llc.power_w_per_mb
    );
    let mem = MemoryInterface::at(node);
    println!(
        "  {:14} {:6.1} mm2 {:6.2} W ({} @ {:.1}GB/s useful)",
        "DDR interface",
        mem.area_mm2,
        mem.power_w,
        mem.gen,
        mem.useful_gbps()
    );
    let soc = SocParams::at(node);
    println!(
        "  {:14} {:6.1} mm2 {:6.2} W",
        "SoC components", soc.area_mm2, soc.power_w
    );
}

/// The designs of Tables 2.3/2.4, in row order.
pub fn table_2_designs() -> Vec<DesignKind> {
    let mut v = vec![DesignKind::Conventional];
    for k in [CoreKind::OutOfOrder, CoreKind::InOrder] {
        v.extend([
            DesignKind::Tiled(k),
            DesignKind::LlcOptimalTiled(k),
            DesignKind::LlcOptimalTiledIr(k),
            DesignKind::Ideal(k),
        ]);
    }
    v
}

/// Prints Table 2.3 (40nm) or Table 2.4 (20nm).
pub fn print_tab2_3(node: TechnologyNode) {
    let which = if node == TechnologyNode::N40 {
        "2.3"
    } else {
        "2.4"
    };
    println!("Table {which} — processor designs at {node}");
    println!(
        "  {:34} {:>6} {:>5} {:>6} {:>3} {:>7} {:>6} {:>6}",
        "design", "PD", "cores", "LLC", "MC", "die", "power", "P/W"
    );
    for d in table_2_designs() {
        let c = reference_chip(d, node);
        println!(
            "  {:34} {:>6.3} {:>5} {:>6.1} {:>3} {:>7.1} {:>6.1} {:>6.2}",
            c.label,
            c.performance_density,
            c.cores,
            c.llc_mb,
            c.memory_channels,
            c.die_mm2,
            c.power_w,
            c.perf_per_watt
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_1_only_media_streaming_is_below_one() {
        let rows = fig2_1();
        let below: Vec<_> = rows.iter().filter(|(_, ipc)| *ipc < 1.0).collect();
        assert!(below.len() <= 2, "too many sub-1 workloads: {below:?}");
        let min = rows
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert_eq!(min.0, Workload::MediaStreaming);
        assert!(min.1 < 1.0);
        // None reach half the 4-wide peak.
        assert!(rows.iter().all(|(_, ipc)| *ipc < 2.0));
    }

    #[test]
    fn fig2_2_mapreduce_c_gains_12_to_24_percent_at_16mb() {
        let rows = fig2_2();
        let (_, mrc) = rows
            .iter()
            .find(|(w, _)| *w == Workload::MapReduceC)
            .expect("present");
        let g16 = mrc[4];
        assert!((1.10..1.26).contains(&g16), "got {g16}");
        // 32MB is no better than 16MB.
        assert!(mrc[5] <= g16 + 1e-9);
    }

    #[test]
    fn fig2_3_mesh_degrades_much_faster_than_ideal() {
        let rows = fig2_3();
        let (_, i256, m256) = rows.last().copied().expect("non-empty");
        assert!(i256 > 0.8, "ideal fell to {i256}");
        assert!(m256 < 0.6, "mesh only fell to {m256}");
    }

    #[test]
    fn table_rosters_are_complete() {
        assert_eq!(table_2_designs().len(), 9);
    }
}
