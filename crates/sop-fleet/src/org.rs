//! Chip organizations and the server specs they induce.
//!
//! A [`ChipOrg`] names a pod recipe (core kind, cores per pod, LLC per
//! pod); [`ServerSpec::for_org`] composes it into a chip at the
//! chapter-5 node with `sop-core::compose_pods`, prices the die with
//! the thesis' cost model, fills a 1U server's power budget with
//! sockets via `sop-tco::Datacenter`, and converts aggregate IPC into
//! a request-serving capacity. The fleet simulator treats a server as
//! a fluid queue with that capacity; the org is what makes fleets of
//! different chip organizations (pod-count heterogeneity) comparable
//! on cost per sustained QPS.

use sop_core::chip::{compose_pods, ChipSpec, Composition};
use sop_core::pd::PodConfig;
use sop_model::Interconnect;
use sop_tco::price::THESIS_VOLUME;
use sop_tco::{estimated_price_usd, Datacenter, TcoParams, CHAPTER5_NODE};
use sop_tech::{ChipBudget, CoreKind};

/// How many requests per second one unit of aggregate IPC sustains.
///
/// A stand-in calibration constant: the thesis measures chips in
/// aggregate IPC over scale-out workloads, not queries; this maps one
/// IPC unit to 250 QPS of a memcached-class reference service so fleet
/// capacities land in a realistic range (roughly 10^4..10^5 QPS per
/// server). Every organization shares the constant, so cost-per-QPS
/// *ratios* between organizations — the quantity of interest — do not
/// depend on its exact value.
pub const QPS_PER_IPC: f64 = 250.0;

/// DRAM per 1U server, matching the chapter-5 TCO study default.
pub const SERVER_MEMORY_GB: u32 = 64;

/// A named pod recipe to build a fleet from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipOrg {
    /// Stable name used in specs, reports, and the CLI (`--org`).
    pub name: &'static str,
    /// Core microarchitecture of the pod.
    pub core: CoreKind,
    /// Cores per pod.
    pub pod_cores: u32,
    /// LLC capacity per pod in MB.
    pub pod_llc_mb: f64,
}

/// The organizations the fleet campaign compares: the thesis' preferred
/// pods for both core kinds (§3.4.2/§3.4.3), plus smaller- and
/// larger-than-preferred OoO pods to expose pod-count heterogeneity.
pub const ORGS: [ChipOrg; 4] = [
    ChipOrg {
        name: "scaleout-ooo",
        core: CoreKind::OutOfOrder,
        pod_cores: 16,
        pod_llc_mb: 4.0,
    },
    ChipOrg {
        name: "scaleout-io",
        core: CoreKind::InOrder,
        pod_cores: 32,
        pod_llc_mb: 2.0,
    },
    ChipOrg {
        name: "smallpod-ooo",
        core: CoreKind::OutOfOrder,
        pod_cores: 8,
        pod_llc_mb: 2.0,
    },
    ChipOrg {
        name: "bigpod-ooo",
        core: CoreKind::OutOfOrder,
        pod_cores: 32,
        pod_llc_mb: 8.0,
    },
];

/// Looks up an organization by its stable name.
pub fn org_by_name(name: &str) -> Option<&'static ChipOrg> {
    ORGS.iter().find(|o| o.name == name)
}

/// A fully costed server built from one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// The organization this server was built from.
    pub org: &'static str,
    /// The composed chip.
    pub chip: ChipSpec,
    /// Pods per socket the budgets admitted.
    pub pods_per_chip: u32,
    /// Sockets filling the 1U server's processor power budget.
    pub sockets: u32,
    /// Requests per second (= per tick) one healthy server sustains.
    pub capacity_qps: u64,
    /// Estimated unit price of one die.
    pub chip_price_usd: f64,
    /// Monthly TCO amortized over one server.
    pub monthly_cost_usd: f64,
}

impl ServerSpec {
    /// Composes, prices, and capacities a server for `org` at the
    /// chapter-5 node under the thesis' TCO parameters.
    ///
    /// # Panics
    ///
    /// Panics if the pod recipe cannot compose even one pod within the
    /// server chip budgets (a misconfigured [`ChipOrg`]).
    pub fn for_org(org: &'static ChipOrg) -> ServerSpec {
        let node = CHAPTER5_NODE;
        let pod = PodConfig::new(
            org.core,
            org.pod_cores,
            org.pod_llc_mb,
            Interconnect::Crossbar,
        )
        .at_node(node)
        .metrics();
        let chip = compose_pods(org.name, &pod, node, &ChipBudget::server_2d(node));
        let pods_per_chip = match chip.composition {
            Composition::Pods { count, .. } => count,
            Composition::Monolithic(_) => unreachable!("compose_pods yields pods"),
        };
        let price = estimated_price_usd(chip.die_mm2, THESIS_VOLUME);
        let dc = Datacenter::for_chip(chip.clone(), price, &TcoParams::thesis(), SERVER_MEMORY_GB);
        let capacity = f64::from(dc.sockets_per_server) * chip.aggregate_ipc * QPS_PER_IPC;
        ServerSpec {
            org: org.name,
            pods_per_chip,
            sockets: dc.sockets_per_server,
            capacity_qps: capacity.round() as u64,
            chip_price_usd: price,
            monthly_cost_usd: dc.monthly_cost_per_server_usd(),
            chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_org_composes_into_a_feasible_server() {
        for org in &ORGS {
            let s = ServerSpec::for_org(org);
            assert!(s.pods_per_chip >= 1, "{}: no pods", org.name);
            assert!(s.sockets >= 1, "{}: no sockets", org.name);
            assert!(s.capacity_qps > 0, "{}: no capacity", org.name);
            assert!(s.monthly_cost_usd > 0.0, "{}: free server", org.name);
            assert!(s.chip_price_usd > 0.0, "{}: free die", org.name);
        }
    }

    #[test]
    fn orgs_differ_in_pod_count() {
        // Pod-count heterogeneity: the small-pod org must pack more pods
        // per die than the big-pod org.
        let small = ServerSpec::for_org(org_by_name("smallpod-ooo").expect("known"));
        let big = ServerSpec::for_org(org_by_name("bigpod-ooo").expect("known"));
        assert!(
            small.pods_per_chip > big.pods_per_chip,
            "small {} vs big {}",
            small.pods_per_chip,
            big.pods_per_chip
        );
    }

    #[test]
    fn names_resolve_and_unknown_names_do_not() {
        for org in &ORGS {
            assert_eq!(org_by_name(org.name).map(|o| o.name), Some(org.name));
        }
        assert!(org_by_name("xeon-phi").is_none());
    }

    #[test]
    fn server_spec_is_deterministic() {
        let a = ServerSpec::for_org(&ORGS[0]);
        let b = ServerSpec::for_org(&ORGS[0]);
        assert_eq!(a, b);
    }
}
