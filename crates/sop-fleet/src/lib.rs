//! Deterministic event-driven simulation of a fleet of Scale-Out
//! Processor servers serving heavy traffic from millions of users.
//!
//! The thesis' TCO chapter (chapter 5) sizes chips against *static*
//! datacenter capacity: a 20MW facility, every server at peak, no
//! traffic, no failures. This crate extends that analysis to dynamic
//! load. A fleet of identical servers sits behind a load balancer;
//! each server's request capacity derives from its chip organization
//! (pod count and size through `sop-model`'s analytic IPC, composed by
//! `sop-core::compose_pods`), and its amortized monthly cost from
//! `sop-tco`. Seeded open-loop arrival traffic with diurnal and bursty
//! components ([`traffic`]) meets seeded per-server failure processes
//! ([`failure`], following the `sop-fault` plan idiom); an operator
//! policy — drain or derate, the two repair postures of the TCO derate
//! model — decides what a damaged server does until repair.
//!
//! Everything is deterministic: all randomness comes from the vendored
//! shim RNG with explicit per-stream seeds, time advances in integer
//! ticks (1 tick = 1 simulated second), queues are integer fluid
//! queues, and the load balancer splits arrivals with exact integer
//! largest-prefix arithmetic. Two runs of the same
//! [`SimParams`](sim::SimParams) are bit-identical regardless of host,
//! worker count, or cache state — which is what lets fleet runs be
//! pure, cacheable `sop-exec` jobs ([`point`]) and fleet reports be
//! diffed with `--tol 0`.
//!
//! The headline outputs, per chip organization × policy:
//! cost-per-sustained-QPS and the tail-latency-vs-utilization curve
//! (p50/p95/p99 per utilization decile), i.e. "what does a served
//! query cost, and what latency do users see as the fleet loads up".

pub mod failure;
pub mod org;
pub mod point;
pub mod sim;
pub mod traffic;

pub use failure::{FleetFault, FleetFaultPlan};
pub use org::{org_by_name, ChipOrg, ServerSpec, ORGS};
pub use point::{fleet_points, grid, FleetPointSpec};
pub use sim::{simulate, FleetOutcome, Policy, SimParams, WindowStats};
pub use traffic::TrafficModel;

use std::sync::atomic::{AtomicU64, Ordering};

static TICKS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Total simulated ticks (seconds) completed by fleet runs in this
/// process. The heartbeat cycle-counter hook reads this so `sop top`
/// can report simulated-hours per wall second for fleet campaigns.
/// Flushed once per completed run, i.e. exactly when the run's
/// `job_finish` heartbeat event is about to be written.
pub fn ticks_simulated() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Total server-step events processed by fleet runs in this process
/// (a server touched in a tick because it had arrivals or backlog).
/// The `fleet-quick` bench tier reports its delta as events/sec.
pub fn events_processed() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

pub(crate) fn flush_run_counters(ticks: u64, events: u64) {
    TICKS.fetch_add(ticks, Ordering::Relaxed);
    EVENTS.fetch_add(events, Ordering::Relaxed);
}

/// Derives an independent per-stream seed from a run seed and a stream
/// tag, so the traffic, burst, jitter, and per-server failure streams
/// never alias even though they share one user-facing `--seed`.
/// SplitMix64 finalizer over the combined value — the same mixer the
/// shim RNG seeds itself with, applied once more for stream separation.
pub(crate) fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_distinct_per_stream_and_seed() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            for stream in 0..8u64 {
                assert!(seen.insert(stream_seed(seed, stream)));
            }
        }
    }

    #[test]
    fn counters_accumulate() {
        let t0 = ticks_simulated();
        let e0 = events_processed();
        flush_run_counters(10, 3);
        assert!(ticks_simulated() >= t0 + 10);
        assert!(events_processed() >= e0 + 3);
    }
}
