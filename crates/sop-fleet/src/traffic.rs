//! Seeded open-loop arrival traffic: diurnal swing, bursts, jitter.
//!
//! Millions of users present as an open-loop arrival process — demand
//! does not slow down because the fleet is struggling. The offered rate
//! at tick `t` is
//!
//! ```text
//! rate(t) = peak_qps · diurnal(t) · burst(t) · jitter(t)
//! ```
//!
//! * `diurnal(t)` sweeps one full sinusoidal day over the run, from a
//!   trough of [`DIURNAL_TROUGH`] up to 1.0 at the crest, starting at
//!   the trough — so every run covers the whole utilization range and
//!   the tail-latency-vs-utilization curve has mass in every decile.
//! * `burst(t)` is a seeded renewal process of flash crowds: quiet gaps
//!   of 15–45 simulated minutes, then 1–5 minutes at 1.2–1.8× — which
//!   is what pushes utilization past 100% and exposes the drop/derate
//!   behavior of the admission policy.
//! * `jitter(t)` is ±3% per-tick noise so no two ticks are identical.
//!
//! All three draw from the vendored shim RNG on independent derived
//! streams ([`crate::stream_seed`]); nothing touches `std` randomness.
//! [`TrafficModel::rate_at`] consumes the jitter stream sequentially
//! and must be called exactly once per tick, in tick order — the
//! simulator's main loop is the only caller.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stream_seed;

/// Diurnal trough as a fraction of the crest.
pub const DIURNAL_TROUGH: f64 = 0.3;

const STREAM_BURST: u64 = 1;
const STREAM_JITTER: u64 = 2;

/// One flash crowd: `[start, end)` ticks at `amplitude`× demand.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Burst {
    start: u64,
    end: u64,
    amplitude: f64,
}

/// The arrival process for one fleet run.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    peak_qps: f64,
    period: u64,
    bursts: Vec<Burst>,
    next_burst: usize,
    jitter: SmallRng,
}

impl TrafficModel {
    /// Builds the process: `peak_qps` is the diurnal-crest offered rate
    /// (before bursts and jitter), `duration` the run length in ticks
    /// (also the diurnal period).
    pub fn new(seed: u64, peak_qps: f64, duration: u64) -> TrafficModel {
        let mut rng = SmallRng::seed_from_u64(stream_seed(seed, STREAM_BURST));
        let mut bursts = Vec::new();
        let mut t = 0u64;
        loop {
            t += rng.gen_range(900u64..2700); // 15–45 min quiet gap
            if t >= duration {
                break;
            }
            let len = rng.gen_range(60u64..300); // 1–5 min flash crowd
            let amplitude = rng.gen_range(1.2f64..1.8);
            bursts.push(Burst {
                start: t,
                end: (t + len).min(duration),
                amplitude,
            });
            t += len;
        }
        TrafficModel {
            peak_qps,
            period: duration.max(1),
            bursts,
            next_burst: 0,
            jitter: SmallRng::seed_from_u64(stream_seed(seed, STREAM_JITTER)),
        }
    }

    /// Number of seeded flash crowds in the run.
    pub fn burst_count(&self) -> usize {
        self.bursts.len()
    }

    /// Offered arrivals for tick `t`. Consumes one jitter draw; call
    /// once per tick in tick order.
    pub fn rate_at(&mut self, t: u64) -> u64 {
        // Start at the trough: sin(-π/2) = -1 ⇒ diurnal = DIURNAL_TROUGH.
        let phase = 2.0 * std::f64::consts::PI * t as f64 / self.period as f64
            - std::f64::consts::FRAC_PI_2;
        let diurnal = DIURNAL_TROUGH + (1.0 - DIURNAL_TROUGH) * (0.5 + 0.5 * phase.sin());
        while self.next_burst < self.bursts.len() && self.bursts[self.next_burst].end <= t {
            self.next_burst += 1;
        }
        let burst = match self.bursts.get(self.next_burst) {
            Some(b) if b.start <= t && t < b.end => b.amplitude,
            _ => 1.0,
        };
        let jitter = self.jitter.gen_range(0.97f64..1.03);
        (self.peak_qps * diurnal * burst * jitter).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(seed: u64, peak: f64, duration: u64) -> (u64, Vec<u64>) {
        let mut m = TrafficModel::new(seed, peak, duration);
        let rates: Vec<u64> = (0..duration).map(|t| m.rate_at(t)).collect();
        (rates.iter().sum(), rates)
    }

    #[test]
    fn same_seed_same_stream_different_seed_different() {
        let (a, ra) = total(7, 1000.0, 2000);
        let (b, rb) = total(7, 1000.0, 2000);
        let (c, _) = total(8, 1000.0, 2000);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_ne!(a, c, "distinct seeds should move total demand");
    }

    #[test]
    fn diurnal_shape_troughs_at_start_and_crests_midway() {
        let (_, rates) = total(3, 10_000.0, 7200);
        // Average the first and middle 5 minutes to wash out jitter and
        // bursts; crest demand must clearly dominate trough demand.
        let avg = |r: &[u64]| r.iter().sum::<u64>() as f64 / r.len() as f64;
        let trough = avg(&rates[..300]);
        let crest = avg(&rates[3450..3750]);
        assert!(
            crest > 2.0 * trough,
            "crest {crest:.0} vs trough {trough:.0}"
        );
    }

    #[test]
    fn bursts_exist_and_push_above_the_diurnal_envelope() {
        let m = TrafficModel::new(11, 10_000.0, 7200);
        assert!(m.burst_count() >= 1, "2h run should see a flash crowd");
        let (_, rates) = total(11, 10_000.0, 7200);
        // Jitter alone caps at 1.03×; anything beyond ~1.1× the envelope
        // must come from a burst.
        let over = rates
            .iter()
            .enumerate()
            .filter(|&(t, &r)| {
                let phase =
                    2.0 * std::f64::consts::PI * t as f64 / 7200.0 - std::f64::consts::FRAC_PI_2;
                let envelope = 10_000.0
                    * (DIURNAL_TROUGH + (1.0 - DIURNAL_TROUGH) * (0.5 + 0.5 * phase.sin()));
                r as f64 > envelope * 1.1
            })
            .count();
        assert!(over >= 60, "bursty ticks: {over}");
    }

    #[test]
    fn rates_are_finite_and_bounded() {
        let (_, rates) = total(5, 1000.0, 1000);
        for r in rates {
            assert!(r <= 2000, "rate {r} above 2x peak");
        }
    }
}
