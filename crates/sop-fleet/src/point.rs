//! Cacheable fleet points: one fleet run as a pure `sop-exec` job.
//!
//! Follows the `sop-bench` `SimPointSpec` idiom: a [`FleetPointSpec`]
//! names one run completely — organization, policy, fleet size, seed,
//! and every resolved simulation parameter — so its canonical JSON
//! form is a sound content-address for the result. Evaluation is a
//! pure function of the spec ([`crate::simulate`] is deterministic),
//! so the engine may cache, parallelize, and resume fleet campaigns
//! freely without changing a single byte of the report.
//!
//! The result row carries what the fleet report consumes: the costed
//! server ([`ServerSpec`]), run totals, overall p50/p95/p99, cost per
//! sustained QPS, and the tail-latency-vs-utilization curve (windows
//! bucketed by utilization decile with merged histograms).

use sop_exec::{Exec, Job};
use sop_obs::{Histogram, Json};

use crate::org::{org_by_name, ServerSpec, ORGS};
use crate::sim::{simulate, FleetOutcome, Policy, SimParams};

/// One fully-specified fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPointSpec {
    /// Organization name (must resolve via [`org_by_name`]).
    pub org: String,
    /// Damaged-server posture.
    pub policy: Policy,
    /// Fleet size.
    pub servers: u32,
    /// Run seed.
    pub seed: u64,
    /// Compressed two-hour day instead of a full one.
    pub quick: bool,
}

impl FleetPointSpec {
    /// Builds the spec for one org × policy cell.
    pub fn new(org: &str, policy: Policy, servers: u32, seed: u64, quick: bool) -> FleetPointSpec {
        FleetPointSpec {
            org: org.to_owned(),
            policy,
            servers,
            seed,
            quick,
        }
    }

    /// Resolves the costed server this spec's fleet is built from.
    ///
    /// # Panics
    ///
    /// Panics on an unknown organization name; the CLI and campaign
    /// validate names before building specs.
    pub fn server(&self) -> ServerSpec {
        let org = org_by_name(&self.org)
            .unwrap_or_else(|| panic!("unknown chip organization {:?}", self.org));
        ServerSpec::for_org(org)
    }

    /// The resolved simulation parameters.
    pub fn params(&self) -> SimParams {
        let per_server_qps = self.server().capacity_qps;
        if self.quick {
            SimParams::quick(self.servers, per_server_qps, self.policy, self.seed)
        } else {
            SimParams::standard(self.servers, per_server_qps, self.policy, self.seed)
        }
    }

    /// Unique human-readable job name.
    pub fn name(&self) -> String {
        format!(
            "fleet/{}/{}/{}s/s{}{}",
            self.org,
            self.policy.label(),
            self.servers,
            self.seed,
            if self.quick { "/quick" } else { "" }
        )
    }

    /// The spec's cache identity: every resolved parameter that
    /// influences the simulation, so a change to the quick/standard
    /// presets or to an organization's composed capacity re-keys the
    /// entry instead of serving a stale result.
    pub fn to_json(&self) -> Json {
        let p = self.params();
        Json::object()
            .with("kind", "fleet.point")
            .with("org", self.org.as_str())
            .with("policy", self.policy.label())
            .with("servers", self.servers)
            .with("seed", self.seed)
            .with("per_server_qps", p.per_server_qps)
            .with("duration_ticks", p.duration_ticks)
            .with("window_ticks", p.window_ticks)
            .with("peak_util", p.peak_util)
            .with("mtbf_ticks", p.mtbf_ticks)
            .with("mttr_ticks", p.mttr_ticks)
            .with("deadline_ms", p.deadline_ms)
            .with("service_ms", p.service_ms)
    }

    /// Runs the fleet and reduces it to a report row.
    pub fn evaluate(&self) -> Json {
        let server = self.server();
        let params = self.params();
        let outcome = simulate(&params);
        row(self, &server, &outcome)
    }
}

fn quantiles(hist: &Histogram) -> [(&'static str, Option<u64>); 3] {
    [
        ("p50_ms", hist.p50()),
        ("p95_ms", hist.p95()),
        ("p99_ms", hist.p99()),
    ]
}

fn with_quantiles(mut doc: Json, hist: &Histogram) -> Json {
    for (key, q) in quantiles(hist) {
        doc.insert(key, q.map_or(Json::Null, Json::UInt));
    }
    doc
}

/// Windows bucketed by offered-utilization decile (`util_pct` is the
/// decile floor in percent; everything at or past 110% pools in the
/// last bin), with merged latency histograms per bin.
fn curve(outcome: &FleetOutcome) -> Json {
    let nominal = outcome.params.nominal_capacity();
    const BINS: usize = 12;
    let mut hists: Vec<Histogram> = vec![Histogram::new(); BINS];
    let mut windows = [0u64; BINS];
    let mut offered = [0u64; BINS];
    let mut dropped = [0u64; BINS];
    for w in &outcome.windows {
        let bin = ((w.utilization(nominal) * 10.0) as usize).min(BINS - 1);
        hists[bin].merge(&w.hist);
        windows[bin] += 1;
        offered[bin] += w.offered;
        dropped[bin] += w.dropped;
    }
    Json::Arr(
        (0..BINS)
            .filter(|&b| windows[b] > 0)
            .map(|b| {
                let doc = Json::object()
                    .with("util_pct", (b as u64) * 10)
                    .with("windows", windows[b])
                    .with(
                        "drop_pct",
                        if offered[b] == 0 {
                            0.0
                        } else {
                            100.0 * dropped[b] as f64 / offered[b] as f64
                        },
                    );
                with_quantiles(doc, &hists[b])
            })
            .collect(),
    )
}

fn row(spec: &FleetPointSpec, server: &ServerSpec, outcome: &FleetOutcome) -> Json {
    let fleet_monthly = server.monthly_cost_usd * f64::from(spec.servers);
    let sustained = outcome.sustained_qps();
    let offered_total = outcome.offered();
    let doc = Json::object()
        .with("org", spec.org.as_str())
        .with("policy", spec.policy.label())
        .with("servers", spec.servers)
        .with("seed", spec.seed)
        .with("pods_per_chip", server.pods_per_chip)
        .with("sockets", server.sockets)
        .with("per_server_qps", server.capacity_qps)
        .with("capacity_qps", outcome.params.nominal_capacity())
        .with("chip_price_usd", server.chip_price_usd)
        .with("server_monthly_usd", server.monthly_cost_usd)
        .with("fleet_monthly_usd", fleet_monthly)
        .with(
            "offered_qps",
            offered_total as f64 / outcome.params.duration_ticks as f64,
        )
        .with("sustained_qps", sustained)
        .with(
            "drop_pct",
            if offered_total == 0 {
                0.0
            } else {
                100.0 * outcome.dropped() as f64 / offered_total as f64
            },
        )
        .with(
            "cost_per_sustained_kqps_usd",
            if sustained > 0.0 {
                Json::Num(fleet_monthly / (sustained / 1000.0))
            } else {
                Json::Null
            },
        );
    with_quantiles(doc, &outcome.latency)
        .with(
            "faults",
            Json::object()
                .with("struck", outcome.faults_struck)
                .with("repaired", outcome.faults_repaired),
        )
        .with(
            "totals",
            Json::object()
                .with("offered", offered_total)
                .with("served", outcome.served())
                .with("dropped", outcome.dropped())
                .with("inflight_end", outcome.inflight_end),
        )
        .with("curve", curve(outcome))
}

/// The default campaign grid: every organization × both policies.
/// `org` / `policy` narrow it to one organization or posture.
pub fn grid(
    servers: u32,
    seed: u64,
    quick: bool,
    org: Option<&str>,
    policy: Option<Policy>,
) -> Vec<FleetPointSpec> {
    ORGS.iter()
        .filter(|o| org.is_none_or(|name| o.name == name))
        .flat_map(|o| {
            Policy::ALL
                .into_iter()
                .filter(|p| policy.is_none_or(|want| want == *p))
                .map(|p| FleetPointSpec::new(o.name, p, servers, seed, quick))
        })
        .collect()
}

/// Evaluates `specs` as one campaign on `exec`: duplicates collapse,
/// cached points come from disk, fresh points run on the worker pool,
/// and rows come back in spec order. A failed job's row carries a
/// `failed` marker instead of data so report arrays keep their shape.
pub fn fleet_points(exec: &Exec, campaign: &str, specs: &[FleetPointSpec]) -> Vec<Json> {
    let jobs: Vec<Job<'_>> = specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            Job::new(spec.name(), spec.to_json(), move |_| spec.evaluate())
        })
        .collect();
    exec.run_campaign(campaign, jobs)
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| match r {
            Json::Null => Json::object()
                .with("org", specs[i].org.as_str())
                .with("policy", specs[i].policy.label())
                .with("failed", true),
            doc => doc.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetPointSpec {
        FleetPointSpec::new("scaleout-ooo", Policy::Derate, 4, 11, true)
    }

    #[test]
    fn identity_covers_the_resolved_parameters() {
        let spec = tiny_spec();
        let id = spec.to_json();
        assert_eq!(id.get("kind").and_then(Json::as_str), Some("fleet.point"));
        for key in [
            "org",
            "policy",
            "servers",
            "seed",
            "per_server_qps",
            "duration_ticks",
            "window_ticks",
            "peak_util",
            "mtbf_ticks",
            "mttr_ticks",
            "deadline_ms",
            "service_ms",
        ] {
            assert!(id.get(key).is_some(), "identity missing {key}");
        }
        // Quick and standard presets must not collide in the cache.
        let slow = FleetPointSpec {
            quick: false,
            ..spec.clone()
        };
        assert_ne!(
            id.to_compact_string(),
            slow.to_json().to_compact_string(),
            "quick flag must re-key the cache entry"
        );
        assert_ne!(spec.name(), slow.name());
    }

    #[test]
    fn grid_covers_orgs_times_policies_and_filters_narrow_it() {
        let all = grid(64, 42, true, None, None);
        assert_eq!(all.len(), ORGS.len() * Policy::ALL.len());
        let one_org = grid(64, 42, true, Some("scaleout-io"), None);
        assert_eq!(one_org.len(), Policy::ALL.len());
        let one_cell = grid(64, 42, true, Some("scaleout-io"), Some(Policy::Drain));
        assert_eq!(one_cell.len(), 1);
        assert!(grid(64, 42, true, Some("nonesuch"), None).is_empty());
    }

    #[test]
    fn row_has_the_headline_metrics_and_exact_totals() {
        let spec = FleetPointSpec {
            servers: 4,
            ..tiny_spec()
        };
        let row = spec.evaluate();
        assert!(row.get("cost_per_sustained_kqps_usd").is_some());
        assert!(row.get("p99_ms").is_some());
        let totals = row.get("totals").expect("totals");
        let n = |k: &str| totals.get(k).and_then(Json::as_f64).expect(k) as u64;
        assert_eq!(
            n("offered"),
            n("served") + n("dropped") + n("inflight_end"),
            "row totals must tile"
        );
        let curve = row.get("curve").expect("curve");
        let Json::Arr(bins) = curve else {
            panic!("curve is an array")
        };
        assert!(bins.len() >= 3, "a full diurnal sweep spans deciles");
    }

    #[test]
    fn engine_evaluation_matches_direct_evaluation() {
        let spec = FleetPointSpec {
            servers: 2,
            ..tiny_spec()
        };
        let direct = spec.evaluate();
        let rows = fleet_points(
            &Exec::with_workers(2),
            "fleet-points-test",
            &[spec.clone(), spec],
        );
        assert_eq!(rows[0].to_compact_string(), direct.to_compact_string());
        assert_eq!(rows[0].to_compact_string(), rows[1].to_compact_string());
    }
}
