//! Seeded per-server failure processes, in the `sop-fault` plan idiom.
//!
//! Like `sop_fault::FaultPlan`, a [`FleetFaultPlan`] is a plain sorted
//! value computed up front from an explicit seed — not randomness
//! sprinkled through the simulation loop. Each server draws fault
//! arrivals from its own derived RNG stream (uniform renewal gaps of
//! 0.5–1.5× MTBF), a damage severity (the fraction of the chip's
//! resources lost, matching the `sop-tco` degradation curve's domain),
//! and a repair time (0.5–1.5× MTTR). A server cannot fail again while
//! down: the next gap starts after the repair completes.
//!
//! The plan is canonical JSON-serializable for inspection, but cache
//! identity lives in the simulation spec (seed + parameters), which
//! fully determines the plan.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sop_obs::Json;

use crate::stream_seed;

/// Severities a fault can strike with: the fraction of chip resources
/// lost, aligned with the degradation-curve domain used for derating.
pub const SEVERITIES: [f64; 4] = [0.0625, 0.125, 0.25, 0.5];

const STREAM_FAULT_BASE: u64 = 0x10_0000;

/// One scheduled fault: `server` loses `failed_fraction` of its chip
/// resources at `tick` and is repaired `repair_ticks` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFault {
    /// Index of the struck server.
    pub server: u32,
    /// Tick the fault strikes.
    pub tick: u64,
    /// Fraction of chip resources lost (one of [`SEVERITIES`]).
    pub failed_fraction: f64,
    /// Ticks until the server returns to full health.
    pub repair_ticks: u64,
}

impl FleetFault {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("server", u64::from(self.server))
            .with("tick", self.tick)
            .with("failed_fraction", self.failed_fraction)
            .with("repair_ticks", self.repair_ticks)
    }
}

/// A complete, sorted fault schedule for one fleet run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFaultPlan {
    faults: Vec<FleetFault>,
}

impl FleetFaultPlan {
    /// Draws the schedule for `servers` servers over `duration` ticks.
    /// Each server uses stream `STREAM_FAULT_BASE + server`, so plans
    /// for different fleet sizes share the faults of common servers.
    pub fn seeded(seed: u64, servers: u32, duration: u64, mtbf: u64, mttr: u64) -> FleetFaultPlan {
        assert!(mtbf >= 2, "MTBF of {mtbf} ticks leaves no gap to draw");
        assert!(mttr >= 2, "MTTR of {mttr} ticks leaves no repair to draw");
        let mut faults = Vec::new();
        for server in 0..servers {
            let mut rng =
                SmallRng::seed_from_u64(stream_seed(seed, STREAM_FAULT_BASE + u64::from(server)));
            let mut t = 0u64;
            loop {
                t += rng.gen_range(mtbf / 2..mtbf + mtbf / 2);
                if t >= duration {
                    break;
                }
                let severity = SEVERITIES[rng.gen_range(0usize..SEVERITIES.len())];
                let repair = rng.gen_range(mttr / 2..mttr + mttr / 2);
                faults.push(FleetFault {
                    server,
                    tick: t,
                    failed_fraction: severity,
                    repair_ticks: repair,
                });
                // No re-fail while down.
                t += repair;
            }
        }
        faults.sort_by_key(|f| (f.tick, f.server));
        FleetFaultPlan { faults }
    }

    /// The schedule, sorted by (tick, server).
    pub fn faults(&self) -> &[FleetFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the run is fault-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Canonical JSON form (sorted, so byte-stable for a given seed).
    pub fn to_json(&self) -> Json {
        Json::object().with(
            "faults",
            Json::Arr(self.faults.iter().map(FleetFault::to_json).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FleetFaultPlan::seeded(7, 32, 7200, 3600, 600);
        let b = FleetFaultPlan::seeded(7, 32, 7200, 3600, 600);
        let c = FleetFaultPlan::seeded(8, 32, 7200, 3600, 600);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty(), "2h × 32 servers at 1h MTBF must fault");
    }

    #[test]
    fn plan_is_sorted_and_in_range() {
        let plan = FleetFaultPlan::seeded(42, 16, 7200, 2400, 600);
        let faults = plan.faults();
        for w in faults.windows(2) {
            assert!((w[0].tick, w[0].server) < (w[1].tick, w[1].server));
        }
        for f in faults {
            assert!(f.tick < 7200);
            assert!(f.server < 16);
            assert!(SEVERITIES.contains(&f.failed_fraction));
            assert!((300..1200).contains(&f.repair_ticks), "{}", f.repair_ticks);
        }
    }

    #[test]
    fn per_server_gaps_respect_repair_exclusion() {
        let plan = FleetFaultPlan::seeded(3, 8, 86_400, 3600, 900);
        for server in 0..8u32 {
            let mine: Vec<&FleetFault> = plan
                .faults()
                .iter()
                .filter(|f| f.server == server)
                .collect();
            for w in mine.windows(2) {
                assert!(
                    w[1].tick >= w[0].tick + w[0].repair_ticks + 3600 / 2,
                    "server {server} refailed during repair"
                );
            }
        }
    }

    #[test]
    fn growing_the_fleet_preserves_common_servers() {
        let small = FleetFaultPlan::seeded(9, 8, 7200, 2400, 600);
        let large = FleetFaultPlan::seeded(9, 64, 7200, 2400, 600);
        let small_of_large: Vec<FleetFault> = large
            .faults()
            .iter()
            .copied()
            .filter(|f| f.server < 8)
            .collect();
        assert_eq!(small.faults(), small_of_large.as_slice());
    }

    #[test]
    fn json_form_round_trips_through_the_parser() {
        let plan = FleetFaultPlan::seeded(1, 4, 7200, 2400, 600);
        let text = plan.to_json().to_compact_string();
        sop_obs::json::parse(&text).expect("valid JSON");
    }
}
