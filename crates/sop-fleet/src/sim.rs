//! The fleet simulator: integer fluid queues behind an exact-split
//! load balancer, driven by a deterministic event schedule.
//!
//! # Event model
//!
//! Time advances in ticks of one simulated second. The run interleaves
//! two deterministic event streams:
//!
//! * **Fault events** from the seeded [`FleetFaultPlan`] — a `Strike`
//!   derates a server's capacity through the `sop-tco` degradation
//!   curve and applies the operator [`Policy`]; the matching `Repair`
//!   restores full health. Events due at a tick apply before that
//!   tick's arrivals (repairs before strikes, then by server index).
//! * **Arrival events** from the seeded [`TrafficModel`] — one batch
//!   per tick, split across in-rotation servers proportionally to
//!   their current capacity with exact integer largest-prefix
//!   arithmetic (allocations always sum to the batch).
//!
//! Each server is an integer fluid queue: per tick it admits arrivals
//! up to a deadline-derived backlog bound (excess is dropped — open-
//! loop demand does not retry), records each admitted request's
//! latency (service time plus FIFO queueing delay at the current
//! capacity) into the window histogram, then serves up to `capacity`
//! requests. Accounting is exact by construction: per window,
//! `offered = dropped + served + (inflight_end - inflight_start)`.
//!
//! # Policy hooks
//!
//! [`Policy::Derate`] keeps a struck server in rotation at derated
//! capacity — latency rises fleet-wide but capacity is not abandoned.
//! [`Policy::Drain`] removes it from rotation (arrival weight zero)
//! while it drains its backlog at the derated rate, shifting load onto
//! the healthy fleet until repair. These mirror the degrade-vs-drain
//! repair postures of `sop_tco::derated_performance`.

use sop_obs::{Histogram, Registry};
use sop_tco::DegradationCurve;

use crate::failure::FleetFaultPlan;
use crate::traffic::TrafficModel;

/// What a damaged server does until repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Leave rotation and drain the backlog at derated capacity.
    Drain,
    /// Stay in rotation at derated capacity.
    Derate,
}

impl Policy {
    /// Both policies, in report row order.
    pub const ALL: [Policy; 2] = [Policy::Drain, Policy::Derate];

    /// Stable lowercase label used in specs, reports, and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Drain => "drain",
            Policy::Derate => "derate",
        }
    }

    /// Parses a label produced by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Policy> {
        Policy::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// Everything that determines a fleet run. Two equal `SimParams` yield
/// bit-identical [`FleetOutcome`]s on any host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Fleet size.
    pub servers: u32,
    /// Healthy per-server capacity in requests per tick (= QPS).
    pub per_server_qps: u64,
    /// Damaged-server posture.
    pub policy: Policy,
    /// Run seed; all RNG streams derive from it.
    pub seed: u64,
    /// Run length in ticks (1 tick = 1 simulated second); also the
    /// diurnal period, so every run sweeps one full day-shape.
    pub duration_ticks: u64,
    /// Statistics window length in ticks.
    pub window_ticks: u64,
    /// Diurnal-crest offered load as a fraction of nominal capacity.
    pub peak_util: f64,
    /// Per-server mean ticks between faults.
    pub mtbf_ticks: u64,
    /// Mean ticks to repair a fault.
    pub mttr_ticks: u64,
    /// Admission deadline: requests that would wait longer are dropped.
    pub deadline_ms: u64,
    /// Base service latency of an unqueued request.
    pub service_ms: u64,
}

impl SimParams {
    /// A full simulated day at ten-minute windows.
    pub fn standard(servers: u32, per_server_qps: u64, policy: Policy, seed: u64) -> SimParams {
        SimParams {
            servers,
            per_server_qps,
            policy,
            seed,
            duration_ticks: 86_400,
            window_ticks: 600,
            peak_util: 0.9,
            mtbf_ticks: 14_400,
            mttr_ticks: 900,
            deadline_ms: 4_000,
            service_ms: 20,
        }
    }

    /// A compressed two-hour day for CI and smoke runs: same shape,
    /// five-minute windows, proportionally faster failure process.
    pub fn quick(servers: u32, per_server_qps: u64, policy: Policy, seed: u64) -> SimParams {
        SimParams {
            duration_ticks: 7_200,
            window_ticks: 300,
            mtbf_ticks: 3_600,
            mttr_ticks: 600,
            ..SimParams::standard(servers, per_server_qps, policy, seed)
        }
    }

    /// Nominal (fault-free) fleet capacity in requests per tick.
    pub fn nominal_capacity(&self) -> u64 {
        u64::from(self.servers) * self.per_server_qps
    }
}

/// How a fault severity translates to remaining serving capacity: the
/// default degradation curve for a pod-organized chip. Losing a pod's
/// worth of resources (~1/16..1/8) costs roughly its share of
/// throughput; past half the chip, performance collapses faster than
/// linearly (interconnect and channel sharing break down).
pub fn severity_curve() -> DegradationCurve {
    DegradationCurve::new(vec![
        (0.0, 1.0),
        (0.0625, 0.93),
        (0.125, 0.86),
        (0.25, 0.70),
        (0.5, 0.40),
    ])
}

/// Per-window accounting. The tiling invariant holds exactly:
/// `offered == dropped + served + (inflight_end - inflight_start)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// First tick of the window.
    pub start_tick: u64,
    /// Window length in ticks (the last window may be short).
    pub ticks: u64,
    /// Requests the traffic process offered.
    pub offered: u64,
    /// Requests admitted to some server queue.
    pub accepted: u64,
    /// Requests rejected at admission (would miss the deadline).
    pub dropped: u64,
    /// Requests completed.
    pub served: u64,
    /// Fleet-wide backlog when the window opened.
    pub inflight_start: u64,
    /// Fleet-wide backlog when the window closed.
    pub inflight_end: u64,
    /// Latencies (ms) of requests admitted in this window.
    pub hist: Histogram,
}

impl WindowStats {
    /// Offered load as a fraction of nominal capacity over the window.
    pub fn utilization(&self, nominal_capacity: u64) -> f64 {
        if nominal_capacity == 0 || self.ticks == 0 {
            return 0.0;
        }
        self.offered as f64 / (nominal_capacity as f64 * self.ticks as f64)
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The parameters that produced this outcome.
    pub params: SimParams,
    /// Per-window accounting, in time order.
    pub windows: Vec<WindowStats>,
    /// All admitted-request latencies (ms) across the run.
    pub latency: Histogram,
    /// Faults that struck during the run.
    pub faults_struck: u64,
    /// Repairs that completed during the run.
    pub faults_repaired: u64,
    /// Fleet-wide backlog at end of run.
    pub inflight_end: u64,
}

impl FleetOutcome {
    /// Run-total offered requests.
    pub fn offered(&self) -> u64 {
        self.windows.iter().map(|w| w.offered).sum()
    }

    /// Run-total served requests.
    pub fn served(&self) -> u64 {
        self.windows.iter().map(|w| w.served).sum()
    }

    /// Run-total dropped requests.
    pub fn dropped(&self) -> u64 {
        self.windows.iter().map(|w| w.dropped).sum()
    }

    /// Served requests per tick, the denominator of cost-per-QPS.
    pub fn sustained_qps(&self) -> f64 {
        if self.params.duration_ticks == 0 {
            return 0.0;
        }
        self.served() as f64 / self.params.duration_ticks as f64
    }

    /// The run's telemetry under the `fleet.*` namespace.
    pub fn metrics(&self) -> Registry {
        let mut r = Registry::new();
        r.counter_add("fleet.ticks", self.params.duration_ticks);
        r.counter_add("fleet.windows", self.windows.len() as u64);
        r.counter_add("fleet.requests.offered", self.offered());
        r.counter_add("fleet.requests.served", self.served());
        r.counter_add("fleet.requests.dropped", self.dropped());
        r.counter_add("fleet.faults.struck", self.faults_struck);
        r.counter_add("fleet.faults.repaired", self.faults_repaired);
        r.gauge_set("fleet.servers", f64::from(self.params.servers));
        r.gauge_set("fleet.capacity.qps", self.params.nominal_capacity() as f64);
        r.gauge_set("fleet.inflight.end", self.inflight_end as f64);
        r.histogram_merge("fleet.latency_ms", &self.latency)
            .expect("fresh registry has no kind conflicts");
        r
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultEventKind {
    // Repairs apply before strikes due the same tick, so the variant
    // order is the event order.
    Repair,
    Strike,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultEvent {
    tick: u64,
    kind: FaultEventKind,
    server: u32,
    derated_capacity: u64,
}

struct ServerState {
    capacity: u64,
    in_rotation: bool,
    backlog: u64,
}

/// Records the latencies of `accepted` FIFO requests admitted behind a
/// backlog of `backlog` at per-tick capacity `cap`: request `j` waits
/// `(backlog + j) * 1000 / cap` ms behind the queue, plus the base
/// service time. Latencies are non-decreasing in `j`, so runs of
/// requests sharing a power-of-two bucket are recorded with
/// `record_n` — O(buckets), not O(requests). Bucket counts, quantile
/// estimates, and the recorded maximum are exactly those of recording
/// each latency individually; only the internal sum (hence `mean`) is
/// a lower-bound approximation, since a run is attributed to its first
/// latency (its last is recorded individually to keep `max` exact).
fn record_latencies(hist: &mut Histogram, backlog: u64, accepted: u64, cap: u64, service_ms: u64) {
    debug_assert!(cap > 0);
    let record_run = |hist: &mut Histogram, first: u64, j0: u64, j1: u64| {
        // Run of requests j0..j1 sharing a bucket; `first` is request
        // j0's latency. Record the last latency individually so the
        // histogram's max is the true maximum.
        let last = service_ms + (backlog + j1 - 1) * 1000 / cap;
        hist.record_n(first, j1 - j0 - 1);
        hist.record(last);
    };
    let mut j = 0u64;
    while j < accepted {
        let lat = service_ms + (backlog + j) * 1000 / cap;
        let upper = Histogram::bucket_upper(lat);
        if upper == u64::MAX {
            // Open-ended top bucket: every later (larger) latency lands
            // here too.
            record_run(hist, lat, j, accepted);
            return;
        }
        // Largest queue position m with service_ms + m*1000/cap <= upper.
        let headroom = upper - service_ms;
        let m_max = ((headroom + 1) * cap - 1) / 1000;
        let end = (m_max - backlog + 1).min(accepted);
        record_run(hist, lat, j, end);
        j = end;
    }
}

/// Runs one fleet simulation to completion. Pure and deterministic:
/// equal `params` give bit-identical outcomes.
pub fn simulate(params: &SimParams) -> FleetOutcome {
    assert!(params.servers > 0, "cannot simulate an empty fleet");
    assert!(params.per_server_qps > 0, "servers need capacity");
    assert!(params.duration_ticks > 0, "cannot simulate zero ticks");
    assert!(params.window_ticks > 0, "windows need at least one tick");

    let curve = severity_curve();
    let plan = FleetFaultPlan::seeded(
        params.seed,
        params.servers,
        params.duration_ticks,
        params.mtbf_ticks,
        params.mttr_ticks,
    );
    let mut events: Vec<FaultEvent> = Vec::with_capacity(plan.len() * 2);
    for f in plan.faults() {
        let derated = ((params.per_server_qps as f64
            * curve.relative_performance(f.failed_fraction))
        .round() as u64)
            .max(1);
        events.push(FaultEvent {
            tick: f.tick,
            kind: FaultEventKind::Strike,
            server: f.server,
            derated_capacity: derated,
        });
        let repair_at = f.tick + f.repair_ticks;
        if repair_at < params.duration_ticks {
            events.push(FaultEvent {
                tick: repair_at,
                kind: FaultEventKind::Repair,
                server: f.server,
                derated_capacity: params.per_server_qps,
            });
        }
    }
    events.sort_by_key(|e| (e.tick, e.kind as u8, e.server));

    let mut traffic = TrafficModel::new(
        params.seed,
        params.nominal_capacity() as f64 * params.peak_util,
        params.duration_ticks,
    );

    let n = params.servers as usize;
    let mut servers: Vec<ServerState> = (0..n)
        .map(|_| ServerState {
            capacity: params.per_server_qps,
            in_rotation: true,
            backlog: 0,
        })
        .collect();
    // In-rotation server indices, kept sorted; rebuilt only on fault
    // events, which are rare relative to ticks.
    let mut active: Vec<u32> = (0..params.servers).collect();
    let mut active_capacity: u64 = params.nominal_capacity();
    let rebuild_active = |servers: &[ServerState], active: &mut Vec<u32>, cap: &mut u64| {
        active.clear();
        *cap = 0;
        for (i, s) in servers.iter().enumerate() {
            if s.in_rotation {
                active.push(i as u32);
                *cap += s.capacity;
            }
        }
    };

    let mut arrivals: Vec<u64> = vec![0; n];
    let mut windows: Vec<WindowStats> = Vec::new();
    let mut win = WindowStats {
        start_tick: 0,
        ticks: 0,
        offered: 0,
        accepted: 0,
        dropped: 0,
        served: 0,
        inflight_start: 0,
        inflight_end: 0,
        hist: Histogram::new(),
    };
    let mut latency = Histogram::new();
    let mut faults_struck = 0u64;
    let mut faults_repaired = 0u64;
    let mut events_seen = 0u64;
    let mut ev_i = 0usize;

    for tick in 0..params.duration_ticks {
        // 1. Fault/repair events due now.
        let mut topology_changed = false;
        while ev_i < events.len() && events[ev_i].tick == tick {
            let ev = events[ev_i];
            ev_i += 1;
            let s = &mut servers[ev.server as usize];
            s.capacity = ev.derated_capacity;
            match ev.kind {
                FaultEventKind::Strike => {
                    faults_struck += 1;
                    s.in_rotation = params.policy == Policy::Derate;
                }
                FaultEventKind::Repair => {
                    faults_repaired += 1;
                    s.in_rotation = true;
                }
            }
            topology_changed = true;
        }
        if topology_changed {
            rebuild_active(&servers, &mut active, &mut active_capacity);
        }

        // 2. This tick's offered arrivals, split by capacity with exact
        // integer largest-prefix arithmetic (allocations sum to the
        // batch by telescoping).
        let offered = traffic.rate_at(tick);
        win.offered += offered;
        if active_capacity == 0 {
            // Whole fleet drained: open-loop demand has nowhere to go.
            win.dropped += offered;
        } else {
            let mut cum = 0u64;
            let mut prev_alloc = 0u64;
            for &i in &active {
                cum += servers[i as usize].capacity;
                let alloc_here =
                    ((offered as u128 * cum as u128) / active_capacity as u128) as u64 - prev_alloc;
                prev_alloc += alloc_here;
                arrivals[i as usize] = alloc_here;
            }
        }

        // 3. Step every server that has work: admit, record, serve.
        for (i, s) in servers.iter_mut().enumerate() {
            let arr = std::mem::take(&mut arrivals[i]);
            if arr == 0 && s.backlog == 0 {
                continue;
            }
            events_seen += 1;
            let cap = s.capacity;
            let max_backlog = cap * params.deadline_ms / 1000;
            let accept = arr.min(max_backlog.saturating_sub(s.backlog));
            win.dropped += arr - accept;
            win.accepted += accept;
            record_latencies(&mut win.hist, s.backlog, accept, cap, params.service_ms);
            s.backlog += accept;
            let served = s.backlog.min(cap);
            s.backlog -= served;
            win.served += served;
        }

        // 4. Window close.
        win.ticks += 1;
        if win.ticks == params.window_ticks || tick + 1 == params.duration_ticks {
            win.inflight_end = servers.iter().map(|s| s.backlog).sum();
            latency.merge(&win.hist);
            let inflight = win.inflight_end;
            let next_start = tick + 1;
            windows.push(win);
            win = WindowStats {
                start_tick: next_start,
                ticks: 0,
                offered: 0,
                accepted: 0,
                dropped: 0,
                served: 0,
                inflight_start: inflight,
                inflight_end: inflight,
                hist: Histogram::new(),
            };
        }
    }

    let inflight_end = windows.last().map_or(0, |w| w.inflight_end);
    crate::flush_run_counters(params.duration_ticks, events_seen);
    FleetOutcome {
        params: *params,
        windows,
        latency,
        faults_struck,
        faults_repaired,
        inflight_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: Policy, seed: u64) -> SimParams {
        SimParams {
            duration_ticks: 1_800,
            window_ticks: 150,
            mtbf_ticks: 600,
            mttr_ticks: 120,
            ..SimParams::standard(8, 5_000, policy, seed)
        }
    }

    #[test]
    fn windows_tile_offered_load_exactly() {
        for policy in Policy::ALL {
            let out = simulate(&tiny(policy, 42));
            for w in &out.windows {
                assert_eq!(
                    w.offered,
                    w.dropped + w.served + w.inflight_end - w.inflight_start,
                    "window at {} violates tiling under {:?}",
                    w.start_tick,
                    policy
                );
                assert_eq!(w.offered, w.accepted + w.dropped);
                assert_eq!(w.hist.count(), w.accepted, "one latency per admission");
            }
            assert_eq!(
                out.offered(),
                out.dropped() + out.served() + out.inflight_end
            );
        }
    }

    #[test]
    fn same_seed_bitwise_identical_different_seed_not() {
        let a = simulate(&tiny(Policy::Derate, 7));
        let b = simulate(&tiny(Policy::Derate, 7));
        let c = simulate(&tiny(Policy::Derate, 8));
        assert_eq!(a, b);
        assert_ne!(a.offered(), c.offered());
    }

    #[test]
    fn policies_change_behavior_under_faults() {
        let drain = simulate(&tiny(Policy::Drain, 42));
        let derate = simulate(&tiny(Policy::Derate, 42));
        assert!(drain.faults_struck > 0, "test params must produce faults");
        assert_eq!(drain.faults_struck, derate.faults_struck);
        // The same faults strike, but the fleets handle them differently.
        assert_ne!(
            drain.windows, derate.windows,
            "drain and derate should diverge once a fault strikes"
        );
    }

    #[test]
    fn latencies_respect_service_floor_and_deadline_ceiling() {
        let p = tiny(Policy::Derate, 3);
        let out = simulate(&p);
        assert!(out.latency.count() > 0);
        // Admission bounds the queue so no admitted request waits past
        // the deadline; max is exact (see record_latencies).
        assert!(
            out.latency.max() <= p.deadline_ms + p.service_ms,
            "max {}",
            out.latency.max()
        );
        // Quantile upper estimates can't be below the service floor.
        assert!(out.latency.p50().expect("non-empty") >= p.service_ms);
    }

    #[test]
    fn unfaulted_underloaded_fleet_serves_everything_quickly() {
        // MTBF far beyond the horizon: no faults, modest load.
        let p = SimParams {
            duration_ticks: 600,
            window_ticks: 100,
            mtbf_ticks: 1_000_000,
            mttr_ticks: 600,
            peak_util: 0.5,
            ..SimParams::standard(4, 10_000, Policy::Drain, 5)
        };
        let out = simulate(&p);
        assert_eq!(out.faults_struck, 0);
        assert_eq!(out.dropped(), 0, "0.5 peak util must not drop");
        // Per-server per-tick arrivals stay below capacity, so nothing
        // queues across ticks and waits stay under one tick.
        assert!(out.latency.max() < p.service_ms + 1000);
    }

    #[test]
    fn drain_sheds_rotation_but_still_drains_backlog() {
        let p = SimParams {
            peak_util: 0.95,
            ..tiny(Policy::Drain, 42)
        };
        let out = simulate(&p);
        // Served totals must stay consistent with tiling even as servers
        // leave and re-enter rotation.
        assert_eq!(
            out.offered(),
            out.dropped() + out.served() + out.inflight_end
        );
        assert!(out.faults_repaired <= out.faults_struck);
    }

    #[test]
    fn utilization_and_metrics_are_consistent() {
        let p = tiny(Policy::Derate, 9);
        let out = simulate(&p);
        for w in &out.windows {
            let u = w.utilization(p.nominal_capacity());
            assert!((0.0..2.0).contains(&u), "utilization {u}");
        }
        let m = out.metrics();
        assert_eq!(m.counter("fleet.requests.offered"), out.offered());
        assert_eq!(m.counter("fleet.ticks"), p.duration_ticks);
        assert_eq!(
            m.histogram("fleet.latency_ms").map(|h| h.count()),
            Some(out.latency.count())
        );
    }

    #[test]
    fn record_latencies_matches_naive_recording() {
        for (backlog, accepted, cap, service) in [
            (0u64, 100u64, 7u64, 20u64),
            (53, 997, 13, 5),
            (0, 1, 1, 0),
            (1000, 500, 3, 20),
        ] {
            let mut fast = Histogram::new();
            record_latencies(&mut fast, backlog, accepted, cap, service);
            let mut naive = Histogram::new();
            for j in 0..accepted {
                naive.record(service + (backlog + j) * 1000 / cap);
            }
            let tag = format!("b={backlog} a={accepted} c={cap}");
            // Everything the reports read — bucket counts, quantiles,
            // count, max — is exact; only the internal sum approximates
            // (each bucket run attributed to its first latency).
            assert_eq!(fast.count(), naive.count(), "{tag}");
            assert_eq!(fast.max(), naive.max(), "{tag}");
            assert_eq!(
                fast.buckets().collect::<Vec<_>>(),
                naive.buckets().collect::<Vec<_>>(),
                "{tag}"
            );
            for q in [0.5, 0.95, 0.99, 1.0] {
                assert_eq!(
                    fast.try_quantile_upper(q),
                    naive.try_quantile_upper(q),
                    "{tag} q={q}"
                );
            }
            assert!(fast.sum() <= naive.sum(), "{tag}");
        }
    }

    #[test]
    fn severity_curve_is_monotone_and_anchored() {
        let c = severity_curve();
        assert_eq!(c.relative_performance(0.0), 1.0);
        assert!(c.relative_performance(0.5) < c.relative_performance(0.0625));
    }
}
