//! Deterministic fault schedules for the simulated machine.
//!
//! The thesis' pod argument is ultimately an availability argument: a pod is a
//! self-contained failure and service domain, and the TCO chapter prices
//! servers whose capacity degrades as components fail. This crate provides the
//! vocabulary for injecting those failures into the simulated machine in a
//! fully deterministic way: a [`FaultPlan`] is an ordered schedule of
//! [`Fault`]s, each naming a component kind, a component id, the cycle at
//! which the fault strikes, and a [`FaultMode`].
//!
//! Determinism guarantees:
//!
//! - A plan is a plain value. Two machines given equal plans (and equal
//!   configurations) produce bit-identical results regardless of host,
//!   worker count, or cache state.
//! - The seeded constructors use a fixed splitmix64 generator, so victim
//!   selection depends only on `(seed, count, universe)`.
//! - Plans serialize to canonical JSON ([`FaultPlan::to_json`]) so they can
//!   participate in content-addressed cache identity.
//!
//! How each fault materializes (reroute, remap, failover, offlining) is
//! decided by the consuming crates (`sop-noc`, `sop-sim`); see DESIGN.md
//! "Fault model and graceful degradation".

use sop_obs::Json;

/// The kind of machine component a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentKind {
    /// A NOC router (a node in the topology graph). Killing a router also
    /// kills whatever is co-located on its tile (core, LLC bank slice).
    Router,
    /// A single directed NOC link, identified by [`link_id`].
    Link,
    /// One LLC bank. Death triggers a pow2 mask shrink and warm-state
    /// invalidation in the consuming simulator.
    LlcBank,
    /// One memory channel. Death fails traffic over to the survivors.
    MemChannel,
    /// One core (by physical core id). Death offlines the core; surviving
    /// cores keep running, so throughput degrades by the offlined fraction.
    Core,
}

impl ComponentKind {
    /// Stable lower-case name used in JSON and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            ComponentKind::Router => "router",
            ComponentKind::Link => "link",
            ComponentKind::LlcBank => "llc_bank",
            ComponentKind::MemChannel => "mem_channel",
            ComponentKind::Core => "core",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "router" => ComponentKind::Router,
            "link" => ComponentKind::Link,
            "llc_bank" => ComponentKind::LlcBank,
            "mem_channel" => ComponentKind::MemChannel,
            "core" => ComponentKind::Core,
            _ => return None,
        })
    }
}

/// What the fault does to the component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// Fail-stop: the component is gone for the rest of the run.
    Dead,
    /// The component keeps working at reduced speed (doubled latency /
    /// halved bandwidth, per the consuming crate's policy).
    Degraded,
    /// The component goes dead at `cycle` and is restored `down_cycles`
    /// later. Consumers may only support this for a subset of component
    /// kinds (links, in the current machine) and treat the rest as `Dead`.
    Intermittent {
        /// How many cycles the component stays down before restoration.
        down_cycles: u64,
    },
}

/// One scheduled fault: component kind x id x cycle x mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Which kind of component fails.
    pub component: ComponentKind,
    /// Component id within its kind (router/node index, [`link_id`],
    /// bank index, channel index, physical core id).
    pub id: u32,
    /// Cycle at which the fault strikes (relative to machine cycle 0,
    /// i.e. the start of the timed warm-up window).
    pub cycle: u64,
    /// What happens to the component.
    pub mode: FaultMode,
}

impl Fault {
    /// A fail-stop fault.
    pub fn dead(component: ComponentKind, id: u32, cycle: u64) -> Self {
        Fault {
            component,
            id,
            cycle,
            mode: FaultMode::Dead,
        }
    }

    /// A degraded-performance fault.
    pub fn degraded(component: ComponentKind, id: u32, cycle: u64) -> Self {
        Fault {
            component,
            id,
            cycle,
            mode: FaultMode::Degraded,
        }
    }

    /// A link that goes down at `cycle` and comes back `down_cycles` later.
    pub fn intermittent_link(node: u32, port: u32, cycle: u64, down_cycles: u64) -> Self {
        Fault {
            component: ComponentKind::Link,
            id: link_id(node, port),
            cycle,
            mode: FaultMode::Intermittent { down_cycles },
        }
    }

    fn mode_json(&self) -> Json {
        match self.mode {
            FaultMode::Dead => Json::Str("dead".into()),
            FaultMode::Degraded => Json::Str("degraded".into()),
            FaultMode::Intermittent { down_cycles } => {
                Json::object().with("intermittent", down_cycles as f64)
            }
        }
    }

    fn to_json(self) -> Json {
        Json::object()
            .with("component", self.component.name())
            .with("id", f64::from(self.id))
            .with("cycle", self.cycle as f64)
            .with("mode", self.mode_json())
    }

    fn from_json(doc: &Json) -> Option<Self> {
        let component = ComponentKind::from_name(doc.get("component")?.as_str()?)?;
        let id = doc.get("id")?.as_f64()? as u32;
        let cycle = doc.get("cycle")?.as_f64()? as u64;
        let mode = match doc.get("mode")? {
            Json::Str(s) if s == "dead" => FaultMode::Dead,
            Json::Str(s) if s == "degraded" => FaultMode::Degraded,
            m => FaultMode::Intermittent {
                down_cycles: m.get("intermittent")?.as_f64()? as u64,
            },
        };
        Some(Fault {
            component,
            id,
            cycle,
            mode,
        })
    }
}

/// Pack a directed link's (source node, output port) into a single fault id.
pub fn link_id(node: u32, port: u32) -> u32 {
    assert!(
        port < 256,
        "output port {port} does not fit the link id encoding"
    );
    (node << 8) | port
}

/// Inverse of [`link_id`]: (source node, output port).
pub fn split_link_id(id: u32) -> (u32, u32) {
    (id >> 8, id & 0xff)
}

/// An ordered, deterministic schedule of faults.
///
/// Faults are kept sorted by cycle (stable, so faults pushed for the same
/// cycle apply in insertion order). The empty plan is the fault-free machine:
/// consumers guarantee that an empty plan leaves behavior bit-identical to a
/// machine with no plan at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Add a fault, keeping the schedule sorted by cycle.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
        self.faults.sort_by_key(|f| f.cycle);
    }

    /// The scheduled faults, sorted by cycle.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Kill `count` distinct routers chosen by `seed` out of `routers`
    /// nodes, all at `cycle`. The selection is a seeded partial
    /// Fisher-Yates shuffle: same (seed, count, routers) always picks the
    /// same victims in the same order.
    pub fn seeded_router_deaths(seed: u64, count: u32, routers: u32, cycle: u64) -> Self {
        let mut plan = FaultPlan::new();
        for id in seeded_distinct(seed, count, routers) {
            plan.push(Fault::dead(ComponentKind::Router, id, cycle));
        }
        plan
    }

    /// Canonical JSON form (array of fault objects), suitable for
    /// content-addressed cache identity.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.faults.iter().map(|f| f.to_json()).collect())
    }

    /// Parse a plan back from [`FaultPlan::to_json`] output. Returns `None`
    /// on any malformed entry.
    pub fn from_json(doc: &Json) -> Option<Self> {
        let mut plan = FaultPlan::new();
        for entry in doc.as_arr()? {
            plan.push(Fault::from_json(entry)?);
        }
        Some(plan)
    }
}

/// Pick `count` distinct ids out of `0..universe` with a seeded partial
/// Fisher-Yates shuffle over a fixed splitmix64 stream. Deterministic across
/// hosts and builds; `count` is clamped to the universe size.
pub fn seeded_distinct(seed: u64, count: u32, universe: u32) -> Vec<u32> {
    let count = count.min(universe) as usize;
    let mut pool: Vec<u32> = (0..universe).collect();
    let mut state = seed;
    let mut picks = Vec::with_capacity(count);
    for i in 0..count {
        let r = splitmix64(&mut state);
        let j = i + (r % (pool.len() - i) as u64) as usize;
        pool.swap(i, j);
        picks.push(pool[i]);
    }
    picks
}

/// The splitmix64 step: a tiny, well-known, dependency-free PRNG with
/// full-period 64-bit state. Used only for victim selection, never for
/// anything timing-related inside the machine.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.to_json().to_compact_string(), "[]");
    }

    #[test]
    fn push_keeps_cycle_order_stably() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::dead(ComponentKind::Router, 5, 200));
        plan.push(Fault::dead(ComponentKind::Link, 1, 100));
        plan.push(Fault::dead(ComponentKind::Core, 2, 200));
        let cycles: Vec<u64> = plan.faults().iter().map(|f| f.cycle).collect();
        assert_eq!(cycles, vec![100, 200, 200]);
        // Stable: router pushed before core at the same cycle stays first.
        assert_eq!(plan.faults()[1].component, ComponentKind::Router);
        assert_eq!(plan.faults()[2].component, ComponentKind::Core);
    }

    #[test]
    fn seeded_router_deaths_are_deterministic_and_distinct() {
        let a = FaultPlan::seeded_router_deaths(7, 8, 64, 1000);
        let b = FaultPlan::seeded_router_deaths(7, 8, 64, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut ids: Vec<u32> = a.faults().iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "victims must be distinct");
        assert!(ids.iter().all(|&id| id < 64));
        let c = FaultPlan::seeded_router_deaths(8, 8, 64, 1000);
        assert_ne!(a, c, "different seeds should pick different victims");
    }

    #[test]
    fn seeded_count_clamps_to_universe() {
        let plan = FaultPlan::seeded_router_deaths(1, 100, 16, 0);
        assert_eq!(plan.len(), 16);
    }

    #[test]
    fn seeded_prefixes_nest() {
        // Picking k victims yields a prefix of picking k+1 with the same
        // seed, so a sweep over k grows the victim set monotonically.
        let four = seeded_distinct(42, 4, 64);
        let six = seeded_distinct(42, 6, 64);
        assert_eq!(four[..], six[..4]);
    }

    #[test]
    fn json_round_trip() {
        let mut plan = FaultPlan::seeded_router_deaths(3, 4, 64, 500);
        plan.push(Fault::degraded(ComponentKind::MemChannel, 1, 700));
        plan.push(Fault::intermittent_link(9, 2, 900, 4000));
        let doc = plan.to_json();
        let back = FaultPlan::from_json(&doc).expect("round trip");
        assert_eq!(plan, back);
        let reparsed = sop_obs::json::parse(&doc.to_compact_string()).expect("parse");
        assert_eq!(FaultPlan::from_json(&reparsed).expect("round trip"), plan);
    }

    #[test]
    fn link_id_round_trip() {
        for (node, port) in [(0, 0), (63, 3), (1000, 255)] {
            assert_eq!(split_link_id(link_id(node, port)), (node, port));
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        let doc =
            sop_obs::json::parse(r#"[{"component":"warp_core","id":1,"cycle":0,"mode":"dead"}]"#)
                .expect("parse");
        assert!(FaultPlan::from_json(&doc).is_none());
    }
}
