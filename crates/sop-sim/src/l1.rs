//! Private L1 caches with MESI-style line states.
//!
//! The trace generators emit post-L1 miss streams (that is what the
//! profiles calibrate), so the machine does not need L1s to *filter*
//! accesses — but it does need them to hold coherence state: a snoop
//! delivered to a core must find (and invalidate or downgrade) an actual
//! line, and replacement in a finite L1 is what quietly drops stale
//! sharers. This module models that state machine; the machine keeps one
//! instance per active core.

use sop_workloads::trace::LineAddr;

/// MESI stable states for an L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiState {
    /// Dirty and exclusive.
    Modified,
    /// Clean and exclusive.
    Exclusive,
    /// Clean, possibly cached elsewhere.
    Shared,
}

#[derive(Debug, Clone, Copy)]
struct L1Way {
    line: LineAddr,
    state: MesiState,
    last_use: u64,
}

/// Outcome of a snoop delivered to an L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopOutcome {
    /// The line was not present (a stale-sharer snoop).
    NotPresent,
    /// The line was present and clean; it was invalidated or downgraded.
    CleanHit,
    /// The line was present and dirty; its data must be forwarded or
    /// written back.
    DirtyHit,
}

/// A private, set-associative L1 cache (state only; latency is charged by
/// the trace/core model).
#[derive(Debug, Clone)]
pub struct L1Cache {
    sets: Vec<Vec<L1Way>>,
    ways: usize,
    tick: u64,
    fills: u64,
    invalidations: u64,
    writebacks: u64,
}

impl L1Cache {
    /// Builds an L1 of `kb` kilobytes with `ways` associativity
    /// (Table 2.2: 32KB 2-way for the simple cores, 64KB 4/8-way for the
    /// conventional core).
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not hold at least one set.
    pub fn new(kb: u32, ways: usize) -> Self {
        let lines = u64::from(kb) * 1024 / 64;
        let sets = (lines / ways as u64).max(1) as usize;
        L1Cache {
            sets: vec![Vec::new(); sets],
            ways,
            tick: 0,
            fills: 0,
            invalidations: 0,
            writebacks: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        let n = self.sets.len();
        let h = (line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 23) as usize;
        // Same value either way; set counts are powers of two in
        // practice, and the mask avoids a hardware divide per lookup.
        if n.is_power_of_two() {
            h & (n - 1)
        } else {
            h % n
        }
    }

    /// Whether `line` is resident, and in which state.
    pub fn state_of(&self, line: LineAddr) -> Option<MesiState> {
        self.sets[self.set_of(line)]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// Fills `line` after a miss response; `write` installs it Modified,
    /// otherwise Shared. Returns the victim line if a dirty line was
    /// evicted (needs a write-back).
    pub fn fill(&mut self, line: LineAddr, write: bool) -> Option<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let state = if write {
            MesiState::Modified
        } else {
            MesiState::Shared
        };
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_use = tick;
            if write {
                way.state = MesiState::Modified;
            }
            return None;
        }
        self.fills += 1;
        let mut victim = None;
        if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("set non-empty");
            if set[lru].state == MesiState::Modified {
                self.writebacks += 1;
                victim = Some(set[lru].line);
            }
            set.swap_remove(lru);
        }
        set.push(L1Way {
            line,
            state,
            last_use: tick,
        });
        victim
    }

    /// Applies an invalidating snoop for `line`.
    pub fn snoop_invalidate(&mut self, line: LineAddr) -> SnoopOutcome {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        match set.iter().position(|w| w.line == line) {
            None => SnoopOutcome::NotPresent,
            Some(i) => {
                let dirty = set[i].state == MesiState::Modified;
                set.swap_remove(i);
                self.invalidations += 1;
                if dirty {
                    SnoopOutcome::DirtyHit
                } else {
                    SnoopOutcome::CleanHit
                }
            }
        }
    }

    /// Applies a downgrading snoop (a remote read of an owned line):
    /// Modified/Exclusive lines become Shared.
    pub fn snoop_downgrade(&mut self, line: LineAddr) -> SnoopOutcome {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        match set.iter_mut().find(|w| w.line == line) {
            None => SnoopOutcome::NotPresent,
            Some(way) => {
                let dirty = way.state == MesiState::Modified;
                way.state = MesiState::Shared;
                if dirty {
                    SnoopOutcome::DirtyHit
                } else {
                    SnoopOutcome::CleanHit
                }
            }
        }
    }

    /// Line fills so far.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Snoop invalidations that found a resident line so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Dirty-victim write-backs so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Resets statistics (after warm-up) without touching contents.
    pub fn reset_stats(&mut self) {
        self.fills = 0;
        self.invalidations = 0;
        self.writebacks = 0;
    }

    /// Publishes this cache's counters under `prefix` (e.g. `"sim.l1."`):
    /// `<p>fills`, `<p>invalidations`, `<p>writebacks`. Aggregating many
    /// L1s is the common case, so counters add into existing keys.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}fills"), self.fills);
        reg.counter_add(&format!("{prefix}invalidations"), self.invalidations);
        reg.counter_add(&format!("{prefix}writebacks"), self.writebacks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_install_the_right_state() {
        let mut l1 = L1Cache::new(32, 2);
        l1.fill(10, false);
        l1.fill(11, true);
        assert_eq!(l1.state_of(10), Some(MesiState::Shared));
        assert_eq!(l1.state_of(11), Some(MesiState::Modified));
        assert_eq!(l1.state_of(12), None);
    }

    #[test]
    fn write_fill_upgrades_a_shared_line() {
        let mut l1 = L1Cache::new(32, 2);
        l1.fill(10, false);
        l1.fill(10, true);
        assert_eq!(l1.state_of(10), Some(MesiState::Modified));
    }

    #[test]
    fn invalidating_snoops_report_dirtiness() {
        let mut l1 = L1Cache::new(32, 2);
        l1.fill(1, false);
        l1.fill(2, true);
        assert_eq!(l1.snoop_invalidate(1), SnoopOutcome::CleanHit);
        assert_eq!(l1.snoop_invalidate(2), SnoopOutcome::DirtyHit);
        assert_eq!(l1.snoop_invalidate(3), SnoopOutcome::NotPresent);
        assert_eq!(l1.state_of(1), None);
        assert_eq!(l1.state_of(2), None);
    }

    #[test]
    fn downgrades_keep_the_line_resident() {
        let mut l1 = L1Cache::new(32, 2);
        l1.fill(7, true);
        assert_eq!(l1.snoop_downgrade(7), SnoopOutcome::DirtyHit);
        assert_eq!(l1.state_of(7), Some(MesiState::Shared));
        // A second downgrade is clean.
        assert_eq!(l1.snoop_downgrade(7), SnoopOutcome::CleanHit);
    }

    #[test]
    fn dirty_evictions_produce_writebacks() {
        // One set of 2 ways: force eviction of a Modified line.
        let mut l1 = L1Cache::new(32, 2);
        // Find three lines mapping to the same set.
        let base = 100u64;
        let set = |l1: &L1Cache, line| l1.set_of(line);
        let s0 = set(&l1, base);
        let mut same = vec![base];
        let mut candidate = base + 1;
        while same.len() < 3 {
            if set(&l1, candidate) == s0 {
                same.push(candidate);
            }
            candidate += 1;
        }
        l1.fill(same[0], true);
        l1.fill(same[1], false);
        let victim = l1.fill(same[2], false);
        assert_eq!(victim, Some(same[0]), "LRU dirty line must write back");
        assert_eq!(l1.writebacks(), 1);
        let mut reg = sop_obs::Registry::new();
        l1.export_metrics(&mut reg, "sim.l1.");
        assert_eq!(reg.counter("sim.l1.writebacks"), 1);
        assert_eq!(reg.counter("sim.l1.fills"), l1.fills());
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let mut l1 = L1Cache::new(32, 2);
        let s0 = l1.set_of(0);
        let mut same = vec![0u64];
        let mut c = 1;
        while same.len() < 3 {
            if l1.set_of(c) == s0 {
                same.push(c);
            }
            c += 1;
        }
        l1.fill(same[0], false);
        l1.fill(same[1], false);
        l1.fill(same[0], false); // refresh
        l1.fill(same[2], false); // evicts same[1]
        assert!(l1.state_of(same[0]).is_some());
        assert!(l1.state_of(same[1]).is_none());
    }
}
