//! SimFlex-style sampled measurement (§3.3, §4.3.4).
//!
//! The thesis measures performance over short cycle-accurate windows
//! launched from warmed checkpoints and reports means "computed with 95%
//! confidence with an average error of less than 4%". This module
//! reproduces that methodology: it runs several independent measurement
//! windows (different trace seeds play the role of different checkpoint
//! positions), and reports the mean with a Student-t 95% confidence
//! interval.

use crate::machine::{Machine, SimConfig, SimResult};

/// Two-sided Student-t critical values at 95% for n-1 degrees of freedom
/// (n = 2..=12 samples).
const T95: [f64; 11] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201,
];

/// Result of a sampled measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMeasurement {
    /// Per-window aggregate IPCs.
    pub samples: Vec<f64>,
    /// Mean aggregate IPC across windows.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// The full results of each window.
    pub windows: Vec<SimResult>,
}

impl SampledMeasurement {
    /// Relative confidence half-width (the thesis targets < 4%).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean
        }
    }
}

/// Runs `windows` consecutive measurement windows over one long execution
/// (the SimFlex pattern: samples "drawn over an interval" of simulated
/// time, §3.3), each with `warmup` + `measure` cycles, and aggregates
/// aggregate-IPC with a 95% confidence interval.
///
/// # Panics
///
/// Panics if fewer than two windows are requested (no interval exists).
pub fn measure(
    cfg: SimConfig,
    windows: u32,
    warmup: u64,
    measure_cycles: u64,
) -> SampledMeasurement {
    assert!(
        windows >= 2,
        "need at least two windows for a confidence interval"
    );
    let mut machine = Machine::new(cfg);
    let mut results = Vec::with_capacity(windows as usize);
    for _ in 0..windows {
        results.push(machine.run_window(warmup, measure_cycles));
    }
    let samples: Vec<f64> = results.iter().map(SimResult::aggregate_ipc).collect();
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    let t = T95[(samples.len() - 2).min(T95.len() - 1)];
    let ci95 = t * (var / n).sqrt();
    SampledMeasurement {
        samples,
        mean,
        ci95,
        windows: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sop_noc::TopologyKind;
    use sop_workloads::Workload;

    fn quick_cfg() -> SimConfig {
        SimConfig::validation(Workload::WebSearch, 8, TopologyKind::Crossbar)
    }

    #[test]
    fn sampling_produces_tight_intervals_on_steady_workloads() {
        let m = measure(quick_cfg(), 4, 1_500, 4_000);
        assert_eq!(m.samples.len(), 4);
        assert!(m.mean > 0.0);
        // The thesis reports <4%; allow more for our short windows.
        assert!(
            m.relative_error() < 0.15,
            "rel err {:.3}",
            m.relative_error()
        );
    }

    #[test]
    fn windows_differ_but_agree() {
        let m = measure(quick_cfg(), 3, 1_000, 3_000);
        // Distinct seeds: the windows are not identical replicas...
        assert!(m.samples.windows(2).any(|w| w[0] != w[1]));
        // ...but they measure the same machine.
        let spread = m.samples.iter().cloned().fold(f64::MIN, f64::max)
            / m.samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.5, "spread {spread}");
    }

    #[test]
    fn interval_shrinks_with_more_windows() {
        // Compare intervals computed from the SAME window stream: a
        // separate two-window run can get lucky (two nearly identical
        // samples), which says nothing about convergence.
        let many = measure(quick_cfg(), 10, 1_000, 2_500);
        let sub = &many.samples[..2];
        let sub_mean = (sub[0] + sub[1]) / 2.0;
        let sub_var = sub
            .iter()
            .map(|s| (s - sub_mean) * (s - sub_mean))
            .sum::<f64>();
        // t(1 dof) = 12.7 makes two-window intervals enormous; ten windows
        // must do better.
        let few_ci95 = T95[0] * (sub_var / 2.0).sqrt();
        assert!(many.ci95 < few_ci95 * 1.05, "{} vs {}", many.ci95, few_ci95);
    }

    #[test]
    #[should_panic(expected = "two windows")]
    fn one_window_panics() {
        measure(quick_cfg(), 1, 100, 100);
    }
}
