//! Set-associative LLC banks with an invalidation directory.
//!
//! Each bank is a 16-way set-associative array with LRU replacement
//! (Table 2.2). The directory tracks which cores hold each resident line
//! so writes can invalidate remote sharers and reads can be forwarded
//! from an owner — the (rare) snoop activity of Fig 4.3. L1 eviction is
//! approximated by bounding the sharer list: the oldest sharer is dropped
//! when a ninth core touches a line.

use sop_workloads::trace::LineAddr;

/// Maximum sharers tracked per line (stale-sharer bound).
pub const MAX_SHARERS: usize = 8;

/// Directory state of one resident line. Sharers live in a fixed inline
/// array (the list is bounded by [`MAX_SHARERS`] anyway), so directory
/// updates never touch the heap and a way's state is a flat `Copy` value
/// — the warm-up loop streams hundreds of thousands of accesses per
/// simulation point through this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryState {
    /// Cached read-only by `count` cores, in insertion order.
    Shared {
        /// Live entries in `cores`.
        count: u8,
        /// The sharer list; only the first `count` entries are valid.
        cores: [u32; MAX_SHARERS],
    },
    /// Held modifiable by one core.
    Owned(u32),
}

impl DirectoryState {
    fn shared_one(core: u32) -> Self {
        let mut cores = [0; MAX_SHARERS];
        cores[0] = core;
        DirectoryState::Shared { count: 1, cores }
    }
}

/// Outcome of a bank lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankOutcome {
    /// Line present; the listed cores (excluding the requester) must be
    /// snooped before the access completes (empty for plain hits).
    Hit {
        /// Cores to invalidate (write to shared line) or the owner to
        /// interrogate (read of an owned line).
        snoop: Vec<u32>,
    },
    /// Line absent; fetch from memory (and write back a victim if the
    /// evicted line was owned).
    Miss {
        /// Whether the victim needs a write-back to memory.
        writeback: bool,
    },
}

/// One LLC bank.
///
/// Ways are stored structure-of-arrays in flat, `ways`-strided vectors:
/// the tag scan of a 16-way set walks 128 contiguous bytes instead of
/// chasing per-set heap allocations, and filling a line writes plain
/// `Copy` values. Within a set's stripe, only the first `len` ways are
/// valid; fills append and evictions swap-remove, exactly like the
/// `Vec<Way>` per set this layout replaced, so way order — and therefore
/// every outcome — is unchanged.
#[derive(Debug, Clone)]
pub struct LlcBank {
    /// Line tags, `ways`-strided per set.
    tags: Vec<LineAddr>,
    /// LRU stamps (bank access counter at last touch), same layout.
    last_use: Vec<u64>,
    /// Directory state per way, same layout.
    dirs: Vec<DirectoryState>,
    /// Occupied ways per set.
    len: Vec<u8>,
    ways: usize,
    accesses: u64,
    misses: u64,
    snoops: u64,
    tick: u64,
}

impl LlcBank {
    /// Builds a bank of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not hold at least one set or if the
    /// associativity exceeds 255.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0 && ways <= u8::MAX as usize, "associativity range");
        let lines = capacity_bytes / 64;
        let sets = (lines / ways as u64).max(1) as usize;
        LlcBank {
            tags: vec![0; sets * ways],
            last_use: vec![0; sets * ways],
            dirs: vec![DirectoryState::Owned(0); sets * ways],
            len: vec![0; sets],
            ways,
            accesses: 0,
            misses: 0,
            snoops: 0,
            tick: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        // Mix the bits so region bases do not alias into a few sets.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        let sets = self.len.len() as u64;
        // Same value either way; the mask avoids a hardware divide on the
        // warm-up hot path (set counts are powers of two in practice).
        if sets.is_power_of_two() {
            (h & (sets - 1)) as usize
        } else {
            (h % sets) as usize
        }
    }

    /// Performs an access by `core` to `line`; `write` requests ownership.
    /// Updates directory and LRU state and returns what must happen next.
    pub fn access(&mut self, core: u32, line: LineAddr, write: bool) -> BankOutcome {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(line);
        let base = set_idx * ways;
        let n = usize::from(self.len[set_idx]);
        if let Some(i) = self.tags[base..base + n].iter().position(|&t| t == line) {
            let w = base + i;
            self.last_use[w] = tick;
            let snoop = match (&mut self.dirs[w], write) {
                (DirectoryState::Shared { count, cores }, false) => {
                    let sharers = &mut cores[..usize::from(*count)];
                    if !sharers.contains(&core) {
                        if usize::from(*count) < MAX_SHARERS {
                            cores[usize::from(*count)] = core;
                            *count += 1;
                        } else {
                            // Bounded list: drop the oldest sharer.
                            cores.copy_within(1.., 0);
                            cores[MAX_SHARERS - 1] = core;
                        }
                    }
                    Vec::new()
                }
                (DirectoryState::Shared { count, cores }, true) => {
                    let victims: Vec<u32> = cores[..usize::from(*count)]
                        .iter()
                        .copied()
                        .filter(|&s| s != core)
                        .collect();
                    self.dirs[w] = DirectoryState::Owned(core);
                    victims
                }
                (DirectoryState::Owned(owner), _) => {
                    let prev = *owner;
                    if prev == core {
                        Vec::new()
                    } else {
                        // L1-to-L1 forwarding (read) or ownership transfer.
                        self.dirs[w] = if write {
                            DirectoryState::Owned(core)
                        } else {
                            let mut cores = [0; MAX_SHARERS];
                            cores[0] = prev;
                            cores[1] = core;
                            DirectoryState::Shared { count: 2, cores }
                        };
                        vec![prev]
                    }
                }
            };
            self.snoops += snoop.len() as u64;
            return BankOutcome::Hit { snoop };
        }
        // Miss: fill, evicting LRU if the set is full.
        self.misses += 1;
        let mut writeback = false;
        let mut n = n;
        if n >= ways {
            let lru = (0..n)
                .min_by_key(|&i| self.last_use[base + i])
                .expect("set is non-empty");
            writeback = matches!(self.dirs[base + lru], DirectoryState::Owned(_));
            // Swap-remove: the last way fills the hole.
            let last = base + n - 1;
            self.tags[base + lru] = self.tags[last];
            self.last_use[base + lru] = self.last_use[last];
            self.dirs[base + lru] = self.dirs[last];
            n -= 1;
        }
        let dir = if write {
            DirectoryState::Owned(core)
        } else {
            DirectoryState::shared_one(core)
        };
        let w = base + n;
        self.tags[w] = line;
        self.last_use[w] = tick;
        self.dirs[w] = dir;
        self.len[set_idx] = (n + 1) as u8;
        BankOutcome::Miss { writeback }
    }

    /// Lookups so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Snoop messages generated so far.
    pub fn snoops(&self) -> u64 {
        self.snoops
    }

    /// Publishes this bank's counters under `prefix` (e.g.
    /// `"sim.llc.bank3."`): `<p>accesses`, `<p>misses`, `<p>snoops`.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}accesses"), self.accesses);
        reg.counter_add(&format!("{prefix}misses"), self.misses);
        reg.counter_add(&format!("{prefix}snoops"), self.snoops);
    }

    /// Approximate heap footprint in bytes (used to budget the warm-state
    /// memo; precision is not required).
    pub fn approx_heap_bytes(&self) -> usize {
        self.tags.len()
            * (std::mem::size_of::<LineAddr>()
                + std::mem::size_of::<u64>()
                + std::mem::size_of::<DirectoryState>())
            + self.len.len()
    }

    /// Resets statistics (after warm-up) without touching contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.snoops = 0;
    }

    /// Drops every resident line — tags, LRU state, and directory —
    /// returning how many lines were lost. Statistics are untouched.
    /// Used when a bank-death remap reassigns line homes: the warm state
    /// left in surviving banks belongs to the old mapping and must not
    /// be served as hits.
    pub fn clear(&mut self) -> u64 {
        let lines = self.len.iter().map(|&l| u64::from(l)).sum();
        self.len.iter_mut().for_each(|l| *l = 0);
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut b = LlcBank::new(1 << 20, 16);
        assert!(matches!(b.access(0, 42, false), BankOutcome::Miss { .. }));
        assert!(matches!(b.access(0, 42, false), BankOutcome::Hit { snoop } if snoop.is_empty()));
        assert_eq!((b.accesses(), b.misses(), b.snoops()), (2, 1, 0));
    }

    #[test]
    fn write_to_shared_line_snoops_other_sharers() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 7, false);
        b.access(1, 7, false);
        b.access(2, 7, false);
        match b.access(1, 7, true) {
            BankOutcome::Hit { snoop } => {
                assert_eq!(snoop.len(), 2);
                assert!(snoop.contains(&0) && snoop.contains(&2));
            }
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn read_of_owned_line_forwards_from_owner() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(3, 9, true);
        match b.access(5, 9, false) {
            BankOutcome::Hit { snoop } => assert_eq!(snoop, vec![3]),
            other => panic!("expected forwarding hit, got {other:?}"),
        }
    }

    #[test]
    fn owner_rewrite_is_silent() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(3, 9, true);
        match b.access(3, 9, true) {
            BankOutcome::Hit { snoop } => assert!(snoop.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        // A 16-line (1-set-at-16-ways) bank: the 17th distinct line evicts.
        let mut b = LlcBank::new(16 * 64, 16);
        for l in 0..16u64 {
            b.access(0, l, false);
        }
        b.access(0, 0, false); // refresh line 0
        assert!(matches!(b.access(0, 100, false), BankOutcome::Miss { .. }));
        // Line 0 was refreshed, so it should still be resident.
        assert!(matches!(b.access(0, 0, false), BankOutcome::Hit { .. }));
    }

    #[test]
    fn dirty_victim_requires_writeback() {
        let mut b = LlcBank::new(64, 1); // one line total
        b.access(0, 1, true);
        match b.access(0, 2, false) {
            BankOutcome::Miss { writeback } => assert!(writeback),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sharer_list_is_bounded() {
        let mut b = LlcBank::new(1 << 20, 16);
        for core in 0..12u32 {
            b.access(core, 5, false);
        }
        match b.access(50, 5, true) {
            BankOutcome::Hit { snoop } => assert!(snoop.len() <= MAX_SHARERS),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 42, false);
        b.reset_stats();
        assert_eq!((b.accesses(), b.misses(), b.snoops()), (0, 0, 0));
        assert!(matches!(b.access(0, 42, false), BankOutcome::Hit { .. }));
    }

    #[test]
    fn bank_exports_named_metrics() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 42, false);
        b.access(0, 42, false);
        let mut reg = sop_obs::Registry::new();
        b.export_metrics(&mut reg, "sim.llc.bank0.");
        assert_eq!(reg.counter("sim.llc.bank0.accesses"), 2);
        assert_eq!(reg.counter("sim.llc.bank0.misses"), 1);
        assert_eq!(reg.counter("sim.llc.bank0.snoops"), 0);
    }
}
