//! Set-associative LLC banks with an invalidation directory.
//!
//! Each bank is a 16-way set-associative array with LRU replacement
//! (Table 2.2). The directory tracks which cores hold each resident line
//! so writes can invalidate remote sharers and reads can be forwarded
//! from an owner — the (rare) snoop activity of Fig 4.3. L1 eviction is
//! approximated by bounding the sharer list: the oldest sharer is dropped
//! when a ninth core touches a line.

use sop_workloads::trace::LineAddr;

/// Maximum sharers tracked per line (stale-sharer bound).
const MAX_SHARERS: usize = 8;

/// Directory state of one resident line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryState {
    /// Cached read-only by the listed cores (insertion order).
    Shared(Vec<u32>),
    /// Held modifiable by one core.
    Owned(u32),
}

#[derive(Debug, Clone)]
struct Way {
    line: LineAddr,
    dir: DirectoryState,
    /// LRU stamp (bank access counter at last touch).
    last_use: u64,
}

/// Outcome of a bank lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankOutcome {
    /// Line present; the listed cores (excluding the requester) must be
    /// snooped before the access completes (empty for plain hits).
    Hit {
        /// Cores to invalidate (write to shared line) or the owner to
        /// interrogate (read of an owned line).
        snoop: Vec<u32>,
    },
    /// Line absent; fetch from memory (and write back a victim if the
    /// evicted line was owned).
    Miss {
        /// Whether the victim needs a write-back to memory.
        writeback: bool,
    },
}

/// One LLC bank.
#[derive(Debug, Clone)]
pub struct LlcBank {
    sets: Vec<Vec<Way>>,
    ways: usize,
    accesses: u64,
    misses: u64,
    snoops: u64,
    tick: u64,
}

impl LlcBank {
    /// Builds a bank of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not hold at least one set.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        let lines = capacity_bytes / 64;
        let sets = (lines / ways as u64).max(1) as usize;
        LlcBank {
            sets: vec![Vec::new(); sets],
            ways,
            accesses: 0,
            misses: 0,
            snoops: 0,
            tick: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        // Mix the bits so region bases do not alias into a few sets.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        (h % self.sets.len() as u64) as usize
    }

    /// Performs an access by `core` to `line`; `write` requests ownership.
    /// Updates directory and LRU state and returns what must happen next.
    pub fn access(&mut self, core: u32, line: LineAddr, write: bool) -> BankOutcome {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_use = tick;
            let snoop = match (&mut way.dir, write) {
                (DirectoryState::Shared(sharers), false) => {
                    if !sharers.contains(&core) {
                        sharers.push(core);
                        if sharers.len() > MAX_SHARERS {
                            sharers.remove(0);
                        }
                    }
                    Vec::new()
                }
                (DirectoryState::Shared(sharers), true) => {
                    let victims: Vec<u32> =
                        sharers.iter().copied().filter(|&s| s != core).collect();
                    way.dir = DirectoryState::Owned(core);
                    victims
                }
                (DirectoryState::Owned(owner), _) => {
                    let prev = *owner;
                    if prev == core {
                        Vec::new()
                    } else {
                        // L1-to-L1 forwarding (read) or ownership transfer.
                        way.dir = if write {
                            DirectoryState::Owned(core)
                        } else {
                            DirectoryState::Shared(vec![prev, core])
                        };
                        vec![prev]
                    }
                }
            };
            self.snoops += snoop.len() as u64;
            return BankOutcome::Hit { snoop };
        }
        // Miss: fill, evicting LRU if the set is full.
        self.misses += 1;
        let mut writeback = false;
        if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            writeback = matches!(set[lru].dir, DirectoryState::Owned(_));
            set.swap_remove(lru);
        }
        let dir = if write {
            DirectoryState::Owned(core)
        } else {
            DirectoryState::Shared(vec![core])
        };
        set.push(Way {
            line,
            dir,
            last_use: tick,
        });
        BankOutcome::Miss { writeback }
    }

    /// Lookups so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Snoop messages generated so far.
    pub fn snoops(&self) -> u64 {
        self.snoops
    }

    /// Publishes this bank's counters under `prefix` (e.g.
    /// `"sim.llc.bank3."`): `<p>accesses`, `<p>misses`, `<p>snoops`.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}accesses"), self.accesses);
        reg.counter_add(&format!("{prefix}misses"), self.misses);
        reg.counter_add(&format!("{prefix}snoops"), self.snoops);
    }

    /// Resets statistics (after warm-up) without touching contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.snoops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut b = LlcBank::new(1 << 20, 16);
        assert!(matches!(b.access(0, 42, false), BankOutcome::Miss { .. }));
        assert!(matches!(b.access(0, 42, false), BankOutcome::Hit { snoop } if snoop.is_empty()));
        assert_eq!((b.accesses(), b.misses(), b.snoops()), (2, 1, 0));
    }

    #[test]
    fn write_to_shared_line_snoops_other_sharers() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 7, false);
        b.access(1, 7, false);
        b.access(2, 7, false);
        match b.access(1, 7, true) {
            BankOutcome::Hit { snoop } => {
                assert_eq!(snoop.len(), 2);
                assert!(snoop.contains(&0) && snoop.contains(&2));
            }
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn read_of_owned_line_forwards_from_owner() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(3, 9, true);
        match b.access(5, 9, false) {
            BankOutcome::Hit { snoop } => assert_eq!(snoop, vec![3]),
            other => panic!("expected forwarding hit, got {other:?}"),
        }
    }

    #[test]
    fn owner_rewrite_is_silent() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(3, 9, true);
        match b.access(3, 9, true) {
            BankOutcome::Hit { snoop } => assert!(snoop.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        // A 16-line (1-set-at-16-ways) bank: the 17th distinct line evicts.
        let mut b = LlcBank::new(16 * 64, 16);
        for l in 0..16u64 {
            b.access(0, l, false);
        }
        b.access(0, 0, false); // refresh line 0
        assert!(matches!(b.access(0, 100, false), BankOutcome::Miss { .. }));
        // Line 0 was refreshed, so it should still be resident.
        assert!(matches!(b.access(0, 0, false), BankOutcome::Hit { .. }));
    }

    #[test]
    fn dirty_victim_requires_writeback() {
        let mut b = LlcBank::new(64, 1); // one line total
        b.access(0, 1, true);
        match b.access(0, 2, false) {
            BankOutcome::Miss { writeback } => assert!(writeback),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sharer_list_is_bounded() {
        let mut b = LlcBank::new(1 << 20, 16);
        for core in 0..12u32 {
            b.access(core, 5, false);
        }
        match b.access(50, 5, true) {
            BankOutcome::Hit { snoop } => assert!(snoop.len() <= MAX_SHARERS),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 42, false);
        b.reset_stats();
        assert_eq!((b.accesses(), b.misses(), b.snoops()), (0, 0, 0));
        assert!(matches!(b.access(0, 42, false), BankOutcome::Hit { .. }));
    }

    #[test]
    fn bank_exports_named_metrics() {
        let mut b = LlcBank::new(1 << 20, 16);
        b.access(0, 42, false);
        b.access(0, 42, false);
        let mut reg = sop_obs::Registry::new();
        b.export_metrics(&mut reg, "sim.llc.bank0.");
        assert_eq!(reg.counter("sim.llc.bank0.accesses"), 2);
        assert_eq!(reg.counter("sim.llc.bank0.misses"), 1);
        assert_eq!(reg.counter("sim.llc.bank0.snoops"), 0);
    }
}
