//! Memory-controller model: fixed DRAM latency plus channel bandwidth.
//!
//! Each single-channel controller serves one 64B line at a time at the
//! channel's useful bandwidth (≈9GB/s for DDR3-1667, §2.4.1), after the
//! 45ns (90-cycle) DRAM access latency. Requests queue FIFO per channel;
//! lines are interleaved across channels by address hash.

use sop_workloads::trace::LineAddr;

/// One memory channel.
#[derive(Debug, Clone)]
pub struct MemoryController {
    /// DRAM access latency in cycles.
    latency: u64,
    /// Cycles of channel occupancy per 64B transfer.
    cycles_per_line: u64,
    /// The cycle until which the channel data bus is busy.
    busy_until: u64,
    /// Lines served.
    served: u64,
}

impl MemoryController {
    /// A controller with `latency` cycles of DRAM access time serving 64B
    /// every `cycles_per_line` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_line` is zero.
    pub fn new(latency: u64, cycles_per_line: u64) -> Self {
        assert!(cycles_per_line > 0, "channel must have bandwidth");
        MemoryController {
            latency,
            cycles_per_line,
            busy_until: 0,
            served: 0,
        }
    }

    /// A DDR3-1667 channel at 2GHz: 90-cycle latency, 64B per ~14 cycles
    /// of useful bandwidth.
    pub fn ddr3_at_2ghz() -> Self {
        MemoryController::new(90, 14)
    }

    /// A DDR4 channel at 2GHz: same latency, double the bandwidth.
    pub fn ddr4_at_2ghz() -> Self {
        MemoryController::new(90, 7)
    }

    /// Enqueues a line read (or write-back) at `now`, returning the cycle
    /// its data is available.
    pub fn request(&mut self, now: u64) -> u64 {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.cycles_per_line;
        self.served += 1;
        start + self.cycles_per_line + self.latency
    }

    /// Lines served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The cycle until which the channel data bus is occupied. A request
    /// issued at `now` starts at `now.max(busy_until())` — the tracer
    /// reads this before [`request`](Self::request) to split a fetch
    /// into channel-queue and service spans.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Publishes this channel's counters under `prefix` (e.g.
    /// `"mem.chan0."`): `<p>lines`.
    pub fn export_metrics(&self, reg: &mut sop_obs::Registry, prefix: &str) {
        reg.counter_add(&format!("{prefix}lines"), self.served);
    }

    /// Resets statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.served = 0;
    }

    /// Halves the channel's useful bandwidth (a failed rank or lane
    /// forces degraded-width transfers); DRAM access latency is
    /// unchanged. Applying it twice quarters the bandwidth, and so on.
    pub fn degrade(&mut self) {
        self.cycles_per_line = self.cycles_per_line.saturating_mul(2);
    }
}

/// Picks the channel serving `line` among `channels` (static interleave,
/// §2.1.6).
pub fn channel_of(line: LineAddr, channels: u32) -> usize {
    assert!(channels > 0, "need at least one memory channel");
    (line.wrapping_mul(0xFF51_AFD7_ED55_8CCD) >> 33) as usize % channels as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_returns_latency_plus_transfer() {
        let mut mc = MemoryController::ddr3_at_2ghz();
        assert_eq!(mc.request(100), 100 + 14 + 90);
    }

    #[test]
    fn back_to_back_requests_queue_on_bandwidth() {
        let mut mc = MemoryController::ddr3_at_2ghz();
        let first = mc.request(0);
        let second = mc.request(0);
        assert_eq!(second, first + 14);
    }

    #[test]
    fn ddr4_has_double_bandwidth() {
        let mut d3 = MemoryController::ddr3_at_2ghz();
        let mut d4 = MemoryController::ddr4_at_2ghz();
        d3.request(0);
        d4.request(0);
        // Two queued 64B transfers: 2x14 vs 2x7 cycles of bus time.
        assert_eq!(d3.request(0) - d4.request(0), 14);
    }

    #[test]
    fn busy_until_exposes_the_queue_boundary() {
        let mut mc = MemoryController::ddr3_at_2ghz();
        assert_eq!(mc.busy_until(), 0);
        mc.request(100);
        assert_eq!(mc.busy_until(), 114);
        // A second request at 100 queues behind the first transfer.
        assert_eq!(mc.request(100), 114 + 14 + 90);
    }

    #[test]
    fn interleaving_spreads_lines() {
        let mut counts = [0u32; 4];
        for line in 0..4000u64 {
            counts[channel_of(line, 4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_channels_panics() {
        channel_of(5, 0);
    }
}
