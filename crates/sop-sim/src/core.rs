//! Trace-driven core model.
//!
//! A core replays the synthetic event stream of its workload: compute
//! bursts retire at the core's perfect-LLC IPC; instruction-fetch misses
//! block the front end until the line returns; data misses overlap up to
//! the core's memory-level parallelism (one outstanding miss for the
//! in-order core, a handful for the out-of-order ones); synchronization
//! stalls idle the core outright.

use sop_tech::CoreKind;
use sop_workloads::trace::LineAddr;
use sop_workloads::{CoreEvent, TraceConfig, TraceGenerator, WorkloadProfile};

/// What a core asks the memory system for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Cache line requested.
    pub line: LineAddr,
    /// Whether ownership (write permission) is needed.
    pub write: bool,
    /// Whether this is an instruction fetch (blocking).
    pub fetch: bool,
}

/// Externally visible execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Able to consume trace events.
    Ready,
    /// Retiring a compute burst.
    Computing,
    /// Front end blocked on an instruction fetch.
    WaitingFetch,
    /// All miss slots occupied; a data access is waiting.
    WaitingMshr,
    /// Software synchronization stall.
    Stalled,
}

/// Cycles of execution a decoupled front end can continue past an
/// outstanding instruction fetch (fetch/decode buffering). Short-latency
/// fabrics hide fetches almost entirely behind this window; multi-hop
/// meshes expose most of theirs.
pub const FETCH_AHEAD_CYCLES: u64 = 6;

/// A simulated core.
#[derive(Debug, Clone)]
pub struct SimCore {
    trace: TraceGenerator,
    state: CoreState,
    /// Cycle at which the current compute burst or stall ends.
    wake_at: u64,
    /// Instructions the current burst will retire when it completes.
    burst_instructions: u32,
    /// Data access waiting for a free miss slot.
    deferred: Option<CoreRequest>,
    outstanding_data: u32,
    max_outstanding: u32,
    /// Whether an instruction fetch is outstanding.
    fetch_pending: bool,
    /// Run-ahead budget left under the outstanding fetch.
    fetch_ahead_left: u64,
    /// A fetch that arrived while another was outstanding, to be issued
    /// when the first returns.
    deferred_fetch: Option<CoreRequest>,
    /// A request ready to issue on the next poll (replayed fetch).
    pending_issue: Option<CoreRequest>,
    ipc_infinite: f64,
    committed: u64,
}

impl SimCore {
    /// Builds a core replaying `trace_cfg`.
    pub fn new(trace_cfg: TraceConfig) -> Self {
        let profile: &WorkloadProfile = &trace_cfg.profile;
        let kind: CoreKind = trace_cfg.core_kind;
        let max_outstanding = profile.data_mlp_for(kind).round().max(1.0) as u32;
        SimCore {
            trace: TraceGenerator::new(trace_cfg),
            state: CoreState::Ready,
            wake_at: 0,
            burst_instructions: 0,
            deferred: None,
            outstanding_data: 0,
            max_outstanding,
            fetch_pending: false,
            fetch_ahead_left: 0,
            deferred_fetch: None,
            pending_issue: None,
            ipc_infinite: profile.ipc_infinite_for(kind),
            committed: 0,
        }
    }

    /// Current execution state. A core whose front-end run-ahead budget
    /// is exhausted under an outstanding fetch reports `WaitingFetch`
    /// regardless of what it was doing underneath.
    pub fn state(&self) -> CoreState {
        if self.fetch_pending && self.fetch_ahead_left == 0 {
            CoreState::WaitingFetch
        } else {
            self.state
        }
    }

    /// Application instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Resets the committed-instruction counter (after warm-up).
    pub fn reset_stats(&mut self) {
        self.committed = 0;
    }

    /// Advances the core by one cycle, returning a memory request if one
    /// is issued this cycle.
    pub fn poll(&mut self, now: u64) -> Option<CoreRequest> {
        if let Some(req) = self.pending_issue.take() {
            return Some(req);
        }
        // A pending fetch lets execution continue only while the front-end
        // buffer lasts; after that the core is fetch-bound. The underlying
        // state (e.g. a compute burst in flight) is preserved and resumes
        // when the fetch returns.
        if self.fetch_pending {
            if self.fetch_ahead_left == 0 {
                return None;
            }
            self.fetch_ahead_left -= 1;
        }
        match self.state {
            CoreState::Computing | CoreState::Stalled => {
                if now < self.wake_at {
                    return None;
                }
                self.committed += u64::from(self.burst_instructions);
                self.burst_instructions = 0;
                self.state = CoreState::Ready;
                self.next_event(now)
            }
            CoreState::WaitingFetch => None, // cleared by on_response
            CoreState::WaitingMshr => {
                if self.outstanding_data < self.max_outstanding {
                    let req = self.deferred.take().expect("deferred access present");
                    self.outstanding_data += 1;
                    self.committed += 1;
                    self.state = CoreState::Ready;
                    Some(req)
                } else {
                    None
                }
            }
            CoreState::Ready => self.next_event(now),
        }
    }

    /// The next cycle at which [`SimCore::poll`] must run, as judged
    /// right after a poll at `now`; `None` while the core is blocked and
    /// only [`SimCore::on_response`] can unblock it. Polls before the
    /// returned cycle are guaranteed no-ops, so an event-driven caller
    /// may skip them without changing anything:
    ///
    /// * a pending (replayed) issue or an unexhausted fetch run-ahead
    ///   budget mutates state on every poll — poll next cycle;
    /// * an exhausted run-ahead budget makes every poll return early
    ///   with no effect until the fetch response arrives — blocked;
    /// * a compute burst or sync stall does nothing until `wake_at`;
    /// * a full miss-slot wait does nothing until a response frees one;
    /// * `Ready` consumes a trace event every poll — poll next cycle.
    pub fn next_poll_cycle(&self, now: u64) -> Option<u64> {
        if self.pending_issue.is_some() {
            return Some(now + 1);
        }
        if self.fetch_pending {
            if self.fetch_ahead_left == 0 {
                return None;
            }
            return Some(now + 1);
        }
        match self.state {
            CoreState::Computing | CoreState::Stalled => Some(self.wake_at.max(now + 1)),
            CoreState::WaitingFetch => None,
            CoreState::WaitingMshr => None,
            CoreState::Ready => Some(now + 1),
        }
    }

    fn next_event(&mut self, now: u64) -> Option<CoreRequest> {
        match self.trace.next().expect("traces are infinite") {
            CoreEvent::Compute { instructions } => {
                let cycles = (f64::from(instructions) / self.ipc_infinite)
                    .ceil()
                    .max(1.0);
                self.state = CoreState::Computing;
                self.wake_at = now + cycles as u64;
                self.burst_instructions = instructions;
                None
            }
            CoreEvent::InstructionFetch { line } => {
                if self.fetch_pending {
                    // Only one fetch may be outstanding: stall on it and
                    // replay this one once it returns.
                    self.deferred_fetch = Some(CoreRequest {
                        line,
                        write: false,
                        fetch: true,
                    });
                    self.fetch_ahead_left = 0;
                    return None;
                }
                self.fetch_pending = true;
                self.fetch_ahead_left = FETCH_AHEAD_CYCLES;
                self.committed += 1;
                Some(CoreRequest {
                    line,
                    write: false,
                    fetch: true,
                })
            }
            ev @ (CoreEvent::DataRead { .. } | CoreEvent::DataWrite { .. }) => {
                let (line, write) = match ev {
                    CoreEvent::DataRead { line } => (line, false),
                    CoreEvent::DataWrite { line } => (line, true),
                    _ => unreachable!("matched data events only"),
                };
                let req = CoreRequest {
                    line,
                    write,
                    fetch: false,
                };
                if self.outstanding_data >= self.max_outstanding {
                    self.deferred = Some(req);
                    self.state = CoreState::WaitingMshr;
                    None
                } else {
                    self.outstanding_data += 1;
                    self.committed += 1;
                    Some(req)
                }
            }
            CoreEvent::SyncStall { cycles } => {
                self.state = CoreState::Stalled;
                self.wake_at = now + u64::from(cycles);
                None
            }
        }
    }

    /// Draws the next `count` memory accesses from the trace *without*
    /// timing, for functional cache warming (the checkpoint-based warm-up
    /// of the SimFlex methodology, §3.3). Compute and synchronization
    /// events are skipped; the committed-instruction counter is untouched
    /// (warming happens before measurement anyway).
    pub fn functional_accesses(&mut self, count: u64) -> Vec<CoreRequest> {
        use sop_workloads::CoreEvent;
        let mut out = Vec::with_capacity(count as usize);
        while out.len() < count as usize {
            match self.trace.next().expect("traces are infinite") {
                CoreEvent::InstructionFetch { line } => {
                    out.push(CoreRequest {
                        line,
                        write: false,
                        fetch: true,
                    });
                }
                CoreEvent::DataRead { line } => {
                    out.push(CoreRequest {
                        line,
                        write: false,
                        fetch: false,
                    });
                }
                CoreEvent::DataWrite { line } => {
                    out.push(CoreRequest {
                        line,
                        write: true,
                        fetch: false,
                    });
                }
                CoreEvent::Compute { .. } | CoreEvent::SyncStall { .. } => {}
            }
        }
        out
    }

    /// Delivers a memory response to the core.
    pub fn on_response(&mut self, fetch: bool) {
        if fetch {
            debug_assert!(self.fetch_pending);
            self.fetch_pending = false;
            // Replay a fetch that stalled behind this one.
            if let Some(req) = self.deferred_fetch.take() {
                self.fetch_pending = true;
                self.fetch_ahead_left = FETCH_AHEAD_CYCLES;
                self.committed += 1;
                self.pending_issue = Some(req);
            }
        } else {
            debug_assert!(self.outstanding_data > 0);
            self.outstanding_data -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sop_workloads::Workload;

    fn core(kind: CoreKind) -> SimCore {
        SimCore::new(TraceConfig {
            profile: WorkloadProfile::of(Workload::WebSearch),
            core_kind: kind,
            core_id: 0,
            total_cores: 16,
            seed: 7,
        })
    }

    #[test]
    fn core_makes_progress_and_issues_requests() {
        let mut c = core(CoreKind::OutOfOrder);
        let mut requests = 0;
        for now in 0..20_000 {
            if let Some(req) = c.poll(now) {
                requests += 1;
                // Feed an instant response.
                c.on_response(req.fetch);
            }
        }
        assert!(requests > 50, "got {requests}");
        assert!(c.committed() > 1_000);
    }

    #[test]
    fn fetch_blocks_after_run_ahead() {
        let mut c = core(CoreKind::OutOfOrder);
        let mut fetch_seen = false;
        'outer: for now in 0..50_000u64 {
            if let Some(req) = c.poll(now) {
                if req.fetch {
                    fetch_seen = true;
                    // The decoupled front end may run ahead briefly, but
                    // without a response the core must eventually stall.
                    let mut t = now;
                    for _ in 0..FETCH_AHEAD_CYCLES + 64 {
                        t += 1;
                        if c.poll(t).is_none() && c.state() == CoreState::WaitingFetch {
                            break;
                        }
                    }
                    assert_eq!(c.state(), CoreState::WaitingFetch, "never stalled");
                    assert!(c.poll(t + 100).is_none());
                    c.on_response(true);
                    assert_ne!(c.state(), CoreState::WaitingFetch);
                    break 'outer;
                }
                c.on_response(req.fetch);
            }
        }
        assert!(fetch_seen, "workload has instruction fetches");
    }

    #[test]
    fn in_order_core_never_overlaps_misses() {
        let mut c = core(CoreKind::InOrder);
        let mut max_outstanding = 0u32;
        let mut outstanding = 0u32;
        for now in 0..100_000 {
            if let Some(req) = c.poll(now) {
                if req.fetch {
                    c.on_response(true);
                } else {
                    outstanding += 1;
                    max_outstanding = max_outstanding.max(outstanding);
                    // Respond after a delay pattern: hold one outstanding.
                    c.on_response(false);
                    outstanding -= 1;
                }
            }
        }
        assert!(max_outstanding <= 1);
    }

    #[test]
    fn ooo_core_overlaps_data_misses() {
        let mut c = core(CoreKind::OutOfOrder);
        let mut in_flight = 0u32;
        let mut max_in_flight = 0u32;
        for now in 0..200_000u64 {
            if let Some(req) = c.poll(now) {
                if req.fetch {
                    c.on_response(true);
                } else {
                    in_flight += 1;
                    max_in_flight = max_in_flight.max(in_flight);
                }
            }
            // Respond to one data miss every 40 cycles.
            if now % 40 == 0 && in_flight > 0 {
                c.on_response(false);
                in_flight -= 1;
            }
        }
        assert!(max_in_flight >= 2, "got {max_in_flight}");
    }

    #[test]
    fn committed_resets() {
        let mut c = core(CoreKind::OutOfOrder);
        for now in 0..1000 {
            if let Some(req) = c.poll(now) {
                c.on_response(req.fetch);
            }
        }
        assert!(c.committed() > 0);
        c.reset_stats();
        assert_eq!(c.committed(), 0);
    }
}
