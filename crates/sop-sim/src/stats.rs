//! Latency distributions for simulated transactions.
//!
//! Mean latencies hide the tail; the SimFlex methodology the thesis
//! follows reports confidence intervals over sampled measurements. The
//! power-of-two-bucketed histogram the machine keeps always-on now lives
//! in [`sop_obs`] (so every crate shares one implementation and the
//! metric registry can hold it directly); this module re-exports it under
//! its historical path.

pub use sop_obs::Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_histogram_behaves() {
        let mut h = Histogram::new();
        for s in [1u64, 2, 3, 4] {
            h.record(s);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert!(h.p99().is_some());
    }
}
