//! Cycle-level chip-multiprocessor simulation (the Flexus substitute).
//!
//! The thesis validates its analytic model (Fig 3.3) and evaluates the
//! NOC-Out pod microarchitecture (Figs 4.3, 4.6, 4.8) with cycle-accurate
//! full-system simulation. This crate provides the equivalent engine for
//! the reproduction: trace-driven cores (synthetic traces from
//! [`sop_workloads`]), a set-associative NUCA LLC with an invalidation
//! directory, bandwidth-modelled memory controllers, and any of the
//! [`sop_noc`] fabrics in between.
//!
//! # Example
//!
//! ```no_run
//! use sop_sim::{Machine, SimConfig};
//! use sop_noc::TopologyKind;
//! use sop_workloads::Workload;
//!
//! let cfg = SimConfig::pod_64(Workload::WebSearch, TopologyKind::NocOut);
//! let result = Machine::new(cfg).run(20_000, 40_000);
//! println!("aggregate IPC = {:.2}", result.aggregate_ipc());
//! ```

pub mod cache;
pub mod core;
pub mod l1;
pub mod machine;
pub mod memory;
pub mod sampling;
pub mod stats;

pub use cache::{DirectoryState, LlcBank};
pub use core::{CoreState, SimCore};
pub use l1::{L1Cache, MesiState, SnoopOutcome};
pub use machine::{
    cycles_simulated, default_threads, par_telemetry, set_default_threads, HaltReason, Machine,
    SimConfig, SimResult,
};
pub use memory::MemoryController;
pub use sampling::{measure, SampledMeasurement};
pub use stats::Histogram;
